#!/usr/bin/env python3
"""Schema check for the machine-readable bench output (BENCH_*.json).

Usage: check_bench_json.py FILE [FILE ...]
       check_bench_json.py --glob DIR   # checks every BENCH_*.json under DIR

Validates schema version 1 as emitted by bench/bench_common.hpp::BenchJson:

    {
      "schema_version": 1,
      "bench": str,
      "params": {str: str|int|float, ...},
      "phases": [{"phase": str, "rounds": int >= 0,
                  "messages": int >= 0, "max_congestion": int >= 0}, ...],
      "totals": {"rounds": int, "messages": int, "peak_congestion": int},
      "audit_ok": true,
      "metrics": {str: int|float, ...},
      "wall_time_ms": float >= 0
    }

Beyond key/type checks it re-derives the totals from the phase list and
enforces the same bandwidth invariants Runtime::audit() checks, so a bench
that emits inconsistent accounting fails CI even if the binary forgot to
audit. No third-party dependencies — stdlib json only.

bench_scale (bench == "scale") additionally publishes its sharded-engine
merge trail, which is re-derived here: a positive thread count, a positive
meter-shard count, and one shard{i}_messages metric per lane whose sum must
equal walk_messages_merged — the offline proof that the per-shard meters
merged to the serial totals (docs/ARCHITECTURE.md, "The bandwidth model").

bench_expander_decomp (bench == "expander_decomp") additionally publishes
the certified-vs-estimated conductance split from the cut-matching certify
audit (docs/ARCHITECTURE.md, "Conductance certification"): certify_ok must
be 1, the certified/estimated cluster counts must be non-negative, sum to
the cluster count, and cover at least one cluster, and both phi columns
must be genuine conductances in [0, 1].

bench_route_serve (bench == "route_serve") additionally publishes the
query-serving columns (docs/BENCHMARKS.md, E-RSERVE): positive qps for
every mix, latency percentiles that are positive and ordered
(p50 <= p90 <= p99), a positive table bytes/vertex figure, the
flat-vs-pointer-walk equivalence gate (equiv_ok == 1 over >= 1 sampled
pairs), and multi-thread throughput no worse than single-thread. The
multi-thread floor tolerates 15% timing noise on few-core CI runners; on a
one-thread host the bench reports multi == single by construction.

The four cluster-solver application benches (bench in {"mds", "mis",
"matching_vc", "maxcut"}) additionally publish the solver-ladder audit
trail (docs/ARCHITECTURE.md, "The solver ladder"): per-tier cluster counts
that sum to the cluster count, a DP-width high-water mark within the
--tw_cap gate, and a self-consistent exact-search effort trail. The mis,
matching_vc and maxcut representatives are chosen so the treewidth-DP tier
must fire (tier_tw_dp >= 1); mds instead gates its dedicated 12x12-grid
showcase: solved BY the DP tier, witness dominates every vertex, under
10 seconds of wall time.
"""
import glob
import json
import os
import sys

INT = int
NUM = (int, float)


def fail(path, msg):
    print(f"{path}: SCHEMA VIOLATION: {msg}", file=sys.stderr)
    return False


def check_file(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"unreadable or invalid JSON ({e})")

    if not isinstance(doc, dict):
        return fail(path, "top level is not an object")
    if doc.get("schema_version") != 1:
        return fail(path, f"schema_version != 1 ({doc.get('schema_version')!r})")
    if not isinstance(doc.get("bench"), str) or not doc["bench"]:
        return fail(path, "missing/empty 'bench' name")

    for key in ("params", "metrics"):
        val = doc.get(key)
        if not isinstance(val, dict):
            return fail(path, f"'{key}' is not an object")
        for k, v in val.items():
            if not isinstance(k, str) or not isinstance(v, NUM + (str,)):
                return fail(path, f"'{key}.{k}' has non-scalar value {v!r}")

    phases = doc.get("phases")
    if not isinstance(phases, list):
        return fail(path, "'phases' is not an array")
    rounds_sum = messages_sum = peak_max = 0
    for i, e in enumerate(phases):
        if not isinstance(e, dict):
            return fail(path, f"phases[{i}] is not an object")
        if not isinstance(e.get("phase"), str) or not e["phase"]:
            return fail(path, f"phases[{i}] missing phase name")
        for k in ("rounds", "messages", "max_congestion"):
            if not isinstance(e.get(k), INT) or isinstance(e.get(k), bool):
                return fail(path, f"phases[{i}].{k} is not an integer")
            if e[k] < 0:
                return fail(path, f"phases[{i}].{k} is negative")
        # The Runtime::audit() conservation invariants, re-checked offline.
        if e["messages"] > 0 and (e["rounds"] < 1 or e["max_congestion"] < 1):
            return fail(path, f"phases[{i}] has messages without rounds/congestion")
        if e["messages"] == 0 and e["max_congestion"] > 0:
            return fail(path, f"phases[{i}] has congestion without messages")
        if e["max_congestion"] > e["messages"]:
            return fail(path, f"phases[{i}] peak congestion exceeds messages")
        rounds_sum += e["rounds"]
        messages_sum += e["messages"]
        peak_max = max(peak_max, e["max_congestion"])

    totals = doc.get("totals")
    if not isinstance(totals, dict):
        return fail(path, "'totals' is not an object")
    expect = {"rounds": rounds_sum, "messages": messages_sum,
              "peak_congestion": peak_max}
    for k, v in expect.items():
        if not isinstance(totals.get(k), INT):
            return fail(path, f"totals.{k} is not an integer")
        if phases and totals[k] != v:
            return fail(path, f"totals.{k}={totals[k]} != sum/max of phases ({v})")

    if doc.get("audit_ok") is not True:
        return fail(path, f"audit_ok is {doc.get('audit_ok')!r}, expected true")
    wall = doc.get("wall_time_ms")
    if not isinstance(wall, NUM) or isinstance(wall, bool) or wall < 0:
        return fail(path, f"wall_time_ms invalid ({wall!r})")

    if doc["bench"] == "scale" and not check_scale(path, doc):
        return False
    if doc["bench"] == "expander_decomp" and not check_expander_decomp(path, doc):
        return False
    if doc["bench"] == "route_serve" and not check_route_serve(path, doc):
        return False
    if doc["bench"] in LADDER_BENCHES and not check_ladder(path, doc):
        return False

    print(f"{path}: ok ({len(phases)} phases, {messages_sum} messages)")
    return True


def check_scale(path, doc):
    """bench_scale extras: thread counts and the per-shard merge trail."""
    params, metrics = doc["params"], doc["metrics"]
    threads = params.get("threads")
    if not isinstance(threads, INT) or threads < 1:
        return fail(path, f"scale: params.threads invalid ({threads!r})")
    actual = metrics.get("threads_actual")
    if not isinstance(actual, INT) or actual < 1:
        return fail(path, f"scale: metrics.threads_actual invalid ({actual!r})")
    shards = metrics.get("meter_shards")
    if not isinstance(shards, INT) or shards < 1:
        return fail(path, f"scale: metrics.meter_shards invalid ({shards!r})")
    # Re-derive the merged walk-meter total from the per-lane trail: every
    # lane must be present, non-negative, and the lanes must sum exactly.
    lane_sum = 0
    for i in range(shards):
        lane = metrics.get(f"shard{i}_messages")
        if not isinstance(lane, INT) or lane < 0:
            return fail(path, f"scale: shard{i}_messages invalid ({lane!r})")
        lane_sum += lane
    merged = metrics.get("walk_messages_merged")
    if not isinstance(merged, INT):
        return fail(path, f"scale: walk_messages_merged invalid ({merged!r})")
    if lane_sum != merged:
        return fail(path, f"scale: shard trail sums to {lane_sum}, "
                          f"walk_messages_merged is {merged}")
    # The engine cannot change the algorithm: serial and sharded round
    # totals were asserted identical in-binary; the published rounds must
    # be positive for every family column that made it into metrics.
    for key, val in metrics.items():
        if key.startswith("rounds_") and (not isinstance(val, INT) or val < 1):
            return fail(path, f"scale: metrics.{key} invalid ({val!r})")
    print(f"{path}: scale merge trail ok ({shards} lanes, {merged} messages)")
    return True


def check_expander_decomp(path, doc):
    """bench_expander_decomp extras: the certified-vs-estimated phi split."""
    metrics = doc["metrics"]
    if metrics.get("certify_ok") != 1:
        return fail(path, f"expander_decomp: certify_ok is "
                          f"{metrics.get('certify_ok')!r}, expected 1")
    counts = {}
    for key in ("clusters_certified", "clusters_estimated"):
        val = metrics.get(key)
        if not isinstance(val, INT) or isinstance(val, bool) or val < 0:
            return fail(path, f"expander_decomp: metrics.{key} invalid ({val!r})")
        counts[key] = val
    if counts["clusters_certified"] + counts["clusters_estimated"] < 1:
        return fail(path, "expander_decomp: no cluster was certified OR estimated")
    clusters = metrics.get("clusters")
    if isinstance(clusters, INT) and \
            counts["clusters_certified"] + counts["clusters_estimated"] != clusters:
        return fail(path, f"expander_decomp: certified+estimated "
                          f"({counts['clusters_certified']}+"
                          f"{counts['clusters_estimated']}) != clusters ({clusters})")
    for key in ("phi_certified_lower", "phi_estimate_min"):
        val = metrics.get(key)
        if not isinstance(val, NUM) or isinstance(val, bool) or \
                not (0.0 <= val <= 1.0):
            return fail(path, f"expander_decomp: metrics.{key} invalid ({val!r})")
    # Certify-scaling section (implicit-matrix engine): the pooled report is
    # gated bit-identical in-binary (certify_scale_ok), the counts must cover
    # the scaling clusters, pooled wall time must not regress past serial
    # (15% + 25ms slack, same tolerance family as the route_serve qps gate),
    # and at full scale a certified cluster above the old 1024 cap must exist.
    if metrics.get("certify_scale_ok") != 1:
        return fail(path, f"expander_decomp: certify_scale_ok is "
                          f"{metrics.get('certify_scale_ok')!r}, expected 1")
    scale = {}
    for key in ("certify_scale_n", "certify_scale_clusters",
                "certify_scale_certified", "certify_scale_estimated",
                "max_cluster_certified", "certify_state_bytes_peak"):
        val = metrics.get(key)
        if not isinstance(val, INT) or isinstance(val, bool) or val < 0:
            return fail(path, f"expander_decomp: metrics.{key} invalid ({val!r})")
        scale[key] = val
    if scale["certify_scale_certified"] + scale["certify_scale_estimated"] != \
            scale["certify_scale_clusters"]:
        return fail(path, "expander_decomp: certify_scale certified+estimated "
                          "does not cover clusters")
    if scale["certify_scale_n"] > 1024 and scale["max_cluster_certified"] <= 1024:
        return fail(path, f"expander_decomp: no certified cluster above 1024 "
                          f"vertices (max {scale['max_cluster_certified']}) at "
                          f"certify_scale_n={scale['certify_scale_n']}")
    n_scale = scale["certify_scale_n"]
    if scale["certify_state_bytes_peak"] >= 8 * n_scale * n_scale:
        return fail(path, "expander_decomp: game state high-water not below "
                          "the dense 8*n^2 bytes")
    walls = {}
    for key in ("certify_wall_serial_ms", "certify_wall_pooled_ms"):
        val = metrics.get(key)
        if not isinstance(val, NUM) or isinstance(val, bool) or val < 0.0:
            return fail(path, f"expander_decomp: metrics.{key} invalid ({val!r})")
        walls[key] = val
    if walls["certify_wall_pooled_ms"] > \
            1.15 * walls["certify_wall_serial_ms"] + 25.0:
        return fail(path, f"expander_decomp: pooled certify wall "
                          f"({walls['certify_wall_pooled_ms']:.1f} ms) regressed "
                          f"past serial ({walls['certify_wall_serial_ms']:.1f} ms)")
    print(f"{path}: certify split ok ({counts['clusters_certified']} certified, "
          f"{counts['clusters_estimated']} estimated); certify scaling ok "
          f"(max certified cluster {scale['max_cluster_certified']} of "
          f"n={scale['certify_scale_n']}, pooled "
          f"{walls['certify_wall_pooled_ms']:.1f} ms vs serial "
          f"{walls['certify_wall_serial_ms']:.1f} ms)")
    return True


# Application benches whose representative run publishes the solver-ladder
# audit trail (per-tier cluster counts + exact-search effort).
LADDER_BENCHES = {"mds", "mis", "matching_vc", "maxcut"}

# The in-header clamp on the DP tier's width gate (apps/treewidth.hpp,
# LadderConfig::tw_cap): a generous --tw_cap can never admit wider tables.
TW_CAP_CLAMP = 13


def check_ladder(path, doc):
    """Cluster-solver bench extras: the solver-ladder audit trail."""
    bench, params, metrics = doc["bench"], doc["params"], doc["metrics"]
    tiers = {}
    for key in ("tier_forest", "tier_tw_dp", "tier_bb", "tier_greedy"):
        val = metrics.get(key)
        if not isinstance(val, INT) or isinstance(val, bool) or val < 0:
            return fail(path, f"{bench}: metrics.{key} invalid ({val!r})")
        tiers[key] = val
    clusters = metrics.get("clusters")
    if not isinstance(clusters, INT) or isinstance(clusters, bool) or \
            clusters < 1:
        return fail(path, f"{bench}: metrics.clusters invalid ({clusters!r})")
    if sum(tiers.values()) != clusters:
        return fail(path, f"{bench}: tier counts sum to {sum(tiers.values())}, "
                          f"clusters is {clusters}")
    tw_cap = params.get("tw_cap")
    if not isinstance(tw_cap, INT) or isinstance(tw_cap, bool) or tw_cap < 0:
        return fail(path, f"{bench}: params.tw_cap invalid ({tw_cap!r})")
    width = metrics.get("max_width_dp")
    if not isinstance(width, INT) or isinstance(width, bool):
        return fail(path, f"{bench}: metrics.max_width_dp invalid ({width!r})")
    if tiers["tier_tw_dp"] > 0 and not 0 <= width <= min(tw_cap, TW_CAP_CLAMP):
        return fail(path, f"{bench}: max_width_dp={width} escapes the "
                          f"tw_cap={tw_cap} gate")
    if tiers["tier_tw_dp"] == 0 and width != -1:
        return fail(path, f"{bench}: max_width_dp={width} without a DP solve")
    # Exact-search effort: every launched search explored >= 1 node; a
    # search that survived its budget lands in the bb tier, a blown one
    # falls back to the greedy tier.
    effort = {}
    for key in ("bb_runs", "bb_nodes", "bb_exact_runs"):
        val = metrics.get(key)
        if not isinstance(val, INT) or isinstance(val, bool) or val < 0:
            return fail(path, f"{bench}: metrics.{key} invalid ({val!r})")
        effort[key] = val
    if effort["bb_exact_runs"] > effort["bb_runs"]:
        return fail(path, f"{bench}: bb_exact_runs exceeds bb_runs ({effort})")
    if effort["bb_runs"] > 0 and effort["bb_nodes"] < effort["bb_runs"]:
        return fail(path, f"{bench}: bb_nodes below bb_runs ({effort})")
    if tiers["tier_bb"] != effort["bb_exact_runs"]:
        return fail(path, f"{bench}: tier_bb ({tiers['tier_bb']}) != "
                          f"bb_exact_runs ({effort['bb_exact_runs']})")
    if effort["bb_runs"] - effort["bb_exact_runs"] > tiers["tier_greedy"]:
        return fail(path, f"{bench}: more blown searches than greedy "
                          f"clusters ({effort} vs {tiers})")
    solve_ms = metrics.get("solve_ms")
    if not isinstance(solve_ms, NUM) or isinstance(solve_ms, bool) or \
            solve_ms < 0:
        return fail(path, f"{bench}: metrics.solve_ms invalid ({solve_ms!r})")
    # Exact coverage floors. The mis / matching_vc / maxcut representatives
    # (planar, outerplanar, grid) are chosen so the width gate certifies at
    # least one cluster; mds gates its dedicated showcase below instead.
    if bench != "mds" and tiers["tier_tw_dp"] < 1:
        return fail(path, f"{bench}: treewidth-DP tier never fired ({tiers})")
    if bench == "mds":
        for key, lo, hi in (("tw_showcase_via_dp", 1, 1),
                            ("tw_showcase_valid", 1, 1),
                            ("tw_showcase_width", 1, TW_CAP_CLAMP),
                            ("tw_showcase_size", 1, 144)):
            val = metrics.get(key)
            if not isinstance(val, INT) or isinstance(val, bool) or \
                    not lo <= val <= hi:
                return fail(path, f"mds: metrics.{key} invalid ({val!r}, "
                                  f"want [{lo}, {hi}])")
        ms = metrics.get("tw_showcase_ms")
        if not isinstance(ms, NUM) or isinstance(ms, bool) or \
                not 0 <= ms < 10_000:
            return fail(path, f"mds: tw_showcase_ms invalid ({ms!r}, the "
                              f"12x12 DP solve must stay under 10 s)")
    print(f"{path}: solver-ladder trail ok (F{tiers['tier_forest']}/"
          f"TW{tiers['tier_tw_dp']}/BB{tiers['tier_bb']}/"
          f"G{tiers['tier_greedy']} over {clusters} clusters, "
          f"max DP width {width})")
    return True


def check_route_serve(path, doc):
    """bench_route_serve extras: qps/latency/bytes columns + the gates."""
    metrics = doc["metrics"]
    if metrics.get("equiv_ok") != 1:
        return fail(path, f"route_serve: equiv_ok is "
                          f"{metrics.get('equiv_ok')!r}, expected 1")
    equiv_pairs = metrics.get("equiv_pairs")
    if not isinstance(equiv_pairs, INT) or equiv_pairs < 1:
        return fail(path, f"route_serve: equiv_pairs invalid ({equiv_pairs!r})")
    threads = metrics.get("threads_actual")
    if not isinstance(threads, INT) or threads < 1:
        return fail(path, f"route_serve: threads_actual invalid ({threads!r})")
    qps = {}
    for key in ("qps_cold_single", "qps_uniform_single", "qps_uniform_multi",
                "qps_zipf_multi"):
        val = metrics.get(key)
        if not isinstance(val, NUM) or isinstance(val, bool) or val <= 0:
            return fail(path, f"route_serve: metrics.{key} invalid ({val!r})")
        qps[key] = val
    # The acceptance gate: serving must scale, never anti-scale. A 15%
    # tolerance absorbs timing noise on few-core CI runners; a one-thread
    # host reports multi == single by construction, which passes exactly.
    if qps["qps_uniform_multi"] < 0.85 * qps["qps_uniform_single"]:
        return fail(path, f"route_serve: multi-thread qps "
                          f"({qps['qps_uniform_multi']}) below single-thread "
                          f"({qps['qps_uniform_single']})")
    lat = {}
    for key in ("p50_lookup_ns", "p90_lookup_ns", "p99_lookup_ns"):
        val = metrics.get(key)
        if not isinstance(val, NUM) or isinstance(val, bool) or val <= 0:
            return fail(path, f"route_serve: metrics.{key} invalid ({val!r})")
        lat[key] = val
    if not lat["p50_lookup_ns"] <= lat["p90_lookup_ns"] <= lat["p99_lookup_ns"]:
        return fail(path, f"route_serve: latency percentiles out of order "
                          f"({lat})")
    samples = metrics.get("latency_samples")
    if not isinstance(samples, INT) or samples < 1:
        return fail(path, f"route_serve: latency_samples invalid ({samples!r})")
    bpv = metrics.get("bytes_per_vertex")
    if not isinstance(bpv, NUM) or isinstance(bpv, bool) or bpv <= 0:
        return fail(path, f"route_serve: bytes_per_vertex invalid ({bpv!r})")
    delivered = metrics.get("delivered_fraction")
    if not isinstance(delivered, NUM) or isinstance(delivered, bool) or \
            not (0.0 <= delivered <= 1.0):
        return fail(path, f"route_serve: delivered_fraction invalid "
                          f"({delivered!r})")
    stretch = metrics.get("avg_stretch")
    if not isinstance(stretch, NUM) or isinstance(stretch, bool) or stretch < 1.0:
        return fail(path, f"route_serve: avg_stretch invalid ({stretch!r})")
    print(f"{path}: route_serve gates ok "
          f"({qps['qps_uniform_multi']:.0f} qps multi / "
          f"{qps['qps_uniform_single']:.0f} qps single, "
          f"p99 {lat['p99_lookup_ns']:.0f} ns)")
    return True


def main(argv):
    if len(argv) >= 2 and argv[1] == "--glob":
        root = argv[2] if len(argv) > 2 else "."
        files = sorted(glob.glob(os.path.join(root, "BENCH_*.json")))
    else:
        files = argv[1:]
    if not files:
        print("check_bench_json.py: no BENCH_*.json files to check",
              file=sys.stderr)
        return 1
    ok = all([check_file(f) for f in files])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
