#!/usr/bin/env python3
"""Fail on dead relative links in the repo's markdown files.

Usage: check_links.py [repo_root]

Scans every *.md outside build directories for [text](target) links and
verifies that relative targets exist on disk (anchors are stripped; absolute
URLs and mailto links are skipped). No network access. Exit code 1 lists the
dead links; 0 means every relative link resolves.
"""
import os
import re
import sys

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_DIRS = {".git", "build", "build-asan", "node_modules"}
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames
                       if d not in SKIP_DIRS and not d.startswith("build")]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    dead = []
    for path in sorted(markdown_files(root)):
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        for lineno, line in enumerate(text.splitlines(), 1):
            for match in LINK.finditer(line):
                target = match.group(1)
                if target.startswith(SKIP_PREFIXES):
                    continue
                target = target.split("#", 1)[0]
                if not target:
                    continue
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(path), target))
                if not os.path.exists(resolved):
                    rel = os.path.relpath(path, root)
                    dead.append(f"{rel}:{lineno}: dead link -> {match.group(1)}")
    if dead:
        print("\n".join(dead))
        print(f"{len(dead)} dead relative link(s)", file=sys.stderr)
        return 1
    print("all relative markdown links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
