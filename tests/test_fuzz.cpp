// Property-based invariant fuzzing — deterministic seeded sweeps instead of
// hand-picked instances.
//
// Every case walks a fixed seed list over the generator families and asserts
// the CONTRACT of the object under test on every draw:
//   * EDT: valid connected partition, hard eps cut budget, O(1/eps) diameter,
//     a clean Runtime::audit();
//   * overlap decomposition: covered-edge budget, overlap cap, connected
//     supports, the per-level halving audit of evaluate_overlap;
//   * phi_certificate / certified_phi: the three tiers bracket the exact
//     brute-force conductance on every connected graph with <= 12 vertices
//     (cut-matching lower <= exact <= witnessed sweep upper), degenerate
//     inputs resolve to their documented verdicts, and a tampered
//     cut-matching certificate is rejected by the replay audit;
//   * the engines' certify mode: every emitted cluster re-certifies, the
//     certified/estimated split covers the cluster count, and the games'
//     CONGEST charges keep the ledger auditable.
//
// Iteration counts are bounded (the whole binary is a few seconds in Release)
// and every draw derives from the case's fixed base seed, so a failure
// reproduces exactly from the printed context string.
#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "congest/shard.hpp"
#include "decomp/edt.hpp"
#include "decomp/expander_decomp.hpp"
#include "decomp/overlap_decomp.hpp"
#include "expander/cut_matching.hpp"
#include "test_main.hpp"

using namespace mfd;
using namespace mfd::decomp;
using mfd::bench::make_family;

namespace {

const std::vector<std::string> kFamilies = {
    "planar", "planar-sparse", "grid",   "torus",  "outerplanar", "tree",
    "cycle",  "path",          "cactus", "ktree3", "series-parallel"};

/// Connected random graph on 3..12 vertices: a random spanning tree plus a
/// few extra edges, a pure function of the seed.
Graph small_connected(std::uint64_t seed, int* n_out = nullptr) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  const int n = 3 + static_cast<int>(rng.next_below(10));
  std::vector<std::pair<int, int>> edges;
  for (int v = 1; v < n; ++v) {
    edges.emplace_back(static_cast<int>(rng.next_below(v)), v);
  }
  const int extra = static_cast<int>(rng.next_below(n));
  for (int e = 0; e < extra; ++e) {
    int a = static_cast<int>(rng.next_below(n));
    int b = static_cast<int>(rng.next_below(n));
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    bool dup = false;
    for (const auto& [x, y] : edges) dup = dup || (x == a && y == b);
    if (!dup) edges.emplace_back(a, b);
  }
  if (n_out != nullptr) *n_out = n;
  return Graph::from_edges(n, edges);
}

/// Full bit-identity comparison of two game outcomes — verdict, certificate
/// (including every matched pair and path), sparse-cut witness, and the
/// CONGEST ledger. This is the dense-vs-implicit equivalence contract: the
/// engines share every decision path, so nothing may differ.
bool same_outcome(const expander::CutMatchingOutcome& a,
                  const expander::CutMatchingOutcome& b,
                  const std::string& ctx) {
  bool ok = a.verdict == b.verdict && a.rounds_played == b.rounds_played &&
            a.phi_target == b.phi_target && a.alpha_evals == b.alpha_evals &&
            a.cut_side == b.cut_side && a.cut_phi == b.cut_phi &&
            a.cert.congestion == b.cert.congestion &&
            a.cert.dilation == b.cert.dilation &&
            a.cert.alpha == b.cert.alpha &&
            a.cert.phi_lower == b.cert.phi_lower &&
            a.cert.matchings.size() == b.cert.matchings.size();
  if (ok) {
    for (std::size_t r = 0; r < a.cert.matchings.size(); ++r) {
      const auto& ra = a.cert.matchings[r];
      const auto& rb = b.cert.matchings[r];
      if (ra.size() != rb.size()) { ok = false; break; }
      for (std::size_t i = 0; i < ra.size(); ++i) {
        if (ra[i].u != rb[i].u || ra[i].v != rb[i].v ||
            ra[i].path != rb[i].path) { ok = false; break; }
      }
      if (!ok) break;
    }
  }
  if (ok && a.ledger.entries().size() == b.ledger.entries().size()) {
    for (std::size_t i = 0; i < a.ledger.entries().size(); ++i) {
      const congest::RoundCharge& x = a.ledger.entries()[i];
      const congest::RoundCharge& y = b.ledger.entries()[i];
      if (x.phase != y.phase || x.rounds != y.rounds ||
          x.messages != y.messages || x.max_congestion != y.max_congestion) {
        ok = false;
        break;
      }
    }
  } else if (a.ledger.entries().size() != b.ledger.entries().size()) {
    ok = false;
  }
  CHECK_MSG(ok, ctx + ": dense/implicit outcomes diverged");
  return ok;
}

}  // namespace

TEST_CASE(fuzz_edt_invariants) {
  for (std::uint64_t seed : {11u, 12u}) {
    for (const std::string& family : kFamilies) {
      for (int n : {192, 513}) {
        Rng rng(seed);
        const Graph g = make_family(family, n, rng);
        for (double eps : {0.25, 0.45}) {
          const std::string ctx = family + " n=" + std::to_string(n) +
                                  " eps=" + Table::num(eps, 2) +
                                  " seed=" + std::to_string(seed);
          const EdtDecomposition d = build_edt_decomposition(g, eps);
          CHECK_MSG(is_valid_partition(g, d.clustering), ctx);
          CHECK_MSG(d.quality.clusters_connected, ctx);
          CHECK_MSG(d.quality.eps_fraction <= eps + 1e-12, ctx + ": cut budget");
          CHECK_MSG(d.quality.max_diameter <= 20.0 / eps + 10.0,
                    ctx + ": diameter");
          CHECK_MSG(d.T_measured > 0, ctx);
          const congest::AuditResult audit = d.ledger.audit(2 * g.m());
          CHECK_MSG(audit.ok, ctx + ": " + audit.violation);
        }
      }
    }
  }
}

TEST_CASE(fuzz_overlap_invariants) {
  for (const std::string& family : kFamilies) {
    for (int n : {192, 400}) {
      Rng rng(29);
      const Graph g = make_family(family, n, rng);
      for (double eps : {0.5, 0.2}) {
        const std::string ctx =
            family + " n=" + std::to_string(n) + " eps=" + Table::num(eps, 2);
        OverlapDecompParams op;
        op.budgeted = true;
        const OverlapDecompResult od =
            overlap_expander_decomposition(g, eps, op);
        const OverlapQuality q = evaluate_overlap(g, od);
        CHECK_MSG(q.base.clusters_connected, ctx + ": supports connected");
        CHECK_MSG(q.base.eps_fraction <= eps + 1e-12, ctx + ": uncovered");
        CHECK_MSG(q.level_budget_ok, ctx + ": level budget");
        CHECK_MSG(q.min_support_phi_lower > 0.0, ctx);
        // One cluster membership per level plus one per surgical retry.
        int retries = 0;
        for (int r : od.level_retries) retries += r;
        CHECK_MSG(q.overlap_c >= 1 && q.overlap_c <= od.iterations + retries,
                  ctx + ": c=" + std::to_string(q.overlap_c));
        for (const auto& mem : od.oc.members) {
          CHECK_MSG(!mem.empty(), ctx);
          for (int v : mem) CHECK_MSG(v >= 0 && v < g.n(), ctx);
        }
        const congest::AuditResult audit = od.ledger.audit(2 * g.m());
        CHECK_MSG(audit.ok, ctx + ": " + audit.violation);
      }
    }
  }
}

TEST_CASE(fuzz_phi_differential) {
  // The three certification tiers pinned against each other on every small
  // connected graph of a seeded sweep: cut-matching certified lower bound
  // <= exact brute-force conductance <= witnessed sweep upper bound.
  int certified = 0, sparse = 0;
  for (std::uint64_t seed = 1; seed <= 80; ++seed) {
    int n = 0;
    const Graph g = small_connected(seed, &n);
    const std::string ctx = "seed=" + std::to_string(seed);
    const PhiCertificate exact = phi_certificate(g, 20);
    CHECK_MSG(exact.verdict == PhiVerdict::kExact, ctx);
    CHECK_MSG(exact.exact && exact.phi > 0.0 && exact.phi <= 1.0, ctx);

    // Force tier 2/3 by dropping the exact cap below every drawn size.
    expander::PhiCertParams pc;
    pc.exact_cap = 2;
    const expander::PhiReport rep = expander::certified_phi(g, pc);
    CHECK_MSG(rep.upper >= exact.phi - 1e-12, ctx + ": upper bracket");
    if (rep.cert.verdict == PhiVerdict::kCutMatching) {
      ++certified;
      CHECK_MSG(rep.cert.phi <= exact.phi + 1e-12, ctx + ": lower bracket");
      CHECK_MSG(rep.cert.phi > 0.0, ctx);
      CHECK_MSG(rep.cert.certified_lower(), ctx);
    }
    const congest::AuditResult audit = rep.ledger.audit(2 * g.m());
    CHECK_MSG(audit.ok, ctx + ": " + audit.violation);

    // The raw game with over-ambitious targets must either still certify
    // soundly or produce a genuine sparse cut (re-checked conductance below
    // the target and never below the true minimum). phi_target = 1.0 plays
    // with unit edge capacities, the regime where matching flows fail.
    for (double target : {std::min(1.0, exact.phi * 1.5), 1.0}) {
      expander::CutMatchingParams gp;
      gp.phi_target = target;
      const expander::CutMatchingOutcome out =
          expander::cut_matching_game(g, gp);
      if (out.verdict == expander::CutMatchingVerdict::kCertified) {
        const expander::EmbeddingAudit replay =
            expander::verify_cut_matching(g, out.cert);
        CHECK_MSG(replay.ok, ctx + ": " + replay.violation);
        CHECK_MSG(out.cert.phi_lower <= exact.phi + 1e-12, ctx + ": soundness");
      } else if (out.verdict == expander::CutMatchingVerdict::kSparseCut) {
        ++sparse;
        CHECK_MSG(out.cut_phi < out.phi_target, ctx + ": cut not sparse");
        CHECK_MSG(out.cut_phi >= exact.phi - 1e-12, ctx + ": cut below minimum");
      }
    }
  }
  // The sweep must actually exercise both outcomes, not vacuously pass.
  CHECK_MSG(certified >= 40, "only " + std::to_string(certified) + " certified");
  CHECK_MSG(sparse >= 5, "only " + std::to_string(sparse) + " sparse cuts");
}

TEST_CASE(fuzz_phi_degenerate) {
  // Documented verdicts on degenerate inputs (see graph/metrics.hpp):
  // <= 1 non-isolated vertex -> kTrivial phi=1; a disconnected edge-bearing
  // core -> kDisconnected phi=0; isolated vertices never create zero-volume
  // "cuts" (they carry no volume, so they are stripped, not counted).
  const auto expect = [](const Graph& g, PhiVerdict verdict, double phi,
                         const std::string& ctx) {
    const PhiCertificate cert = phi_certificate(g);
    CHECK_MSG(cert.verdict == verdict, ctx);
    CHECK_MSG(cert.phi == phi, ctx);
    CHECK_MSG(cert.exact, ctx);
    CHECK_MSG(cert.certified_lower(), ctx);
  };
  expect(Graph::from_edges(0, {}), PhiVerdict::kTrivial, 1.0, "empty");
  expect(Graph::from_edges(1, {}), PhiVerdict::kTrivial, 1.0, "one vertex");
  expect(Graph::from_edges(3, {}), PhiVerdict::kTrivial, 1.0, "edgeless");
  // K2 has two edge-bearing vertices, so it is exact, not trivial (its only
  // cut has conductance exactly 1).
  expect(Graph::from_edges(2, {{0, 1}}), PhiVerdict::kExact, 1.0, "K2");
  // Triangle + isolated vertex: the isolated vertex must NOT read as a
  // zero-volume disconnection — the certificate is the triangle's exact 1.
  expect(Graph::from_edges(4, {{0, 1}, {1, 2}, {0, 2}}), PhiVerdict::kExact,
         1.0, "triangle + isolated");
  expect(Graph::from_edges(4, {{0, 1}, {2, 3}}), PhiVerdict::kDisconnected,
         0.0, "two disjoint edges");
  expect(Graph::from_edges(6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}}),
         PhiVerdict::kDisconnected, 0.0, "two triangles");

  // certified_phi mirrors the verdicts and brackets them with upper bounds.
  const expander::PhiReport trivial =
      expander::certified_phi(Graph::from_edges(1, {}));
  CHECK(trivial.cert.verdict == PhiVerdict::kTrivial && trivial.upper == 1.0);
  const expander::PhiReport disc =
      expander::certified_phi(Graph::from_edges(4, {{0, 1}, {2, 3}}));
  CHECK(disc.cert.verdict == PhiVerdict::kDisconnected && disc.upper == 0.0);

  // The raw game refuses degenerate boards outright.
  CHECK(expander::cut_matching_game(Graph::from_edges(1, {})).verdict ==
        expander::CutMatchingVerdict::kInconclusive);
  CHECK(expander::cut_matching_game(Graph::from_edges(3, {})).verdict ==
        expander::CutMatchingVerdict::kInconclusive);
}

TEST_CASE(fuzz_certificate_replay_rejects_tampering) {
  // Replay semantics: the certificate is only as good as its recorded paths,
  // so every class of tampering must be caught by verify_cut_matching — by
  // both the serial replay and the pooled blocked replay, and for
  // certificates produced by either engine.
  Rng rng(5);
  const Graph g = make_family("grid", 64, rng);
  congest::ShardPool pool(3);
  for (const auto engine :
       {expander::CutMatchingEngine::kDense,
        expander::CutMatchingEngine::kImplicit}) {
    expander::CutMatchingParams gp;
    gp.phi_target = 0.05;
    gp.engine = engine;
    const bool pooled = engine == expander::CutMatchingEngine::kImplicit;
    expander::VerifyParams vp;
    vp.replay_block = pooled ? 5 : 0;  // force multi-block on the pooled leg
    vp.pool = pooled ? &pool : nullptr;
    const auto verify = [&](const expander::CutMatchingCertificate& c) {
      return expander::verify_cut_matching(g, c, vp);
    };
    const expander::CutMatchingOutcome out = expander::cut_matching_game(g, gp);
    CHECK(out.verdict == expander::CutMatchingVerdict::kCertified);
    CHECK(out.engine_used == engine);
    CHECK(verify(out.cert).ok);

    {  // Inflated headline bound.
      expander::CutMatchingCertificate bad = out.cert;
      bad.phi_lower *= 2.0;
      CHECK(!verify(bad).ok);
    }
    {  // Understated congestion (the bound's denominator).
      expander::CutMatchingCertificate bad = out.cert;
      bad.congestion = std::max<std::int64_t>(1, bad.congestion - 1);
      bad.phi_lower = out.cert.phi_lower;
      CHECK(!verify(bad).ok);
    }
    {  // A path step that is not an edge of the graph.
      expander::CutMatchingCertificate bad = out.cert;
      bad.matchings.front().front().path.insert(
          bad.matchings.front().front().path.begin() + 1, g.n() - 1);
      CHECK(!verify(bad).ok);
    }
    {  // A duplicated pair breaks per-round vertex-disjointness.
      expander::CutMatchingCertificate bad = out.cert;
      bad.matchings.front().push_back(bad.matchings.front().front());
      CHECK(!verify(bad).ok);
    }
    {  // Claiming an extra (never-played) matching alters alpha.
      expander::CutMatchingCertificate bad = out.cert;
      bad.matchings.push_back(bad.matchings.front());
      CHECK(!verify(bad).ok);
    }
  }
}

TEST_CASE(fuzz_dense_implicit_equivalence) {
  // The tentpole contract: the implicit-matrix engine (probe bank + blocked
  // column replay) is a pure re-representation of the dense reference — the
  // entire outcome must match bit for bit on every family, at a derived and
  // a pinned target, for any replay block size, with and without a pool.
  congest::ShardPool pool(3);
  for (const std::string& family : kFamilies) {
    for (int n : {96, 160}) {
      Rng rng(23);
      const Graph g = make_family(family, n, rng);
      for (double target : {0.0, 0.08}) {
        const std::string ctx = family + " n=" + std::to_string(n) +
                                " target=" + Table::num(target, 2);
        expander::CutMatchingParams gp;
        gp.phi_target = target;
        gp.engine = expander::CutMatchingEngine::kDense;
        const expander::CutMatchingOutcome dense =
            expander::cut_matching_game(g, gp);
        CHECK_MSG(dense.engine_used == expander::CutMatchingEngine::kDense,
                  ctx);

        gp.engine = expander::CutMatchingEngine::kImplicit;
        const expander::CutMatchingOutcome implicit_ =
            expander::cut_matching_game(g, gp);
        CHECK_MSG(
            implicit_.engine_used == expander::CutMatchingEngine::kImplicit,
            ctx);
        same_outcome(dense, implicit_, ctx + " [implicit]");
        // The implicit engine's state high-water must beat the dense n^2.
        CHECK_MSG(implicit_.state_bytes_peak < dense.state_bytes_peak,
                  ctx + ": state not smaller");

        // An awkward block size that does not divide n, plus a pool: the
        // replay is block- and thread-invariant by construction.
        gp.replay_block = 7;
        gp.pool = &pool;
        const expander::CutMatchingOutcome blocked =
            expander::cut_matching_game(g, gp);
        same_outcome(dense, blocked, ctx + " [blocked+pooled]");
        gp.replay_block = 0;
        gp.pool = nullptr;

        if (dense.verdict == expander::CutMatchingVerdict::kCertified) {
          // Both serial and pooled verification accept the shared cert.
          CHECK_MSG(expander::verify_cut_matching(g, dense.cert).ok, ctx);
          expander::VerifyParams vp;
          vp.replay_block = 11;
          vp.pool = &pool;
          CHECK_MSG(expander::verify_cut_matching(g, implicit_.cert, vp).ok,
                    ctx);
        }
      }
    }
  }
}

TEST_CASE(fuzz_large_cluster_certify) {
  // A cluster far above the old 1024-vertex cap certifies end to end on the
  // implicit engine: positive replayed bound, passing pooled verification,
  // mixing state well under the dense engine's 8 n^2 bytes.
  Rng rng(7);
  const Graph g = make_family("planar", 700, rng);
  congest::ShardPool pool(3);
  expander::PhiCertParams pc;
  pc.game.phi_target = 0.02;
  pc.pool = &pool;
  const expander::PhiReport rep = expander::certified_phi(g, pc);
  CHECK_MSG(rep.cert.verdict == PhiVerdict::kCutMatching,
            "large cluster did not certify");
  CHECK(rep.cert.phi > 0.0);
  CHECK(rep.cert.certified_lower());
  CHECK_MSG(rep.cert.phi <= rep.upper + 1e-9, "bound above witnessed upper");
  CHECK_MSG(rep.game_state_bytes > 0 &&
                rep.game_state_bytes <
                    8 * static_cast<std::int64_t>(g.n()) * g.n(),
            "state bytes not sub-quadratic");
  // Pure function of the input: the pooled run equals a serial re-run.
  pc.pool = nullptr;
  const expander::PhiReport again = expander::certified_phi(g, pc);
  CHECK(again.cert.phi == rep.cert.phi);
  CHECK(again.game_state_bytes == rep.game_state_bytes);
}

TEST_CASE(fuzz_certify_audit) {
  // The engines' certify mode on real decompositions: the audit passes, the
  // certified/estimated split covers every cluster, and the game charges
  // keep the full ledger auditable.
  for (const std::string& family : {std::string("grid"), std::string("planar")}) {
    Rng rng(17);
    const Graph g = make_family(family, 256, rng);
    ExpanderDecompParams xp;
    xp.certify = true;
    const ExpanderDecomp ed = expander_decomposition_minor_free(g, 0.5, xp);
    const std::string ctx = family + ": expander";
    CHECK_MSG(ed.certify_ok, ctx);
    CHECK_MSG(ed.clusters_certified + ed.clusters_estimated == ed.clustering.k,
              ctx + ": split covers clusters");
    CHECK_MSG(ed.clusters_certified > 0, ctx);
    if (ed.clusters_certified == ed.clustering.k) {
      CHECK_MSG(ed.min_phi_lower > 0.0, ctx + ": positive certified bound");
    }
    CHECK_MSG(ed.min_phi_lower <= 1.0 && ed.min_phi_estimate <= 1.0, ctx);
    congest::AuditResult audit = ed.ledger.audit(2 * g.m());
    CHECK_MSG(audit.ok, ctx + ": " + audit.violation);
    bool saw_game_phase = false;
    for (const congest::RoundCharge& e : ed.ledger.entries()) {
      saw_game_phase = saw_game_phase ||
                       e.phase.find("certify: cut-matching games") !=
                           std::string::npos;
    }
    CHECK_MSG(saw_game_phase, ctx + ": game phase charged");

    OverlapDecompParams op;
    op.budgeted = true;
    op.certify = true;
    const OverlapDecompResult od = overlap_expander_decomposition(g, 0.4, op);
    const std::string octx = family + ": overlap";
    CHECK_MSG(od.certify_ok, octx);
    CHECK_MSG(od.clusters_certified + od.clusters_estimated == od.oc.k(),
              octx + ": split covers clusters");
    CHECK_MSG(od.clusters_certified > 0, octx);
    audit = od.ledger.audit(2 * g.m());
    CHECK_MSG(audit.ok, octx + ": " + audit.violation);

    // Determinism: certify mode is still a pure function of (g, eps).
    const ExpanderDecomp again = expander_decomposition_minor_free(g, 0.5, xp);
    CHECK_MSG(again.min_phi_lower == ed.min_phi_lower, ctx + ": deterministic");
    CHECK_MSG(again.clusters_certified == ed.clusters_certified, ctx);
  }
}
