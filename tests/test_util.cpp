// Unit tests for util/: Rng reproducibility, Accumulator, Cli parsing,
// Table formatting and alignment.
#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "test_main.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace mfd;

TEST_CASE(rng_reproducible) {
  Rng a(42), b(42), c(43);
  bool all_equal = true, any_diff = false;
  for (int i = 0; i < 256; ++i) {
    const auto av = a.next();
    all_equal = all_equal && (av == b.next());
    any_diff = any_diff || (av != c.next());
  }
  CHECK(all_equal);
  CHECK(any_diff);

  Rng d(7), e(7);
  for (int i = 0; i < 256; ++i) {
    CHECK(d.uniform_int(0, 1000) == e.uniform_int(0, 1000));
  }
}

TEST_CASE(rng_ranges) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(3, 9);
    CHECK(v >= 3 && v <= 9);
    const double u = rng.uniform();
    CHECK(u >= 0.0 && u < 1.0);
    CHECK(rng.exponential(0.5) >= 0.0);
  }
}

TEST_CASE(accumulator_mean) {
  Accumulator acc;
  CHECK(acc.mean() == 0.0);
  CHECK(acc.count() == 0);
  for (double x : {1.0, 2.0, 3.0, 4.0}) acc.add(x);
  CHECK(acc.count() == 4);
  CHECK(acc.mean() == 2.5);
  CHECK(acc.min() == 1.0);
  CHECK(acc.max() == 4.0);
}

TEST_CASE(percentiles_nearest_rank) {
  // Nearest-rank over 1..100: pN is exactly N.
  std::vector<double> s;
  for (int i = 1; i <= 100; ++i) s.push_back(i);
  CHECK(percentile_sorted(s, 50.0) == 50.0);
  CHECK(percentile_sorted(s, 90.0) == 90.0);
  CHECK(percentile_sorted(s, 99.0) == 99.0);
  CHECK(percentile_sorted(s, 100.0) == 100.0);
  CHECK(percentile_sorted(s, 0.0) == 1.0);    // clamped to the first sample
  CHECK(percentile_sorted(s, 150.0) == 100.0);  // p clamps to 100
  const std::vector<double> one = {7.0};
  CHECK(percentile_sorted(one, 50.0) == 7.0);
  CHECK(percentile_sorted(one, 99.0) == 7.0);
  const std::vector<double> none;
  CHECK(percentile_sorted(none, 50.0) == 0.0);
}

TEST_CASE(latency_summary_sorts_and_summarizes) {
  std::vector<double> samples = {5.0, 1.0, 4.0, 2.0, 3.0};
  const LatencySummary sum = summarize_latency(samples);
  CHECK(sum.count == 5);
  CHECK(sum.p50 == 3.0);
  CHECK(sum.p99 == 5.0);
  CHECK(sum.mean == 3.0);
  CHECK(sum.max == 5.0);
  // The input is sorted in place — the documented contract.
  CHECK(std::is_sorted(samples.begin(), samples.end()));
  std::vector<double> empty;
  const LatencySummary zero = summarize_latency(empty);
  CHECK(zero.count == 0 && zero.p50 == 0.0 && zero.max == 0.0);
}

TEST_CASE(log2_histogram_buckets) {
  Log2Histogram h(12);
  CHECK(h.buckets() == 12);
  CHECK(h.max_nonempty() == -1);
  // Bucket 0 is [0, 1); bucket i >= 1 is [2^(i-1), 2^i).
  h.add(0.0);
  h.add(0.5);
  h.add(0.999);  // all bucket 0
  h.add(1.0);    // bucket 1
  h.add(2.0);
  h.add(3.0);    // bucket 2
  h.add(4.0);    // bucket 3
  h.add(1024.0);   // bucket 11 (the last one)
  h.add(1.0e300);  // clamps into the last bucket
  CHECK(h.count(0) == 3);
  CHECK(h.count(1) == 1);
  CHECK(h.count(2) == 2);
  CHECK(h.count(3) == 1);
  CHECK(h.count(11) == 2);
  CHECK(h.total() == 9);
  CHECK(h.max_nonempty() == 11);
  CHECK(Log2Histogram::bucket_lo(0) == 0.0);
  CHECK(Log2Histogram::bucket_hi(0) == 1.0);
  CHECK(Log2Histogram::bucket_lo(3) == 4.0);
  CHECK(Log2Histogram::bucket_hi(3) == 8.0);
}

TEST_CASE(zipf_sampler_head_mass_and_determinism) {
  const int n = 1000;
  const ZipfSampler zipf(n, 1.0);
  CHECK(zipf.n() == n);
  // Exact head mass is 1/H_1000 ~ 0.1336; pin the computed CDF against an
  // independent harmonic sum, then the empirical frequency against the CDF.
  double harmonic = 0.0;
  for (int r = 1; r <= n; ++r) harmonic += 1.0 / r;
  const double expect_head = 1.0 / harmonic;
  CHECK(std::abs(zipf.head_mass() - expect_head) < 1e-12);
  Rng rng(7);
  const int draws = 200000;
  std::vector<int> counts(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < draws; ++i) {
    const int r = zipf.sample(rng);
    CHECK(r >= 0 && r < n);
    ++counts[static_cast<std::size_t>(r)];
  }
  const double freq0 = static_cast<double>(counts[0]) / draws;
  CHECK_MSG(std::abs(freq0 - expect_head) < 0.008,
            "head mass off: " + std::to_string(freq0));
  // The head dominates the tail the way Zipf(1) must.
  CHECK(counts[0] > counts[9]);
  CHECK(counts[9] > counts[99]);
  // Same seed, same stream: the mix is reproducible across runs.
  Rng a(123), b(123);
  for (int i = 0; i < 200; ++i) CHECK(zipf.sample(a) == zipf.sample(b));
}

TEST_CASE(cli_defaults) {
  const char* argv[] = {"prog"};
  const Cli cli(1, const_cast<char**>(argv));
  CHECK(cli.get_int("n", 10000) == 10000);
  CHECK(cli.get("family", "grid") == "grid");
  CHECK(cli.get_double("eps", 0.3) == 0.3);
  CHECK(!cli.has("n"));
}

TEST_CASE(cli_provided) {
  const char* argv[] = {"prog", "--n",   "4096",        "--family", "planar",
                        "--eps=0.25",    "--shift", "-5", "--verbose"};
  const Cli cli(9, const_cast<char**>(argv));
  CHECK(cli.get_int("n", 1) == 4096);
  CHECK(cli.get("family", "grid") == "planar");
  CHECK(cli.get_double("eps", 0.3) == 0.25);
  CHECK(cli.get_int("shift", 0) == -5);  // negative value, not a flag
  CHECK(!cli.has("5"));
  CHECK(cli.get_int("verbose", 0) == 1);
  CHECK(cli.has("n"));
}

TEST_CASE(table_formatting) {
  CHECK(Table::num(3.14159, 2) == "3.14");
  CHECK(Table::num(2.0, 0) == "2");
  CHECK(Table::num(0.5, 3) == "0.500");
  CHECK(Table::integer(42) == "42");
  CHECK(Table::integer(-7) == "-7");
  CHECK(Table::integer(1234567890123LL) == "1234567890123");
}

TEST_CASE(table_alignment) {
  Table t({"algorithm", "eps", "rounds"});
  t.add_row({"ours", Table::num(0.2, 2), Table::integer(12)});
  t.add_row({"a-much-longer-name", Table::num(0.25, 2), Table::integer(3456)});
  CHECK(t.row_count() == 2);
  std::ostringstream os;
  t.print(os);
  std::vector<std::string> lines;
  std::string line;
  std::istringstream is(os.str());
  while (std::getline(is, line)) lines.push_back(line);
  CHECK(lines.size() == 4);  // header + rule + 2 rows
  for (const auto& l : lines) {
    CHECK_MSG(l.size() == lines[0].size(), "aligned columns give equal widths");
  }
  CHECK(lines[0].find("algorithm") != std::string::npos);
  CHECK(lines[1].find_first_not_of("- ") == std::string::npos);
  // Numeric columns right-aligned: the short round count ends where the
  // longer one does.
  CHECK(lines[2].rfind("12") == lines[2].size() - 2);
  CHECK(lines[3].rfind("3456") == lines[3].size() - 4);
}

TEST_CASE(cli_eq_and_repeated_flags_last_wins) {
  // `--key=value` and `--key value` are interchangeable, and the LAST
  // occurrence wins regardless of which form each occurrence used — shell
  // wrappers append overrides and expect them to stick.
  const char* argv[] = {"prog", "--n=5",         "--n",        "7",
                        "--n=9", "--family",     "planar",     "--family=grid",
                        "--eps", "0.4",          "--eps=0.25"};
  const Cli cli(11, const_cast<char**>(argv));
  CHECK(cli.get_int("n", 0) == 9);
  CHECK(cli.get("family", "tree") == "grid");
  CHECK(cli.get_double("eps", 0.3) == 0.25);
  std::ostringstream err;
  CHECK(cli.warn_unrecognized(err) == 0);
  CHECK(err.str().empty());
}

TEST_CASE(cli_malformed_values_fall_back) {
  // `--n=` and `--n abc` used to throw an uncaught std::invalid_argument out
  // of std::stoll, killing scripted sweeps mid-batch. They must fall back to
  // the default and be reported by warn_unrecognized instead.
  const char* argv[] = {"prog", "--n=", "--depth", "abc", "--eps=0.x"};
  const Cli cli(5, const_cast<char**>(argv));
  CHECK(cli.get_int("n", 4096) == 4096);
  CHECK(cli.get_int("depth", 3) == 3);
  CHECK(cli.get_double("eps", 0.3) == 0.3);
  std::ostringstream err;
  CHECK(cli.warn_unrecognized(err) == 3);
  const std::string text = err.str();
  CHECK(text.find("--n has non-numeric value ''") != std::string::npos);
  CHECK(text.find("--depth has non-numeric value 'abc'") != std::string::npos);
  CHECK(text.find("--eps has non-numeric value '0.x'") != std::string::npos);
}

TEST_CASE(cli_scientific_and_negative_values) {
  // Scientific-notation values must parse as values, not be mistaken for
  // flags: `--eps -1e-3` previously split into eps="1" plus a bogus flag.
  const char* argv[] = {"prog", "--eps", "-1e-3", "--scale", "2.5E2",
                        "--shift", "-5"};
  const Cli cli(7, const_cast<char**>(argv));
  CHECK(cli.get_double("eps", 0.3) == -1e-3);
  CHECK(cli.get_double("scale", 1.0) == 250.0);
  CHECK(cli.get_int("shift", 0) == -5);
  std::ostringstream err;
  CHECK(cli.warn_unrecognized(err) == 0);
  CHECK(err.str().empty());
}

TEST_CASE(cli_stray_positionals_reported) {
  // Positional tokens (and stranded numeric values whose flag was mistyped)
  // used to vanish silently; they must surface through warn_unrecognized.
  const char* argv[] = {"prog", "junk", "--n", "64", "17", "-3"};
  const Cli cli(6, const_cast<char**>(argv));
  CHECK(cli.get_int("n", 0) == 64);
  CHECK(cli.stray().size() == 3);
  CHECK(cli.stray()[0] == "junk");
  CHECK(cli.stray()[1] == "17");
  CHECK(cli.stray()[2] == "-3");
  std::ostringstream err;
  CHECK(cli.warn_unrecognized(err) == 3);
  CHECK(err.str().find("stray argument 'junk'") != std::string::npos);
  CHECK(err.str().find("stray argument '-3'") != std::string::npos);
}

TEST_CASE(cli_unknown_flags_warn) {
  // --smok is a typo for --smoke: it must be reported (with a suggestion),
  // not silently ignored — a smoke run must never silently become full.
  const char* argv[] = {"prog", "--smok", "--n", "64", "--sed", "9"};
  const Cli cli(6, const_cast<char**>(argv));
  CHECK(!cli.has("smoke"));
  CHECK(cli.get_int("n", 0) == 64);
  CHECK(cli.get_int("seed", 1) == 1);
  const std::vector<std::string> unknown = cli.unrecognized();
  CHECK(unknown.size() == 2);
  CHECK(unknown[0] == "sed");
  CHECK(unknown[1] == "smok");
  std::ostringstream err;
  CHECK(cli.warn_unrecognized(err) == 2);
  const std::string text = err.str();
  CHECK(text.find("unknown flag --smok") != std::string::npos);
  CHECK(text.find("did you mean --smoke?") != std::string::npos);
  CHECK(text.find("unknown flag --sed") != std::string::npos);
  CHECK(text.find("did you mean --seed?") != std::string::npos);
}

TEST_CASE(cli_recognized_flags_quiet) {
  const char* argv[] = {"prog", "--n", "64", "--smoke"};
  const Cli cli(4, const_cast<char**>(argv));
  CHECK(cli.get_int("n", 0) == 64);
  CHECK(cli.has("smoke"));
  std::ostringstream err;
  CHECK(cli.warn_unrecognized(err) == 0);
  CHECK(err.str().empty());
}
