// The flattened query-serving tier's contracts (apps/compact_routing.hpp):
//   * flat_route_hops is bit-identical to the pointer-walk reference
//     route_hops — hop counts AND visited-vertex sequences — on all 11
//     graph families at n <= 4k, across eps values (the PR 6
//     serial-reference rule applied to the read path);
//   * table byte accounting: the flat arrays have exactly the structural
//     sizes the two-level scheme implies, and table_bytes() sums them;
//   * serve_route_queries is deterministic across thread counts {1, 2, hw}
//     and grains, and equals the per-query serial loop;
//   * undeliverable (cross-component) queries answer -1 in both engines.
#include <string>
#include <utility>
#include <vector>

#include "apps/compact_routing.hpp"
#include "bench_common.hpp"
#include "congest/shard.hpp"
#include "decomp/edt.hpp"
#include "graph/ops.hpp"
#include "test_main.hpp"

using namespace mfd;

namespace {

const char* kFamilies[] = {"planar",  "planar-sparse", "grid",
                           "torus",   "outerplanar",   "tree",
                           "cycle",   "path",          "cactus",
                           "ktree3",  "series-parallel"};

struct Built {
  Graph g;
  apps::RoutingScheme scheme;
  apps::FlatRoutingTables flat;
};

Built build(const std::string& family, int n, double eps, Rng& rng) {
  Built b;
  b.g = bench::make_family(family, n, rng);
  const decomp::EdtDecomposition edt = decomp::build_edt_decomposition(b.g, eps);
  b.scheme = apps::build_routing_scheme(b.g, edt.clustering);
  b.flat = apps::flatten_routing_scheme(b.scheme);
  return b;
}

}  // namespace

TEST_CASE(flat_routes_match_pointer_walk_all_families) {
  Rng rng(31);
  for (const char* fam : kFamilies) {
    for (double eps : {0.5, 0.25}) {
      const Built b = build(fam, 600, eps, rng);
      const std::string ctx = std::string(fam) + " eps=" + Table::num(eps, 2);
      int delivered_ref = 0, delivered_flat = 0;
      std::vector<int> ref_path, flat_path;
      for (int trial = 0; trial < 300; ++trial) {
        const int u = static_cast<int>(rng.next_below(b.g.n()));
        const int v = static_cast<int>(rng.next_below(b.g.n()));
        ref_path.clear();
        flat_path.clear();
        const int rh = apps::route_hops(b.scheme, u, v, &ref_path);
        const int fh = apps::flat_route_hops(b.flat, u, v, &flat_path);
        CHECK_MSG(rh == fh, ctx + ": hops diverged " + std::to_string(u) +
                                " -> " + std::to_string(v));
        CHECK_MSG(ref_path == flat_path,
                  ctx + ": path diverged " + std::to_string(u) + " -> " +
                      std::to_string(v));
        delivered_ref += rh >= 0 ? 1 : 0;
        delivered_flat += fh >= 0 ? 1 : 0;
        if (rh >= 0) {
          // A delivered path really is a hop sequence ending at the target.
          CHECK_MSG(static_cast<int>(flat_path.size()) == fh, ctx);
          if (fh > 0) CHECK_MSG(flat_path.back() == v, ctx);
        }
      }
      CHECK_MSG(delivered_ref == delivered_flat, ctx);
      CHECK_MSG(delivered_ref == 300, ctx + ": connected family must deliver");
    }
  }
}

TEST_CASE(flat_next_hop_first_step_of_route) {
  Rng rng(32);
  const Built b = build("grid", 900, 0.3, rng);
  std::vector<int> path;
  for (int trial = 0; trial < 200; ++trial) {
    const int u = static_cast<int>(rng.next_below(b.g.n()));
    const int v = static_cast<int>(rng.next_below(b.g.n()));
    path.clear();
    const int hops = apps::flat_route_hops(b.flat, u, v, &path);
    const int nh = apps::flat_next_hop(b.flat, u, v);
    if (u == v) {
      CHECK(nh == u);
    } else if (hops > 0) {
      CHECK(nh == path.front());
      CHECK(b.g.has_edge(u, nh));  // the next hop is a real neighbor
    }
  }
}

TEST_CASE(flat_table_byte_accounting) {
  Rng rng(33);
  for (const char* fam : {"grid", "tree", "cactus"}) {
    const Built b = build(fam, 700, 0.3, rng);
    const apps::FlatRoutingTables& t = b.flat;
    const std::string ctx = fam;
    CHECK_MSG(static_cast<int>(t.vertex.size()) == t.n, ctx);
    CHECK_MSG(static_cast<int>(t.cluster.size()) == t.k, ctx);
    // Every vertex except each cluster's center is someone's tree child,
    // and every cluster except each component's cluster-tree root is a
    // cluster-tree child: the CSR payloads account for exactly those.
    int centers = 0;
    for (int c = 0; c < t.k; ++c) centers += b.scheme.center[c] >= 0 ? 1 : 0;
    int ctree_roots = 0;
    for (int c = 0; c < t.k; ++c) ctree_roots += t.cluster[c].parent < 0 ? 1 : 0;
    CHECK_MSG(static_cast<int>(t.child.size()) == t.n - centers, ctx);
    CHECK_MSG(static_cast<int>(t.cchild.size()) == t.k - ctree_roots, ctx);
    // table_bytes() must account every array — the bench's bytes/vertex
    // column is this sum and nothing else.
    const std::int64_t expect =
        static_cast<std::int64_t>(
            t.vertex.size() * sizeof(apps::FlatRoutingTables::VertexRec)) +
        static_cast<std::int64_t>(
            t.child.size() * sizeof(apps::FlatRoutingTables::ChildRec)) +
        static_cast<std::int64_t>(
            t.cluster.size() * sizeof(apps::FlatRoutingTables::ClusterRec)) +
        static_cast<std::int64_t>(
            t.cchild.size() * sizeof(apps::FlatRoutingTables::ClusterChildRec));
    CHECK_MSG(t.table_bytes() == expect, ctx);
    CHECK_MSG(t.bytes_per_vertex() * t.n == static_cast<double>(expect), ctx);
    // CSR slices tile the payload arrays in order.
    std::int32_t cursor = 0;
    for (int v = 0; v < t.n; ++v) {
      CHECK_MSG(t.vertex[v].kids_begin == cursor, ctx);
      CHECK_MSG(t.vertex[v].kids_end >= t.vertex[v].kids_begin, ctx);
      cursor = t.vertex[v].kids_end;
    }
    CHECK_MSG(cursor == static_cast<std::int32_t>(t.child.size()), ctx);
  }
}

TEST_CASE(serve_deterministic_across_thread_counts) {
  Rng rng(34);
  const Built b = build("grid", 2304, 0.3, rng);  // 48x48, n <= 4k
  // Uniform + zipf mix, including u == v queries.
  std::vector<std::pair<int, int>> queries;
  const ZipfSampler zipf(b.g.n(), 1.0);
  for (int i = 0; i < 20000; ++i) {
    if (i % 3 == 0) {
      queries.emplace_back(zipf.sample(rng), zipf.sample(rng));
    } else {
      queries.emplace_back(static_cast<int>(rng.next_below(b.g.n())),
                           static_cast<int>(rng.next_below(b.g.n())));
    }
  }
  // Serial per-query loop is the reference output.
  std::vector<int> expect(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    expect[i] = apps::flat_route_hops(b.flat, queries[i].first,
                                      queries[i].second);
  }
  for (int threads : {1, 2, 0}) {  // 0 = hardware_concurrency
    congest::ShardPool pool(threads);
    for (std::int64_t grain : {1, 7, 4096}) {
      std::vector<int> out;
      apps::serve_route_queries(b.flat, queries, out, &pool, grain);
      CHECK_MSG(out == expect, "threads=" + std::to_string(pool.threads()) +
                                   " grain=" + std::to_string(grain));
    }
  }
  // No pool at all is the inline serial path.
  std::vector<int> out;
  apps::serve_route_queries(b.flat, queries, out, nullptr);
  CHECK(out == expect);
}

TEST_CASE(cross_component_queries_undeliverable_in_both_engines) {
  Rng rng(35);
  const Graph g = disjoint_union(cycle_graph(40), path_graph(30));
  const decomp::EdtDecomposition edt = decomp::build_edt_decomposition(g, 0.4);
  const apps::RoutingScheme scheme = apps::build_routing_scheme(g, edt.clustering);
  const apps::FlatRoutingTables flat = apps::flatten_routing_scheme(scheme);
  int cross = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const int u = static_cast<int>(rng.next_below(g.n()));
    const int v = static_cast<int>(rng.next_below(g.n()));
    const int rh = apps::route_hops(scheme, u, v);
    const int fh = apps::flat_route_hops(flat, u, v);
    CHECK(rh == fh);
    const bool same_side = (u < 40) == (v < 40);
    if (!same_side) {
      CHECK(fh == -1);
      ++cross;
    } else {
      CHECK(fh >= 0);
    }
  }
  CHECK(cross > 0);  // the sweep really exercised cross-component pairs
}
