// congest/ layer invariants: Cole–Vishkin 3-coloring of rooted forests.
//   * colors land in {0,1,2} and are proper along every parent edge,
//   * the round count respects the O(log* n) bound (tracked, not symbolic),
//   * star-shaped and path-shaped forests both color correctly,
//   * the primitive is deterministic.
#include <cmath>
#include <string>
#include <vector>

#include "congest/cole_vishkin.hpp"
#include "decomp/edt.hpp"  // log_star
#include "graph/generators.hpp"
#include "test_main.hpp"

using namespace mfd;

namespace {

std::vector<int> path_parents(int n) {
  std::vector<int> parent(n);
  parent[0] = -1;
  for (int v = 1; v < n; ++v) parent[v] = v - 1;
  return parent;
}

void check_proper(const std::vector<int>& parent,
                  const congest::ColeVishkinResult& cv, const std::string& ctx) {
  for (std::size_t v = 0; v < parent.size(); ++v) {
    CHECK_MSG(cv.color[v] >= 0 && cv.color[v] <= 2, ctx + ": color range");
    if (parent[v] >= 0 && parent[v] != static_cast<int>(v)) {
      CHECK_MSG(cv.color[v] != cv.color[parent[v]], ctx + ": proper");
    }
  }
}

}  // namespace

TEST_CASE(cv_path_proper_3coloring) {
  for (int n : {2, 3, 7, 100, 4096, 65536}) {
    const auto parent = path_parents(n);
    const auto cv = congest::cole_vishkin_3color_forest(n, parent);
    check_proper(parent, cv, "path n=" + std::to_string(n));
  }
}

TEST_CASE(cv_rounds_log_star_bound) {
  // The tracked rounds must scale like log* n, nothing faster-growing:
  // iterations to shrink ids below 6 colors + the constant 6 palette rounds.
  for (int n : {64, 4096, 65536, 1 << 20}) {
    const auto parent = path_parents(n);
    const auto cv = congest::cole_vishkin_3color_forest(n, parent);
    const int bound = 2 * decomp::log_star(static_cast<double>(n)) + 8;
    CHECK_MSG(cv.rounds <= bound,
              "n=" + std::to_string(n) + " rounds=" + std::to_string(cv.rounds));
    CHECK_MSG(cv.rounds >= 6, "palette reduction rounds missing");
  }
}

TEST_CASE(cv_random_forest_proper) {
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 50 + static_cast<int>(rng.next_below(2000));
    // Random attachment forest with a few roots.
    std::vector<int> parent(n, -1);
    for (int v = 1; v < n; ++v) {
      parent[v] = rng.next_below(10) == 0 ? -1 : rng.uniform_int(0, v - 1);
    }
    const auto cv = congest::cole_vishkin_3color_forest(n, parent);
    check_proper(parent, cv, "forest trial=" + std::to_string(trial));
  }
}

TEST_CASE(cv_star_forest) {
  // Star: root 0, everyone else a direct child — one round of conflicts.
  const int n = 500;
  std::vector<int> parent(n, 0);
  parent[0] = -1;
  const auto cv = congest::cole_vishkin_3color_forest(n, parent);
  check_proper(parent, cv, "star");
}

TEST_CASE(cv_deterministic) {
  const auto parent = path_parents(1000);
  const auto a = congest::cole_vishkin_3color_forest(1000, parent);
  const auto b = congest::cole_vishkin_3color_forest(1000, parent);
  CHECK(a.color == b.color);
  CHECK(a.rounds == b.rounds);
}

TEST_CASE(cv_graph_overload) {
  const int n = 256;
  const Graph g = path_graph(n);
  const auto parent = path_parents(n);
  const auto cv = congest::cole_vishkin_3color(g, parent);
  check_proper(parent, cv, "graph overload");
}
