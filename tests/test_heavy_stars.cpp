// Heavy-stars (Lemma 4.2/4.3) and local-LDD (Theorem 1.1 pipeline)
// invariants:
//   * captured weight clears the 1/(8α) floor on weighted trees and grids
//     (α = 1 for trees, 2 for grids) across weight regimes and seeds,
//   * marked trees never exceed depth 4 (the implementation stays <= 2),
//   * star labels are consistent with kept_parent and captured_weight
//     matches the marked edges,
//   * heavy_stars and ldd_minor_free_local are deterministic,
//   * the local pipeline meets its hard ε cut budget with strong diameter
//     <= 2 * ecc_cap and connected clusters, while charging rounds that
//     do not scale with the graph diameter (sub-√n on grids).
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "decomp/heavy_stars.hpp"
#include "decomp/ldd_local.hpp"
#include "test_main.hpp"

using namespace mfd;
using namespace mfd::decomp;
using mfd::bench::make_family;

namespace {

WeightedGraph weighted_copy(const Graph& g, Rng* rng) {
  std::vector<WeightedEdge> edges;
  for (const auto& [u, v] : g.edges()) {
    const std::int64_t w =
        rng == nullptr ? 1
                       : 1 + static_cast<std::int64_t>(rng->next_below(100));
    edges.push_back({u, v, w});
  }
  return WeightedGraph(g.n(), std::move(edges));
}

void check_star_consistency(const WeightedGraph& g, const HeavyStarsResult& hs,
                            const std::string& ctx) {
  CHECK_MSG(hs.max_marked_depth <= 4, ctx + ": Lemma 4.3 depth");
  // Every vertex's star is the top of its kept_parent chain, and the
  // captured weight equals the sum over marked edges.
  std::int64_t marked = 0;
  for (int v = 0; v < g.n(); ++v) {
    const int p = hs.kept_parent[v];
    if (p >= 0) {
      CHECK_MSG(hs.star[v] == hs.star[p], ctx + ": star label mismatch");
      std::int64_t w = 0;
      for (const auto& a : g.arcs(v)) {
        if (a.to == p) w = a.w;
      }
      CHECK_MSG(w > 0, ctx + ": kept edge not in graph");
      marked += w;
    } else {
      CHECK_MSG(hs.star[v] == v, ctx + ": root labels itself");
    }
  }
  CHECK_MSG(marked == hs.captured_weight, ctx + ": captured accounting");
  CHECK_MSG(hs.cv_rounds > 0 && hs.rounds > hs.cv_rounds, ctx + ": rounds");
}

void run_capture_floor(const std::string& fam, int alpha) {
  for (int seed : {3, 11, 42}) {
    Rng rng(seed);
    const Graph g = make_family(fam, 1200, rng);
    for (const bool weighted : {false, true}) {
      const std::string ctx = fam + "/seed=" + std::to_string(seed) +
                              (weighted ? "/rand" : "/unit");
      Rng wrng(seed + 7);
      const WeightedGraph cg = weighted_copy(g, weighted ? &wrng : nullptr);
      const HeavyStarsResult hs = heavy_stars(cg);
      check_star_consistency(cg, hs, ctx);
      const double frac = static_cast<double>(hs.captured_weight) /
                          static_cast<double>(hs.total_weight);
      CHECK_MSG(frac >= 1.0 / (8.0 * alpha),
                ctx + ": capture " + Table::num(frac, 3));
    }
  }
}

}  // namespace

TEST_CASE(heavy_stars_capture_floor_tree) { run_capture_floor("tree", 1); }
TEST_CASE(heavy_stars_capture_floor_grid) { run_capture_floor("grid", 2); }

TEST_CASE(heavy_stars_deterministic) {
  Rng r1(9), r2(9);
  const Graph a = make_family("planar", 800, r1);
  const Graph b = make_family("planar", 800, r2);
  Rng w1(13), w2(13);
  const HeavyStarsResult ha = heavy_stars(weighted_copy(a, &w1));
  const HeavyStarsResult hb = heavy_stars(weighted_copy(b, &w2));
  CHECK(ha.star == hb.star);
  CHECK(ha.captured_weight == hb.captured_weight);
  CHECK(ha.cv_rounds == hb.cv_rounds);
}

TEST_CASE(heavy_stars_two_vertices) {
  // Mutual picks form the 2-cycle; the single edge must be captured.
  const WeightedGraph g(2, {{0, 1, 7}});
  const HeavyStarsResult hs = heavy_stars(g);
  CHECK(hs.captured_weight == 7);
  CHECK(hs.total_weight == 7);
  CHECK(hs.star[0] == hs.star[1]);
  CHECK(hs.stars == 1);
  CHECK(hs.max_marked_depth == 1);
}

TEST_CASE(ldd_local_budget_and_diameter) {
  Rng rng(23);
  for (const char* fam : {"grid", "tree"}) {
    const Graph g = make_family(fam, 2048, rng);
    for (double eps : {0.2, 0.4}) {
      const std::string ctx =
          std::string(fam) + "/eps=" + Table::num(eps, 1);
      const LocalLdd d = ldd_minor_free_local(g, eps);
      CHECK_MSG(is_valid_partition(g, d.clustering), ctx);
      CHECK_MSG(d.quality.clusters_connected, ctx + ": connectivity");
      CHECK_MSG(d.quality.eps_fraction <= eps + 1e-12, ctx + ": budget");
      CHECK_MSG(d.quality.max_diameter <= 2 * d.ecc_cap_final,
                ctx + ": diameter vs guard");
      CHECK_MSG(d.iterations >= 1, ctx);
      CHECK_MSG(d.cv_rounds_total > 0, ctx);
    }
  }
}

TEST_CASE(ldd_local_rounds_diameter_free) {
  // The whole point of the pipeline: construction rounds must not grow like
  // the √n graph diameter. 16x more grid vertices, near-identical rounds.
  Rng rng(3);
  const Graph small = make_family("grid", 1024, rng);
  const Graph large = make_family("grid", 16384, rng);
  const LocalLdd ds = ldd_minor_free_local(small, 0.3);
  const LocalLdd dl = ldd_minor_free_local(large, 0.3);
  CHECK_MSG(dl.ledger.total() <= 2 * ds.ledger.total() + 64,
            "rounds grew: " + std::to_string(ds.ledger.total()) + " -> " +
                std::to_string(dl.ledger.total()));
  CHECK(dl.ledger.total() < 128);  // far under sqrt(16384) = 128
}

TEST_CASE(ldd_local_deterministic) {
  Rng r1(37), r2(37);
  const Graph a = make_family("planar", 1024, r1);
  const Graph b = make_family("planar", 1024, r2);
  const LocalLdd da = ldd_minor_free_local(a, 0.3);
  const LocalLdd db = ldd_minor_free_local(b, 0.3);
  CHECK(da.clustering.cluster == db.clustering.cluster);
  CHECK(da.ledger.total() == db.ledger.total());
  CHECK(da.iterations == db.iterations);
}
