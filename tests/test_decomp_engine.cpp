// Decomposition-engine invariants across the new Section-4 pipeline:
//   * EDT chop modes: both engines meet the hard ε budget with connected
//     clusters; the local engine's rounds stay diameter-free while the
//     global chop pays BFS depth; both are deterministic,
//   * (ε, φ) expander decomposition: valid partition, certified φ > 0,
//     cut fraction within budget, deterministic,
//   * (ε, φ, c) overlap decomposition: supports connected, overlap c
//     bounded by the level cap, uncovered fraction <= ε,
//   * evaluate_clustering: the sampled-eccentricity estimator is a lower
//     bound of (and close to) the forced-exact diameter, and cut counts
//     agree exactly.
#include <cmath>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "decomp/edt.hpp"
#include "decomp/expander_decomp.hpp"
#include "decomp/overlap_decomp.hpp"
#include "test_main.hpp"

using namespace mfd;
using namespace mfd::decomp;
using mfd::bench::make_family;

TEST_CASE(edt_chop_modes_both_meet_budget) {
  Rng rng(23);
  const Graph g = make_family("grid", 1024, rng);
  for (const auto chop : {EdtChop::kLocalContraction, EdtChop::kGlobalBfs}) {
    const std::string ctx =
        chop == EdtChop::kGlobalBfs ? "global" : "local";
    for (double eps : {0.2, 0.4}) {
      EdtParams p;
      p.chop = chop;
      const EdtDecomposition d = build_edt_decomposition(g, eps, p);
      CHECK_MSG(is_valid_partition(g, d.clustering), ctx);
      CHECK_MSG(d.quality.clusters_connected, ctx);
      CHECK_MSG(d.quality.eps_fraction <= eps + 1e-12, ctx);
      CHECK_MSG(d.quality.max_diameter <= 20.0 / eps + 10.0, ctx);
      CHECK_MSG(d.clustering.k > 1, ctx);
      CHECK_MSG(d.T_measured > 0, ctx);
    }
  }
}

TEST_CASE(edt_local_rounds_beat_global_chop) {
  // On a 64x64 grid the chop pays ~sqrt(n) BFS depth per pass; the local
  // engine pays log* n + O(1/eps) per iteration.
  Rng rng(3);
  const Graph g = make_family("grid", 4096, rng);
  EdtParams global;
  global.chop = EdtChop::kGlobalBfs;
  const EdtDecomposition dl = build_edt_decomposition(g, 0.3);
  const EdtDecomposition dg = build_edt_decomposition(g, 0.3, global);
  CHECK_MSG(dl.ledger.total() < dg.ledger.total(),
            "local " + std::to_string(dl.ledger.total()) + " vs global " +
                std::to_string(dg.ledger.total()));
}

TEST_CASE(edt_local_deterministic) {
  Rng r1(37), r2(37);
  const Graph a = make_family("planar", 512, r1);
  const Graph b = make_family("planar", 512, r2);
  const EdtDecomposition da = build_edt_decomposition(a, 0.3);
  const EdtDecomposition db = build_edt_decomposition(b, 0.3);
  CHECK(da.clustering.cluster == db.clustering.cluster);
  CHECK(da.ledger.total() == db.ledger.total());
}

TEST_CASE(expander_decomp_certified) {
  Rng rng(4);
  const Graph g = make_family("grid", 1024, rng);
  for (double eps : {0.6, 0.4}) {
    const std::string ctx = "eps=" + Table::num(eps, 1);
    const ExpanderDecomp ed = expander_decomposition_minor_free(g, eps);
    CHECK_MSG(is_valid_partition(g, ed.clustering), ctx);
    const ClusterQuality q = evaluate_clustering(g, ed.clustering);
    CHECK_MSG(q.clusters_connected, ctx);
    CHECK_MSG(q.eps_fraction <= eps + 1e-12, ctx + ": cut budget");
    CHECK_MSG(ed.phi_target > 0.0, ctx);
    CHECK_MSG(ed.min_certified_phi > 0.0, ctx + ": certificate");
    CHECK_MSG(ed.ledger.total() > 0, ctx);
  }
  // Determinism: no Rng flows into the pipeline.
  const ExpanderDecomp a = expander_decomposition_minor_free(g, 0.5);
  const ExpanderDecomp b = expander_decomposition_minor_free(g, 0.5);
  CHECK(a.clustering.cluster == b.clustering.cluster);
  CHECK(a.min_certified_phi == b.min_certified_phi);
}

TEST_CASE(overlap_decomp_bounds) {
  Rng rng(4);
  const Graph g = make_family("grid", 1024, rng);
  for (double eps : {0.5, 0.25, 0.15}) {
    const std::string ctx = "eps=" + Table::num(eps, 2);
    const OverlapDecompResult od = overlap_expander_decomposition(g, eps);
    const OverlapQuality q = evaluate_overlap(g, od.oc);
    CHECK_MSG(q.base.clusters_connected, ctx + ": supports connected");
    CHECK_MSG(q.base.eps_fraction <= eps + 1e-12, ctx + ": uncovered");
    const int c_cap = static_cast<int>(std::ceil(std::log2(1.0 / eps))) + 2;
    CHECK_MSG(q.overlap_c >= 1 && q.overlap_c <= c_cap,
              ctx + ": c=" + std::to_string(q.overlap_c));
    CHECK_MSG(od.iterations >= 1 && od.iterations <= c_cap, ctx);
    CHECK_MSG(q.min_support_phi_lower > 0.0, ctx);
    // Every cluster member id is a real vertex.
    for (const auto& mem : od.oc.members) {
      CHECK_MSG(!mem.empty(), ctx);
      for (int v : mem) CHECK_MSG(v >= 0 && v < g.n(), ctx);
    }
  }
}

TEST_CASE(evaluate_clustering_sampled_vs_exact) {
  // One big path cluster: sampled eccentricity must equal the exact
  // diameter on trees (double sweep is exact there), and in general stay a
  // lower bound that agrees on cut accounting.
  const Graph path = path_graph(500);
  Clustering one;
  one.k = 1;
  one.cluster.assign(500, 0);
  EvalParams exact;
  exact.force_exact = true;
  const ClusterQuality qe = evaluate_clustering(path, one, exact);
  EvalParams sampled;
  sampled.exact_cap = 8;  // force the sampling path
  const ClusterQuality qs = evaluate_clustering(path, one, sampled);
  CHECK(qe.max_diameter == 499);
  CHECK(qs.max_diameter == 499);
  CHECK(qe.cut_edges == qs.cut_edges);

  Rng rng(8);
  const Graph g = make_family("grid", 2048, rng);
  const EdtDecomposition d = build_edt_decomposition(g, 0.3);
  const ClusterQuality a = evaluate_clustering(g, d.clustering, exact);
  const ClusterQuality b = evaluate_clustering(g, d.clustering, sampled);
  CHECK(a.cut_edges == b.cut_edges);
  CHECK(a.clusters_connected == b.clusters_connected);
  CHECK_MSG(b.max_diameter <= a.max_diameter, "estimate exceeded exact");
  CHECK_MSG(2 * b.max_diameter >= a.max_diameter, "estimate below 2x bound");
}
