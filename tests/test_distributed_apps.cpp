// The Section-6 applications layer: approximation-ratio bounds against the
// exact baselines on small planar/outerplanar/tree instances, solution
// validity (independence, matching disjointness, coverage, domination), the
// Theorem 6.1 log*-flatness of approx-MIS rounds on cycles as n grows 100x,
// property-tester verdicts, and compact-routing delivery/table invariants.
#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "apps/approx.hpp"
#include "apps/compact_routing.hpp"
#include "apps/domination.hpp"
#include "apps/exact.hpp"
#include "apps/maxcut.hpp"
#include "apps/property_testing.hpp"
#include "decomp/edt.hpp"
#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "test_main.hpp"

using namespace mfd;

namespace {

bool independent(const Graph& g, const std::vector<int>& set) {
  for (int u : set) {
    for (int v : set) {
      if (u < v && g.has_edge(u, v)) return false;
    }
  }
  return true;
}

bool dominates(const Graph& g, const std::vector<int>& set) {
  std::vector<char> dom(g.n(), 0);
  for (int v : set) {
    dom[v] = 1;
    for (int w : g.neighbors(v)) dom[w] = 1;
  }
  for (int v = 0; v < g.n(); ++v) {
    if (!dom[v]) return false;
  }
  return true;
}

}  // namespace

TEST_CASE(approx_mis_ratio_and_validity) {
  Rng rng(21);
  struct Inst {
    std::string name;
    Graph g;
    int alpha;
  };
  std::vector<Inst> insts;
  insts.push_back({"planar", random_maximal_planar(80, rng), 3});
  insts.push_back({"outerplanar", random_maximal_outerplanar(90, rng), 2});
  insts.push_back({"tree", random_tree(120, rng), 1});
  for (const Inst& inst : insts) {
    const std::size_t opt = apps::max_independent_set(inst.g).set.size();
    for (double eps : {0.5, 0.3}) {
      const apps::SetSolution sol =
          apps::approx_max_independent_set(inst.g, eps, inst.alpha);
      CHECK_MSG(independent(inst.g, sol.vertices), inst.name);
      CHECK_MSG(static_cast<double>(sol.vertices.size()) >=
                    (1.0 - eps) * static_cast<double>(opt),
                inst.name + " eps " + std::to_string(eps));
      CHECK(sol.stats.total_rounds == sol.stats.runtime.total());
      CHECK(sol.stats.total_rounds > 0);
    }
  }
}

TEST_CASE(approx_matching_vc_ratio_and_validity) {
  Rng rng(22);
  const Graph g = random_maximal_planar(70, rng);
  const std::size_t nu = apps::max_matching_edges(g).size();
  const std::size_t tau = apps::min_vertex_cover(g).set.size();
  for (double eps : {0.4, 0.25}) {
    const apps::MatchingSolution m = apps::approx_max_matching(g, eps, 3);
    // Valid matching: real edges, vertex-disjoint.
    std::vector<char> used(g.n(), 0);
    for (const auto& [u, v] : m.edges) {
      CHECK(g.has_edge(u, v));
      CHECK(!used[u] && !used[v]);
      used[u] = used[v] = 1;
    }
    CHECK(static_cast<double>(m.edges.size()) >=
          (1.0 - eps) * static_cast<double>(nu));

    const apps::SetSolution c = apps::approx_min_vertex_cover(g, eps, 3);
    std::vector<char> in(g.n(), 0);
    for (int v : c.vertices) in[v] = 1;
    for (const auto& [u, v] : g.edges()) CHECK(in[u] || in[v]);
    CHECK(static_cast<double>(c.vertices.size()) <=
          (1.0 + eps) * static_cast<double>(tau));
  }
}

TEST_CASE(approx_maxcut_ratio) {
  Rng rng(23);
  // Exact-OPT instance.
  const Graph small = random_maximal_planar(18, rng);
  const apps::CutResult opt = apps::max_cut(small, 20);
  CHECK(opt.exact);
  for (double eps : {0.4, 0.2}) {
    const apps::CutSolution sol = apps::approx_max_cut(small, eps);
    CHECK(sol.value == apps::detail::cut_value(small, sol.side));
    CHECK(static_cast<double>(sol.value) >=
          (1.0 - eps) * static_cast<double>(opt.cut_edges));
  }
  // Bipartite instance: OPT = m, parity seeding must find it per cluster.
  const Graph grid = grid_graph(12, 12);
  const apps::CutSolution sol = apps::approx_max_cut(grid, 0.3);
  CHECK(static_cast<double>(sol.value) >=
        0.7 * static_cast<double>(grid.m()));
}

TEST_CASE(approx_mds_ratio_and_validity) {
  Rng rng(24);
  struct Inst {
    std::string name;
    Graph g;
    int alpha;
  };
  std::vector<Inst> insts;
  insts.push_back({"planar", random_maximal_planar(60, rng), 3});
  insts.push_back({"tree", random_tree(90, rng), 1});
  insts.push_back({"grid", grid_graph(8, 8), 3});
  for (const Inst& inst : insts) {
    const std::size_t opt = apps::min_dominating_set(inst.g).set.size();
    CHECK_MSG(dominates(inst.g, apps::min_dominating_set(inst.g).set),
              inst.name);
    for (double eps : {0.6, 0.4}) {
      const apps::MdsSolution sol =
          apps::approx_min_dominating_set(inst.g, eps, inst.alpha);
      CHECK_MSG(dominates(inst.g, sol.vertices), inst.name);
      CHECK_MSG(static_cast<double>(sol.vertices.size()) <=
                    (1.0 + eps) * static_cast<double>(opt),
                inst.name + " eps " + std::to_string(eps));
    }
  }
}

TEST_CASE(exact_mds_matches_brute_force) {
  Rng rng(25);
  for (int trial = 0; trial < 25; ++trial) {
    const int n = 4 + static_cast<int>(rng.next_below(8));
    std::vector<std::pair<int, int>> e;
    for (int a = 0; a < n; ++a) {
      for (int b = a + 1; b < n; ++b) {
        if (rng.next_below(100) < 30) e.emplace_back(a, b);
      }
    }
    const Graph g = Graph::from_edges(n, std::move(e));
    // Brute force over all subsets.
    int best = n;
    for (unsigned mask = 0; mask < (1u << g.n()); ++mask) {
      std::vector<int> set;
      for (int v = 0; v < g.n(); ++v) {
        if (mask >> v & 1) set.push_back(v);
      }
      if (static_cast<int>(set.size()) < best && dominates(g, set)) {
        best = static_cast<int>(set.size());
      }
    }
    const apps::MdsResult r = apps::min_dominating_set(g);
    CHECK_MSG(dominates(g, r.set), "trial " + std::to_string(trial));
    CHECK_MSG(static_cast<int>(r.set.size()) == best,
              "trial " + std::to_string(trial) + ": got " +
                  std::to_string(r.set.size()) + " want " +
                  std::to_string(best));
  }
  // Tree DP against B&B on forests (the DP path is size-unbounded).
  for (int trial = 0; trial < 10; ++trial) {
    const Graph t = random_tree(40 + trial, rng);
    const apps::MdsResult dp = apps::min_dominating_set(t);
    apps::detail::MdsBranch bb(t, -1);
    CHECK(dominates(t, dp.set));
    CHECK(dp.set.size() == bb.solve().size());
  }
}

// Theorem 6.1 shape: approx-MIS rounds on cycles stay essentially flat
// (log* n) while n grows 100x. The hard acceptance gate of the apps layer.
TEST_CASE(approx_mis_rounds_log_star_flat_on_cycles) {
  const apps::SetSolution small =
      apps::approx_max_independent_set(cycle_graph(100), 0.3, 1);
  const apps::SetSolution large =
      apps::approx_max_independent_set(cycle_graph(10000), 0.3, 1);
  CHECK(small.stats.total_rounds > 0);
  // 100x the vertices may only move rounds by the log* drift — pin a tight
  // multiplicative window rather than an absolute count.
  CHECK_MSG(large.stats.total_rounds <= (3 * small.stats.total_rounds) / 2,
            std::to_string(small.stats.total_rounds) + " -> " +
                std::to_string(large.stats.total_rounds));
  // Both solutions stay within the guarantee: OPT(C_n) = floor(n/2).
  CHECK(static_cast<double>(small.vertices.size()) >= 0.7 * 50.0);
  CHECK(static_cast<double>(large.vertices.size()) >= 0.7 * 5000.0);
}

TEST_CASE(property_tester_verdicts) {
  Rng rng(26);
  CHECK(apps::test_property(random_maximal_planar(150, rng), Family::kPlanar,
                            0.2)
            .accepted);
  CHECK(!apps::test_property(clique_chain(6, 6), Family::kPlanar, 0.2)
             .accepted);
  CHECK(apps::test_property(random_tree(100, rng), Family::kForest, 0.2)
            .accepted);
  CHECK(!apps::test_property(cycle_graph(30), Family::kForest, 0.2).accepted);
  CHECK(apps::test_property(random_maximal_outerplanar(80, rng),
                            Family::kOuterplanar, 0.2)
            .accepted);
  CHECK(!apps::test_property(random_maximal_planar(80, rng),
                             Family::kOuterplanar, 0.2)
             .accepted);
  CHECK(apps::test_property(random_cactus(100, rng), Family::kCactus, 0.2)
            .accepted);
  CHECK(!apps::test_property(grid_graph(5, 5), Family::kCactus, 0.2)
             .accepted);
  CHECK(apps::test_property(path_graph(50), Family::kLinearForest, 0.2)
            .accepted);
  CHECK(!apps::test_property(star_graph(10), Family::kLinearForest, 0.2)
             .accepted);
  // Rejections carry a reason; rounds are charged either way.
  const apps::PropertyTestResult r =
      apps::test_property(complete_graph(10), Family::kPlanar, 0.2);
  CHECK(!r.accepted);
  CHECK(!r.reason.empty());
  CHECK(r.rounds == r.runtime.total());
}

TEST_CASE(compact_routing_delivers_with_small_tables) {
  Rng rng(27);
  for (const char* fam : {"planar", "grid", "tree"}) {
    Rng grng(rng.next());
    const Graph g = fam == std::string("grid")
                        ? grid_graph(20, 20)
                        : (fam == std::string("tree")
                               ? random_tree(400, grng)
                               : random_maximal_planar(400, grng));
    const decomp::EdtDecomposition edt =
        decomp::build_edt_decomposition(g, 0.3);
    const apps::RoutingScheme s =
        apps::build_routing_scheme(g, edt.clustering);
    const apps::StretchStats st = apps::measure_stretch(g, s, 120, rng);
    CHECK_MSG(st.delivered_fraction == 1.0, fam);
    CHECK_MSG(st.avg_stretch >= 1.0, fam);
    // Per-vertex tables stay well under the k log n a flat table would pay.
    CHECK_MSG(s.avg_table_bits() <
                  16.0 * congest::ceil_log2(std::max(g.n(), 2)),
              fam + std::string(": avg bits ") +
                  std::to_string(s.avg_table_bits()));
    // Exact route on a pair in the same cluster equals tree routing; on a
    // tree decomposition every route must be a real path: spot check hops
    // against BFS distance lower bound.
    const int hops = apps::route_hops(s, 0, g.n() - 1);
    CHECK(hops >= bfs_distances(g, 0)[g.n() - 1]);
  }
}
