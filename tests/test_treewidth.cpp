// The treewidth-DP solver tier (apps/treewidth.hpp): decomposition validity
// on every generator family, structural width bounds (outerplanar and
// series-parallel are partial 2-trees, so the degree-2 greedy certifies
// width <= 2; every min-degree vertex of a k-tree is simplicial, so k-trees
// certify width == k), and the differential sweeps the ISSUE pins: all four
// DP kernels against bitmask brute force on <= 20-vertex graphs, and
// against the exact B&B / tree-DP baselines on mid-size forests and grids.
// Every draw derives from a fixed seed, so failures reproduce from the
// printed context string.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "apps/approx.hpp"
#include "apps/domination.hpp"
#include "apps/maxcut.hpp"
#include "apps/treewidth.hpp"
#include "bench_common.hpp"
#include "congest/shard.hpp"
#include "test_main.hpp"

using namespace mfd;
using namespace mfd::apps;
using mfd::bench::make_family;

namespace {

const std::vector<std::string> kFamilies = {
    "planar", "planar-sparse", "grid",   "torus",  "outerplanar", "tree",
    "cycle",  "path",          "cactus", "ktree3", "series-parallel"};

/// Connected random graph on 3..20 vertices, a pure function of the seed
/// (spanning tree plus extra edges).
Graph small_connected(std::uint64_t seed, int max_n = 20) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  const int n = 3 + static_cast<int>(rng.next_below(max_n - 2));
  std::vector<std::pair<int, int>> edges;
  for (int v = 1; v < n; ++v) {
    edges.emplace_back(static_cast<int>(rng.next_below(v)), v);
  }
  const int extra = static_cast<int>(rng.next_below(n));
  for (int e = 0; e < extra; ++e) {
    int a = static_cast<int>(rng.next_below(n));
    int b = static_cast<int>(rng.next_below(n));
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    edges.emplace_back(a, b);
  }
  return Graph::from_edges(n, std::move(edges));
}

/// Open-neighborhood bitmasks (n <= 31).
std::vector<std::uint32_t> adjacency_masks(const Graph& g) {
  std::vector<std::uint32_t> adj(g.n(), 0);
  for (int v = 0; v < g.n(); ++v) {
    for (int w : g.neighbors(v)) adj[v] |= std::uint32_t{1} << w;
  }
  return adj;
}

int popcnt(std::uint32_t x) {
  int c = 0;
  while (x != 0) {
    x &= x - 1;
    ++c;
  }
  return c;
}

/// Brute-force alpha(G) by subset enumeration over bitmasks.
int brute_alpha(const Graph& g) {
  const auto adj = adjacency_masks(g);
  const int n = g.n();
  int best = 0;
  for (std::uint32_t s = 0; s < (std::uint32_t{1} << n); ++s) {
    bool independent = true;
    for (int v = 0; v < n && independent; ++v) {
      if ((s >> v) & 1) independent = (s & adj[v]) == 0;
    }
    if (independent) best = std::max(best, popcnt(s));
  }
  return best;
}

/// Brute-force gamma(G) by subset enumeration over closed neighborhoods.
int brute_gamma(const Graph& g) {
  const auto adj = adjacency_masks(g);
  const int n = g.n();
  const std::uint32_t full = (std::uint32_t{1} << n) - 1;
  int best = n;
  for (std::uint32_t s = 0; s < (std::uint32_t{1} << n); ++s) {
    std::uint32_t dominated = 0;
    for (int v = 0; v < n; ++v) {
      if ((s >> v) & 1) dominated |= adj[v] | (std::uint32_t{1} << v);
    }
    if (dominated == full) best = std::min(best, popcnt(s));
  }
  return best;
}

/// Brute-force max cut (vertex 0 pinned to side 0).
std::int64_t brute_maxcut(const Graph& g) {
  const auto adj = adjacency_masks(g);
  const int n = g.n();
  if (n <= 1) return 0;
  std::int64_t best = 0;
  for (std::uint32_t s = 0; s < (std::uint32_t{1} << (n - 1)); ++s) {
    const std::uint32_t side = s << 1;  // vertex 0 on side 0
    std::int64_t cut = 0;
    for (int v = 0; v < n; ++v) {
      const std::uint32_t other = ((side >> v) & 1) ? ~side : side;
      cut += popcnt(adj[v] & other & ~((std::uint32_t{1} << (v + 1)) - 1));
    }
    best = std::max(best, cut);
  }
  return best;
}

bool is_independent(const Graph& g, const std::vector<int>& set) {
  std::vector<char> in(g.n(), 0);
  for (int v : set) in[v] = 1;
  for (int v : set) {
    for (int w : g.neighbors(v)) {
      if (in[w]) return false;
    }
  }
  return true;
}

bool is_vertex_cover(const Graph& g, const std::vector<int>& set) {
  std::vector<char> in(g.n(), 0);
  for (int v : set) in[v] = 1;
  for (int u = 0; u < g.n(); ++u) {
    for (int w : g.neighbors(u)) {
      if (u < w && !in[u] && !in[w]) return false;
    }
  }
  return true;
}

bool is_dominating(const Graph& g, const std::vector<int>& set) {
  std::vector<char> dom(g.n(), 0);
  for (int v : set) {
    dom[v] = 1;
    for (int w : g.neighbors(v)) dom[w] = 1;
  }
  for (int v = 0; v < g.n(); ++v) {
    if (!dom[v]) return false;
  }
  return true;
}

std::int64_t side_cut(const Graph& g, const std::vector<char>& side) {
  std::int64_t cut = 0;
  for (int u = 0; u < g.n(); ++u) {
    for (int w : g.neighbors(u)) {
      if (u < w && side[u] != side[w]) ++cut;
    }
  }
  return cut;
}

/// Structural check of a nice decomposition: kinds consistent with the
/// child bags, children-before-parents, the root's bag empty.
bool valid_nice(const NiceTreeDecomposition& nd) {
  if (nd.root < 0) return nd.nodes.empty();
  if (!nd.nodes[nd.root].bag.empty()) return false;
  for (int i = 0; i < static_cast<int>(nd.nodes.size()); ++i) {
    const auto& x = nd.nodes[i];
    if (!std::is_sorted(x.bag.begin(), x.bag.end())) return false;
    switch (x.kind) {
      case NiceTreeDecomposition::kLeaf:
        if (!x.bag.empty() || x.left >= 0 || x.right >= 0) return false;
        break;
      case NiceTreeDecomposition::kIntroduce: {
        if (x.left < 0 || x.left >= i || x.right >= 0) return false;
        std::vector<int> expect = nd.nodes[x.left].bag;
        expect.insert(
            std::upper_bound(expect.begin(), expect.end(), x.vertex),
            x.vertex);
        if (expect != x.bag) return false;
        break;
      }
      case NiceTreeDecomposition::kForget: {
        if (x.left < 0 || x.left >= i || x.right >= 0) return false;
        std::vector<int> expect = x.bag;
        expect.insert(
            std::upper_bound(expect.begin(), expect.end(), x.vertex),
            x.vertex);
        if (expect != nd.nodes[x.left].bag) return false;
        break;
      }
      case NiceTreeDecomposition::kJoin:
        if (x.left < 0 || x.left >= i || x.right < 0 || x.right >= i) {
          return false;
        }
        if (nd.nodes[x.left].bag != x.bag || nd.nodes[x.right].bag != x.bag) {
          return false;
        }
        break;
      default:
        return false;
    }
  }
  return true;
}

}  // namespace

TEST_CASE(tw_decomposition_valid_all_families) {
  for (const std::string& family : kFamilies) {
    for (const int n : {12, 60, 150}) {
      Rng rng(0xABCDEF01u + n);
      const Graph g = make_family(family, n, rng);
      const std::string ctx = family + " n=" + std::to_string(n);
      const TreeDecomposition td = tree_decomposition(g);
      CHECK_MSG(td.complete, ctx);
      CHECK_MSG(valid_tree_decomposition(g, td), ctx);
      const NiceTreeDecomposition nd = nice_tree_decomposition(td);
      CHECK_MSG(nd.width == td.width, ctx);
      CHECK_MSG(valid_nice(nd), ctx);
    }
  }
}

TEST_CASE(tw_width_bounds_outerplanar_ktree) {
  // Outerplanar and series-parallel graphs are partial 2-trees: some vertex
  // of degree <= 2 always exists and eliminating it preserves the class, so
  // the greedy search must certify width <= 2 (and a k-tree width == k —
  // every min-degree vertex of a k-tree is simplicial).
  for (const int n : {20, 80, 200}) {
    Rng rng(0x5EED0000u + n);
    const Graph op = make_family("outerplanar", n, rng);
    CHECK_MSG(tree_decomposition(op).width <= 2, "outerplanar n=" +
                                                     std::to_string(n));
    const Graph sp = make_family("series-parallel", n, rng);
    CHECK_MSG(tree_decomposition(sp).width <= 2, "series-parallel n=" +
                                                     std::to_string(n));
    const Graph kt = make_family("ktree3", n, rng);
    CHECK_MSG(tree_decomposition(kt).width == 3, "ktree3 n=" +
                                                     std::to_string(n));
  }
  // Trees certify width 1, cycles width 2.
  Rng rng(7);
  CHECK(tree_decomposition(make_family("tree", 64, rng)).width == 1);
  CHECK(tree_decomposition(make_family("cycle", 64, rng)).width == 2);
}

TEST_CASE(tw_probe_aborts_on_wide_clusters) {
  // K9 has treewidth 8: a capped search must report incomplete instead of
  // paying for a full decomposition, and the ladder probe must decline.
  std::vector<std::pair<int, int>> edges;
  for (int u = 0; u < 9; ++u) {
    for (int v = u + 1; v < 9; ++v) edges.emplace_back(u, v);
  }
  const Graph k9 = Graph::from_edges(9, std::move(edges));
  const TreeDecomposition capped = tree_decomposition(k9, 3);
  CHECK(!capped.complete);
  LadderConfig cfg;
  cfg.tw_cap = 3;
  NiceTreeDecomposition nd;
  CHECK(!ladder_tw_probe(k9, cfg, nd));
  // Uncapped, the search certifies the true width.
  const TreeDecomposition full = tree_decomposition(k9);
  CHECK(full.complete);
  CHECK(full.width == 8);
  // Mode strings round-trip (the benches' --solver flag).
  CHECK(solver_mode_from_string("tw") == SolverMode::kTreewidth);
  CHECK(solver_mode_from_string("bb") == SolverMode::kBranchBound);
  CHECK(solver_mode_from_string("greedy") == SolverMode::kGreedy);
  CHECK(solver_mode_from_string("auto") == SolverMode::kAuto);
  CHECK(std::string(solver_mode_name(SolverMode::kTreewidth)) == "tw");
}

TEST_CASE(tw_dp_matches_bruteforce_small) {
  // All four kernels against bitmask brute force on <= 20-vertex connected
  // graphs: optimal VALUE equal, and every witness valid.
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const Graph g = small_connected(seed);
    const std::string ctx = "seed=" + std::to_string(seed) +
                            " n=" + std::to_string(g.n());
    const TreeDecomposition td = tree_decomposition(g);
    CHECK_MSG(td.complete && valid_tree_decomposition(g, td), ctx);
    const NiceTreeDecomposition nd = nice_tree_decomposition(td);

    const int alpha = brute_alpha(g);
    const std::vector<int> mis = tw_max_independent_set(g, nd);
    CHECK_MSG(is_independent(g, mis), ctx);
    CHECK_MSG(static_cast<int>(mis.size()) == alpha, ctx + " alpha");

    const std::vector<int> vc = tw_min_vertex_cover(g, nd);
    CHECK_MSG(is_vertex_cover(g, vc), ctx);
    CHECK_MSG(static_cast<int>(vc.size()) == g.n() - alpha, ctx + " vc");

    const std::vector<int> mds = tw_min_dominating_set(g, nd);
    CHECK_MSG(is_dominating(g, mds), ctx);
    CHECK_MSG(static_cast<int>(mds.size()) == brute_gamma(g), ctx + " gamma");

    const TwCut cut = tw_max_cut(g, nd);
    CHECK_MSG(cut.cut_edges == brute_maxcut(g), ctx + " cut");
    CHECK_MSG(side_cut(g, cut.side) == cut.cut_edges, ctx + " cut witness");
  }
}

TEST_CASE(tw_dp_matches_bb_midsize) {
  // Mid-size forests and grids, against the exact searches the ladder used
  // to run: MisSolver (unbounded), MdsBranch (unbounded), tree_mds, and the
  // bipartite OPT = m certificate for max-cut.
  const auto check_graph = [](const Graph& g, const std::string& ctx,
                              bool bipartite_opt_m) {
    const TreeDecomposition td = tree_decomposition(g);
    CHECK_MSG(td.complete && valid_tree_decomposition(g, td), ctx);
    const NiceTreeDecomposition nd = nice_tree_decomposition(td);

    const std::vector<int> mis = tw_max_independent_set(g, nd);
    CHECK_MSG(is_independent(g, mis), ctx);
    CHECK_MSG(mis.size() == max_independent_set(g).set.size(), ctx + " mis");

    const std::vector<int> mds = tw_min_dominating_set(g, nd);
    CHECK_MSG(is_dominating(g, mds), ctx);
    CHECK_MSG(mds.size() == min_dominating_set(g).set.size(), ctx + " mds");

    const std::vector<int> vc = tw_min_vertex_cover(g, nd);
    CHECK_MSG(is_vertex_cover(g, vc), ctx);
    CHECK_MSG(vc.size() == min_vertex_cover(g).set.size(), ctx + " vc");

    if (bipartite_opt_m) {
      const TwCut cut = tw_max_cut(g, nd);
      CHECK_MSG(cut.cut_edges == g.m(), ctx + " cut=m");
      CHECK_MSG(side_cut(g, cut.side) == cut.cut_edges, ctx + " cut witness");
    }
  };
  for (const std::uint64_t seed : {11ull, 12ull}) {
    Rng rng(seed);
    check_graph(random_tree(220, rng), "tree seed=" + std::to_string(seed),
                true);
  }
  check_graph(grid_graph(6, 6), "grid 6x6", true);
  check_graph(grid_graph(8, 8), "grid 8x8", true);
  // A 12x12 grid MDS — the bench_mds sizing wall the DP tier removes: the
  // exact B&B takes minutes here, the DP is sub-second, so cross-check the
  // witness against validity plus the known gamma lower bound n/5 instead.
  {
    const Graph g = grid_graph(12, 12);
    const TreeDecomposition td = tree_decomposition(g);
    CHECK(td.complete && td.width <= 13);
    const NiceTreeDecomposition nd = nice_tree_decomposition(td);
    const std::vector<int> mds = tw_min_dominating_set(g, nd);
    CHECK(is_dominating(g, mds));
    // gamma(grid R x C) >= RC/5 (closed neighborhoods have <= 5 vertices);
    // a valid set matching a known-optimal construction stays close to it.
    CHECK_MSG(static_cast<int>(mds.size()) >= 144 / 5, "12x12 lower bound");
    CHECK_MSG(static_cast<int>(mds.size()) <= 44, "12x12 upper bound");
  }
}

TEST_CASE(tw_ladder_tier_accounting) {
  // The rewired app solvers: per-tier cluster counts sum to the cluster
  // total, solver modes steer the ladder, and every mode still produces a
  // valid solution with a clean audit.
  Rng rng(0xC0FFEE);
  const Graph g = make_family("planar", 150, rng);
  const auto tier_sum = [](const congest::SolverStats& s) {
    return s.tier_forest + s.tier_tw_dp + s.tier_bb + s.tier_greedy;
  };

  const MdsSolution mds = approx_min_dominating_set(g, 0.3, 3);
  CHECK(is_dominating(g, mds.vertices));
  CHECK(tier_sum(mds.stats) == mds.stats.clusters);
  CHECK(mds.stats.runtime.audit().ok);

  const SetSolution mis = approx_max_independent_set(g, 0.3, 3);
  CHECK(is_independent(g, mis.vertices));
  CHECK(tier_sum(mis.stats) == mis.stats.clusters);

  const SetSolution vc = approx_min_vertex_cover(g, 0.3, 3);
  CHECK(is_vertex_cover(g, vc.vertices));
  CHECK(tier_sum(vc.stats) == vc.stats.clusters);

  const CutSolution cut = approx_max_cut(g, 0.3);
  CHECK(tier_sum(cut.stats) == cut.stats.clusters);
  CHECK(cut.value == side_cut(g, cut.side));

  // Forced modes: greedy puts every cluster on the greedy tier; tw disables
  // the B&B tier; bb (the legacy ladder) never runs the DP.
  LadderConfig greedy_cfg;
  greedy_cfg.mode = SolverMode::kGreedy;
  const MdsSolution mg = approx_min_dominating_set(g, 0.3, 3, nullptr,
                                                   greedy_cfg);
  CHECK(is_dominating(g, mg.vertices));
  CHECK(mg.stats.tier_greedy == mg.stats.clusters);
  CHECK(mg.stats.bb_runs == 0);

  LadderConfig bb_cfg;
  bb_cfg.mode = SolverMode::kBranchBound;
  const MdsSolution mb = approx_min_dominating_set(g, 0.3, 3, nullptr, bb_cfg);
  CHECK(is_dominating(g, mb.vertices));
  CHECK(mb.stats.tier_tw_dp == 0);
  CHECK(tier_sum(mb.stats) == mb.stats.clusters);
  // The greedy ladder can only be looser than the full one.
  CHECK(mg.vertices.size() >= mds.vertices.size());

  // An outerplanar run lands clusters on the DP tier (width <= 2 and the
  // clusters are medium — exactly the tier's target) unless a forest tier
  // catches them first; assert the DP tier is reachable.
  Rng orng(0xC0FFEE);
  const Graph op = make_family("outerplanar", 240, orng);
  const MdsSolution omds = approx_min_dominating_set(op, 0.3, 2);
  CHECK(is_dominating(op, omds.vertices));
  CHECK(tier_sum(omds.stats) == omds.stats.clusters);
  CHECK_MSG(omds.stats.tier_tw_dp > 0, "outerplanar clusters hit the DP tier");
  CHECK(omds.stats.max_width_dp >= 1);
  CHECK(omds.stats.max_width_dp <= 2);
}
