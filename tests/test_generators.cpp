// Generator invariants: every family is simple, connected, respects its edge
// bound, and is deterministic under a fixed seed. Structural checks for the
// cactus (every edge on <= 1 cycle) and series-parallel (reducible to an
// edge) families.
#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "test_main.hpp"

using namespace mfd;
using mfd::bench::make_family;

namespace {

const std::vector<std::string> kFamilies = {
    "grid",  "path",   "cycle",  "tree",           "cactus",
    "planar", "planar-sparse", "outerplanar", "ktree3", "series-parallel"};

bool is_simple(const Graph& g) {
  for (int v = 0; v < g.n(); ++v) {
    int prev = -1;
    for (int w : g.neighbors(v)) {
      if (w == v || w == prev) return false;  // self-loop or parallel edge
      prev = w;
    }
  }
  return true;
}

}  // namespace

TEST_CASE(families_connected_and_simple) {
  Rng rng(11);
  for (const auto& fam : kFamilies) {
    const Graph g = make_family(fam, 300, rng);
    CHECK_MSG(g.n() >= 300, fam);
    CHECK_MSG(is_connected(g), fam);
    CHECK_MSG(is_simple(g), fam);
  }
}

TEST_CASE(family_edge_bounds) {
  Rng rng(13);
  const int n = 400;
  CHECK(make_family("tree", n, rng).m() == n - 1);
  CHECK(make_family("path", n, rng).m() == n - 1);
  CHECK(make_family("cycle", n, rng).m() == n);
  {
    const Graph g = make_family("grid", n, rng);  // rounds n up to side^2
    const int side = 20;
    CHECK(g.n() == side * side);
    CHECK(g.m() == 2 * side * (side - 1));
  }
  CHECK(make_family("planar", n, rng).m() == 3 * n - 6);
  CHECK(make_family("planar-sparse", n, rng).m() ==
        std::min(3 * n - 6, 2 * n));
  CHECK(make_family("outerplanar", n, rng).m() == 2 * n - 3);
  CHECK(make_family("ktree3", n, rng).m() == 6 + 3 * (n - 4));
  CHECK(make_family("series-parallel", n, rng).m() <= 2 * n - 3);
  // Cactus: c cycles contribute c extra edges over a tree; every cycle has
  // >= 3 vertices, so m <= n - 1 + (n - 1) / 2.
  CHECK(make_family("cactus", n, rng).m() <= (3 * (n - 1)) / 2);
}

TEST_CASE(cactus_every_edge_on_at_most_one_cycle) {
  Rng rng(17);
  const Graph g = random_cactus(500, rng);
  // DFS; each back edge closes one cycle through tree edges. In a cactus no
  // tree edge is covered by two back-edge cycles.
  const int n = g.n();
  std::vector<int> parent(n, -2), depth(n, 0), cover(n, 0);
  std::vector<int> stack = {0};
  parent[0] = -1;
  std::vector<int> order;
  while (!stack.empty()) {
    const int u = stack.back();
    stack.pop_back();
    order.push_back(u);
    for (int w : g.neighbors(u)) {
      if (parent[w] == -2) {
        parent[w] = u;
        depth[w] = depth[u] + 1;
        stack.push_back(w);
      }
    }
  }
  for (int u = 0; u < n; ++u) {
    for (int w : g.neighbors(u)) {
      // Non-tree edge (u, w): count it once, from the deeper endpoint
      // (ties broken by id).
      if (parent[u] == w || parent[w] == u) continue;
      if (depth[u] < depth[w] || (depth[u] == depth[w] && u < w)) continue;
      // cover[] charges the tree edge (v, parent[v]) to entry v.
      int a = u, b = w;
      while (a != b) {
        if (depth[a] >= depth[b]) {
          ++cover[a];
          a = parent[a];
        } else {
          ++cover[b];
          b = parent[b];
        }
      }
    }
  }
  for (int v = 0; v < n; ++v) {
    CHECK_MSG(cover[v] <= 1, "tree edge shared by two cycles");
  }
}

TEST_CASE(series_parallel_reduces_to_edge) {
  Rng rng(19);
  const Graph g = random_series_parallel(300, rng);
  CHECK(g.m() <= 2 * g.n() - 3);
  // SP reduction: repeatedly delete degree-<=1 vertices and suppress
  // degree-2 vertices (merging parallel edges). SP graphs reduce to <= 2
  // vertices; any K4 minor would survive with minimum degree 3.
  std::vector<std::set<int>> adj(g.n());
  for (int v = 0; v < g.n(); ++v) {
    for (int w : g.neighbors(v)) adj[v].insert(w);
  }
  int alive = g.n();
  bool progress = true;
  while (progress) {
    progress = false;
    for (int v = 0; v < g.n(); ++v) {
      if (adj[v].size() == 0 || adj[v].size() > 2) continue;
      if (adj[v].size() == 1) {
        const int u = *adj[v].begin();
        adj[u].erase(v);
        adj[v].clear();
      } else {
        auto it = adj[v].begin();
        const int a = *it++;
        const int b = *it;
        adj[a].erase(v);
        adj[b].erase(v);
        adj[v].clear();
        adj[a].insert(b);  // set-insert = parallel-edge reduction
        adj[b].insert(a);
      }
      --alive;
      progress = true;
    }
  }
  CHECK_MSG(alive <= 2, "series-parallel graph failed to reduce");
}

TEST_CASE(generators_deterministic_under_seed) {
  for (const auto& fam : kFamilies) {
    Rng r1(7), r2(7);
    const Graph a = make_family(fam, 256, r1);
    const Graph b = make_family(fam, 256, r2);
    CHECK_MSG(a.n() == b.n(), fam);
    CHECK_MSG(a.edges() == b.edges(), fam);
  }
}
