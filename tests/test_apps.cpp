// apps/ exact kernels vs brute force on small random graphs, plus known
// closed-form instances. These are the centralized baselines bench_kernels
// and the Theorem 1.2 application benches grade against.
#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "apps/blossom.hpp"
#include "apps/exact.hpp"
#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "test_main.hpp"

using namespace mfd;

namespace {

int brute_mis(const Graph& g) {
  int best = 0;
  for (unsigned mask = 0; mask < (1u << g.n()); ++mask) {
    bool ok = true;
    int cnt = 0;
    for (int v = 0; v < g.n() && ok; ++v) {
      if (!(mask >> v & 1)) continue;
      ++cnt;
      for (int w : g.neighbors(v)) {
        if (w > v && (mask >> w & 1)) {
          ok = false;
          break;
        }
      }
    }
    if (ok) best = std::max(best, cnt);
  }
  return best;
}

int brute_matching(const Graph& g) {
  const auto edges = g.edges();
  int best = 0;
  for (unsigned mask = 0; mask < (1u << edges.size()); ++mask) {
    std::vector<char> used(g.n(), 0);
    bool ok = true;
    int cnt = 0;
    for (std::size_t i = 0; i < edges.size() && ok; ++i) {
      if (!(mask >> i & 1)) continue;
      const auto [a, b] = edges[i];
      if (used[a] || used[b]) ok = false;
      used[a] = used[b] = 1;
      ++cnt;
    }
    if (ok) best = std::max(best, cnt);
  }
  return best;
}

}  // namespace

TEST_CASE(blossom_matches_brute_force) {
  Rng rng(99);
  int tested = 0;
  while (tested < 40) {
    const int n = 4 + static_cast<int>(rng.next_below(8));
    std::vector<std::pair<int, int>> e;
    for (int a = 0; a < n; ++a) {
      for (int b = a + 1; b < n; ++b) {
        if (rng.next_below(100) < 35) e.emplace_back(a, b);
      }
    }
    const Graph g = Graph::from_edges(n, std::move(e));
    if (g.m() > 14) continue;  // keep the 2^m brute force cheap
    ++tested;
    CHECK_MSG(apps::max_matching(g).size == brute_matching(g),
              "trial " + std::to_string(tested));
  }
}

TEST_CASE(blossom_known_instances) {
  CHECK(apps::max_matching(complete_graph(6)).size == 3);
  CHECK(apps::max_matching(cycle_graph(5)).size == 2);  // odd cycle: blossom
  CHECK(apps::max_matching(path_graph(4)).size == 2);
  CHECK(apps::max_matching(add_apex(cycle_graph(8))).size == 4);
  // The matching array is an involution onto real partners.
  Rng rng(5);
  const Graph g = random_maximal_planar(300, rng);
  const apps::Matching m = apps::max_matching(g);
  for (int v = 0; v < g.n(); ++v) {
    if (m.match[v] >= 0) {
      CHECK(m.match[m.match[v]] == v);
      CHECK(g.has_edge(v, m.match[v]));
    }
  }
}

namespace {

// The reported set must actually be independent in g.
bool is_independent(const Graph& g, const std::vector<int>& set) {
  for (int u : set) {
    for (int v : set) {
      if (u < v && g.has_edge(u, v)) return false;
    }
  }
  return true;
}

}  // namespace

TEST_CASE(exact_mis_matches_brute_force) {
  Rng rng(77);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = 4 + static_cast<int>(rng.next_below(10));
    std::vector<std::pair<int, int>> e;
    for (int a = 0; a < n; ++a) {
      for (int b = a + 1; b < n; ++b) {
        if (rng.next_below(100) < 35) e.emplace_back(a, b);
      }
    }
    const Graph g = Graph::from_edges(n, std::move(e));
    const apps::MisResult mis = apps::max_independent_set(g);
    CHECK_MSG(static_cast<int>(mis.set.size()) == brute_mis(g),
              "trial " + std::to_string(trial));
    CHECK_MSG(is_independent(g, mis.set), "trial " + std::to_string(trial));
  }
}

TEST_CASE(exact_mis_known_instances) {
  CHECK(apps::max_independent_set(cycle_graph(7)).set.size() == 3);
  CHECK(apps::max_independent_set(complete_graph(8)).set.size() == 1);
  CHECK(apps::max_independent_set(path_graph(9)).set.size() == 5);
  CHECK(apps::max_independent_set(grid_graph(4, 4)).set.size() == 8);
  Rng rng(5);
  const Graph g = random_maximal_planar(120, rng);
  const apps::MisResult mis = apps::max_independent_set(g);
  // Planar triangulations: alpha >= n/4 by the four color theorem.
  CHECK(mis.set.size() >= 30);
  CHECK(is_independent(g, mis.set));
}

TEST_CASE(exact_vertex_cover_complement) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 4 + static_cast<int>(rng.next_below(8));
    std::vector<std::pair<int, int>> e;
    for (int a = 0; a < n; ++a) {
      for (int b = a + 1; b < n; ++b) {
        if (rng.next_below(100) < 40) e.emplace_back(a, b);
      }
    }
    const Graph g = Graph::from_edges(n, std::move(e));
    const apps::MisResult vc = apps::min_vertex_cover(g);
    // Covers every edge, and |VC| = n - alpha(G).
    std::vector<char> in(g.n(), 0);
    for (int v : vc.set) in[v] = 1;
    for (const auto& [u, v] : g.edges()) CHECK(in[u] || in[v]);
    CHECK(static_cast<int>(vc.set.size()) == g.n() - brute_mis(g));
  }
}
