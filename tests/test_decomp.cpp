// Decomposition invariants for EDT (Cor 6.1), MPX13 and CHW08 on grid and
// random planar graphs at eps in {0.2, 0.4}:
//   * clusters partition V and induce connected subgraphs,
//   * cut fraction <= eps (deterministic for EDT/CHW; averaged over 5 seeds
//     for the randomized MPX),
//   * max cluster diameter respects each algorithm's advertised bound shape:
//     O(1/eps) for EDT, O(log_{1+eps} m) balls for CHW, O(log n / eps) for MPX.
#include <cmath>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "decomp/edt.hpp"
#include "decomp/ldd_chw.hpp"
#include "decomp/ldd_mpx.hpp"
#include "test_main.hpp"

using namespace mfd;
using namespace mfd::decomp;
using mfd::bench::make_family;

namespace {

constexpr int kN = 1024;

void check_partition(const Graph& g, const Clustering& c, const Quality& q,
                     const std::string& ctx) {
  CHECK_MSG(is_valid_partition(g, c), ctx);
  CHECK_MSG(c.k >= 1, ctx);
  CHECK_MSG(q.clusters_connected, ctx + ": cluster induces disconnected subgraph");
}

void run_edt(const std::string& fam) {
  Rng rng(23);
  // Triangulation-based planar families have O(log n) diameter, below the
  // chopping band width — EDT would return the identity clustering and the
  // test would be vacuous. Use a near-tree random planar graph (diameter
  // ~sqrt(n)) so the decomposition actually has to cut.
  const Graph g = fam == "planar" ? random_planar(4096, 4096 + 81, rng)
                                  : make_family(fam, kN, rng);
  for (double eps : {0.2, 0.4}) {
    const std::string ctx = "edt/" + fam + "/eps=" + Table::num(eps, 1);
    const EdtDecomposition d = build_edt_decomposition(g, eps);
    check_partition(g, d.clustering, d.quality, ctx);
    CHECK_MSG(d.quality.eps_fraction <= eps + 1e-12, ctx);
    // D = O(1/eps); the simulation's constant is ~4 band widths.
    const double bound = 20.0 / eps + 10.0;
    CHECK_MSG(d.quality.max_diameter <= bound, ctx + ": D=" +
                  Table::integer(d.quality.max_diameter));
    CHECK_MSG(d.iterations >= 1, ctx + ": decomposition never chopped");
    CHECK_MSG(d.clustering.k > 1, ctx);
    CHECK_MSG(d.ledger.total() > 0, ctx);
    CHECK_MSG(d.T_measured > 0, ctx);
    CHECK_MSG(d.iterations <= 8, ctx);
  }
}

void run_chw(const std::string& fam) {
  Rng rng(29);
  const Graph g = make_family(fam, kN, rng);
  for (double eps : {0.2, 0.4}) {
    const std::string ctx = "chw/" + fam + "/eps=" + Table::num(eps, 1);
    const ChwLdd d = ldd_chw_local_model(g, eps, 3);
    check_partition(g, d.clustering, d.quality, ctx);
    CHECK_MSG(d.quality.eps_fraction <= eps + 1e-12, ctx);
    // Ball radius <= log_{1+eps} m + 2, diameter twice that.
    const double bound =
        2.0 * (std::log(static_cast<double>(g.m())) / std::log1p(eps) + 2.0);
    CHECK_MSG(d.quality.max_diameter <= bound, ctx + ": D=" +
                  Table::integer(d.quality.max_diameter));
    CHECK_MSG(d.ledger.total() > 0, ctx);
  }
}

void run_mpx(const std::string& fam) {
  Rng rng(31);
  const Graph g = make_family(fam, kN, rng);
  for (double eps : {0.2, 0.4}) {
    const std::string ctx = "mpx/" + fam + "/eps=" + Table::num(eps, 1);
    Accumulator frac;
    for (int s = 0; s < 5; ++s) {
      const MpxLdd d = ldd_mpx(g, eps, rng);
      check_partition(g, d.clustering, d.quality, ctx);
      frac.add(d.quality.eps_fraction);
      // Radius <= max shift <= 2 ln n / (eps/2); diameter twice that, plus
      // slack for the fractional-start rounding.
      const double bound = 8.0 * std::log(static_cast<double>(g.n())) / eps + 8.0;
      CHECK_MSG(d.quality.max_diameter <= bound, ctx + ": D=" +
                    Table::integer(d.quality.max_diameter));
      CHECK_MSG(d.rounds > 0, ctx);
    }
    // Randomized guarantee holds in expectation: average with 25% slack.
    CHECK_MSG(frac.mean() <= eps * 1.25,
              ctx + ": mean cut " + Table::num(frac.mean(), 3));
  }
}

}  // namespace

TEST_CASE(quality_on_known_graph) {
  // Two triangles {0,1,2} and {3,4,5} joined by the edge 2-3.
  const Graph g = Graph::from_edges(
      6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}});
  Clustering c;
  c.k = 2;
  c.cluster = {0, 0, 0, 1, 1, 1};
  const Quality q = measure_quality(g, c);
  CHECK(q.cut_edges == 1);
  CHECK(std::abs(q.eps_fraction - 1.0 / 7.0) < 1e-12);
  CHECK(q.max_diameter == 1);
  CHECK(q.clusters_connected);
  CHECK(q.max_cluster_size == 3);
}

TEST_CASE(clustering_compact) {
  Clustering c;
  c.cluster = {5, 9, 5, 2, 9};
  c.k = 10;
  c.compact();
  CHECK(c.k == 3);
  CHECK((c.cluster == std::vector<int>{1, 2, 1, 0, 2}));
}

TEST_CASE(edt_grid) { run_edt("grid"); }
TEST_CASE(edt_planar) { run_edt("planar"); }
TEST_CASE(chw_grid) { run_chw("grid"); }
TEST_CASE(chw_planar) { run_chw("planar"); }
TEST_CASE(mpx_grid) { run_mpx("grid"); }
TEST_CASE(mpx_planar) { run_mpx("planar"); }

TEST_CASE(edt_deterministic) {
  Rng r1(37), r2(37);
  const Graph a = make_family("planar", 512, r1);
  const Graph b = make_family("planar", 512, r2);
  const EdtDecomposition da = build_edt_decomposition(a, 0.3);
  const EdtDecomposition db = build_edt_decomposition(b, 0.3);
  CHECK(da.clustering.cluster == db.clustering.cluster);
  CHECK(da.quality.cut_edges == db.quality.cut_edges);
  CHECK(da.ledger.total() == db.ledger.total());
}
