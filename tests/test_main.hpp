// Minimal header-only test harness (GoogleTest is not vendored and the build
// must work offline, so no FetchContent).
//
// Usage: `TEST_CASE(name) { CHECK(cond); CHECK_MSG(cond, "context"); }` in a
// .cpp that includes this header; the header supplies main(). Run with no
// arguments to execute every case, or pass case names to run a subset —
// which is how CMakeLists registers each case as its own ctest test.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace mfd::test {

struct Case {
  std::string name;
  std::function<void()> fn;
};

inline std::vector<Case>& registry() {
  static std::vector<Case> cases;
  return cases;
}

inline int failures = 0;
inline const char* current_case = "";

struct Registrar {
  Registrar(const char* name, void (*fn)()) { registry().push_back({name, fn}); }
};

inline void check_failed(const char* file, int line, const char* expr,
                         const std::string& msg) {
  ++failures;
  std::fprintf(stderr, "FAIL %s at %s:%d: CHECK(%s)%s%s\n", current_case, file,
               line, expr, msg.empty() ? "" : " — ", msg.c_str());
}

}  // namespace mfd::test

#define TEST_CASE(name)                                              \
  static void test_##name();                                         \
  static ::mfd::test::Registrar registrar_##name(#name, test_##name); \
  static void test_##name()

#define CHECK(expr)                                                     \
  do {                                                                  \
    if (!(expr)) ::mfd::test::check_failed(__FILE__, __LINE__, #expr, ""); \
  } while (0)

#define CHECK_MSG(expr, msg)                                              \
  do {                                                                    \
    if (!(expr)) ::mfd::test::check_failed(__FILE__, __LINE__, #expr, msg); \
  } while (0)

int main(int argc, char** argv) {
  using namespace mfd::test;
  int ran = 0;
  for (const Case& c : registry()) {
    bool selected = argc <= 1;
    for (int i = 1; i < argc; ++i) {
      if (c.name == argv[i]) selected = true;
    }
    if (!selected) continue;
    current_case = c.name.c_str();
    const int before = failures;
    c.fn();
    ++ran;
    std::printf("%-4s %s\n", failures == before ? "ok" : "FAIL", c.name.c_str());
  }
  if (ran == 0) {
    std::fprintf(stderr, "no matching test case\n");
    return 2;
  }
  if (failures != 0) {
    std::fprintf(stderr, "%d check(s) failed\n", failures);
    return 1;
  }
  return 0;
}
