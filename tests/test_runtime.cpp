// congest/runtime invariants: the instrumented CONGEST accounting engine.
//   * log_star / ceil_log2 guards at the boundary values (0, 1, 2, 2^62,
//     negatives, NaN/inf),
//   * MessageMeter counting and per-round peaks,
//   * Runtime::audit() accepts measured pipelines and flags violations,
//   * ChargeScope nesting/prefixing is exactly manual absorb-with-prefix,
//   * message conservation on hand-computable graphs (path, star, cycle),
//   * heavy-stars messages <= c*m per iteration and O(1) LDD peak
//     congestion on bounded-degree families (the regression gates),
//   * determinism: two runs produce identical charge sequences.
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "apps/approx.hpp"
#include "congest/cole_vishkin.hpp"
#include "congest/runtime.hpp"
#include "decomp/edt.hpp"
#include "decomp/heavy_stars.hpp"
#include "decomp/ldd_local.hpp"
#include "decomp/overlap_decomp.hpp"
#include "graph/generators.hpp"
#include "test_main.hpp"

using namespace mfd;

namespace {

bool same_charges(const congest::Runtime& a, const congest::Runtime& b) {
  if (a.entries().size() != b.entries().size()) return false;
  for (std::size_t i = 0; i < a.entries().size(); ++i) {
    const congest::RoundCharge& x = a.entries()[i];
    const congest::RoundCharge& y = b.entries()[i];
    if (x.phase != y.phase || x.rounds != y.rounds ||
        x.messages != y.messages || x.max_congestion != y.max_congestion) {
      return false;
    }
  }
  return true;
}

}  // namespace

TEST_CASE(log_star_guards) {
  CHECK(congest::log_star(0.0) == 0);
  CHECK(congest::log_star(-5.0) == 0);
  CHECK(congest::log_star(1.0) == 0);
  CHECK(congest::log_star(2.0) == 1);
  CHECK(congest::log_star(16.0) == 3);
  CHECK(congest::log_star(65536.0) == 4);
  CHECK(congest::log_star(std::numeric_limits<double>::quiet_NaN()) == 0);
  CHECK(congest::log_star(std::numeric_limits<double>::infinity()) == 0);
  CHECK(congest::log_star(-std::numeric_limits<double>::infinity()) == 0);
}

TEST_CASE(ceil_log2_boundaries) {
  CHECK(congest::ceil_log2(0) == 1);
  CHECK(congest::ceil_log2(-1) == 1);
  CHECK(congest::ceil_log2(1) == 1);
  CHECK(congest::ceil_log2(2) == 1);
  CHECK(congest::ceil_log2(3) == 2);
  CHECK(congest::ceil_log2(4) == 2);
  CHECK(congest::ceil_log2(5) == 3);
  const std::int64_t big = std::int64_t{1} << 62;
  CHECK(congest::ceil_log2(big) == 62);
  CHECK(congest::ceil_log2(big + 1) == 62);  // overflow-safe clamp
  CHECK(congest::ceil_log2(std::numeric_limits<std::int64_t>::max()) == 62);
}

TEST_CASE(message_meter_counts_and_peaks) {
  congest::MessageMeter m(4);
  m.send(0);
  m.send(0);
  m.send(1);
  CHECK(m.round_peak() == 2);
  m.end_round();
  CHECK(m.round_peak() == 0);  // loads reset at the round boundary
  m.send(3);
  CHECK(m.round_peak() == 1);
  m.end_round();
  CHECK(m.rounds() == 2);
  CHECK(m.total_messages() == 4);
  CHECK(m.peak_congestion() == 2);
}

TEST_CASE(meter_zero_count_send_is_pure_query) {
  // send(s, 0) is a no-op QUERY: it must not meter anything and — the
  // regression — must not push an untouched slot into the round's touched
  // list, which previously left a stale entry that end_round() would reset
  // redundantly and, worse, let a later real send on that slot skip its own
  // touched registration path's invariants. Negative counts are the same
  // no-op (metering is monotone; nothing ever "un-sends").
  congest::MessageMeter m(4);
  CHECK(m.send(2, 0) == 0);   // query on an idle slot: current load is 0
  CHECK(m.send(2, -5) == 0);  // negative count: identical no-op query
  CHECK(m.round_peak() == 0);
  CHECK(m.total_messages() == 0);
  m.end_round();
  CHECK(m.peak_congestion() == 0);  // the query round metered nothing
  m.send(2, 3);
  CHECK(m.send(2, 0) == 3);  // query reports the open round's load
  CHECK(m.send(1, 0) == 0);  // other slots unaffected
  CHECK(m.round_peak() == 3);
  m.end_round();
  CHECK(m.send(2, 0) == 0);  // loads reset at the boundary, query agrees
  CHECK(m.total_messages() == 3);
  CHECK(m.peak_congestion() == 3);
  // Out-of-range queries are tracked nowhere and return 0.
  CHECK(m.send(-1, 0) == 0);
  CHECK(m.send(99, 0) == 0);
}

TEST_CASE(congestion_floor_identity) {
  CHECK(congest::congestion_floor(0, 5, 10) == 0);
  CHECK(congest::congestion_floor(7, 5, 10) == 1);   // fits at peak 1
  CHECK(congest::congestion_floor(50, 5, 10) == 1);  // exactly full
  CHECK(congest::congestion_floor(51, 5, 10) == 2);  // needs a second slot
}

TEST_CASE(audit_flags_violations) {
  {
    congest::Runtime r;
    r.charge("ok", 3, 6, 2);
    CHECK(r.audit().ok);
    CHECK(r.audit(2).ok);  // 6 <= 3 rounds * 2 edges * 2 peak
    CHECK(r.audit(1).ok);  // boundary: 6 == 3 rounds * 1 edge * 2 peak
  }
  {
    congest::Runtime r;
    r.charge("messages without rounds", 0, 5, 1);
    CHECK(!r.audit().ok);
  }
  {
    congest::Runtime r;
    r.charge("messages without congestion", 2, 5, 0);
    CHECK(!r.audit().ok);
  }
  {
    congest::Runtime r;
    r.charge("congestion without messages", 2, 0, 1);
    CHECK(!r.audit().ok);
  }
  {
    congest::Runtime r;
    r.charge("peak exceeds total", 1, 2, 3);
    CHECK(!r.audit().ok);
  }
  {
    congest::Runtime r;
    r.charge("bandwidth blown", 1, 100, 1);
    CHECK(r.audit().ok);        // no edge count given: inequality unchecked
    CHECK(!r.audit(10).ok);     // 100 > 1 round * 10 edges * 1 peak
  }
  {
    congest::Runtime r;
    r.charge("negative", -1);
    CHECK(!r.audit().ok);
  }
}

TEST_CASE(audit_bandwidth_inequality) {
  // The exact boundary: messages == rounds * edges * peak passes, one more
  // message fails.
  congest::Runtime ok;
  ok.charge("full", 2, 12, 3);  // 12 == 2 * 2 * 3 with edges=2
  CHECK(ok.audit(2).ok);
  congest::Runtime bad;
  bad.charge("overfull", 2, 13, 3);
  CHECK(!bad.audit(2).ok);
}

TEST_CASE(chargescope_equals_manual_absorb) {
  congest::Runtime sub;
  sub.charge("x", 3, 7, 1);
  sub.charge("y", 2);

  congest::Runtime manual;
  manual.charge("before", 1);
  manual.absorb(sub, "edt: ");
  manual.charge("after", 4, 8, 2);

  congest::Runtime scoped;
  scoped.charge("before", 1);
  {
    congest::ChargeScope scope(scoped, "edt");
    scope.absorb(sub);
  }
  scoped.charge("after", 4, 8, 2);

  CHECK(same_charges(manual, scoped));
  CHECK(scoped.audit().ok);
  CHECK(scoped.total() == manual.total());
  CHECK(scoped.total_messages() == manual.total_messages());
}

TEST_CASE(chargescope_nesting_prefixes) {
  congest::Runtime root;
  {
    congest::ChargeScope outer(root, "outer");
    {
      congest::ChargeScope inner(outer.runtime(), "inner");
      inner.charge("leaf", 5, 10, 1);
    }
    outer.charge("sibling", 1);
  }
  CHECK(root.entries().size() == 2);
  CHECK(root.entries()[0].phase == "outer: inner: leaf");
  CHECK(root.entries()[1].phase == "outer: sibling");
  CHECK(root.total() == 6);
  CHECK(root.total_messages() == 10);
  CHECK(root.audit().ok);
  // close() is idempotent and early-close works like destructor-close.
  congest::Runtime root2;
  congest::ChargeScope scope(root2, "p");
  scope.charge("q", 2);
  scope.close();
  scope.close();
  CHECK(root2.entries().size() == 1);
  CHECK(root2.entries()[0].phase == "p: q");
}

TEST_CASE(cv_messages_on_path) {
  // Hand-computable: a rooted path has n-1 forest edges and every round
  // sends exactly one color per edge, so messages == rounds * (n-1).
  for (int n : {2, 100, 4096}) {
    std::vector<int> parent(n);
    parent[0] = -1;
    for (int v = 1; v < n; ++v) parent[v] = v - 1;
    const auto cv = congest::cole_vishkin_3color_forest(n, parent);
    CHECK_MSG(cv.messages == static_cast<std::int64_t>(cv.rounds) * (n - 1),
              "n=" + std::to_string(n));
    CHECK(cv.max_congestion == 1);
  }
}

TEST_CASE(heavy_stars_message_conservation_star_cycle) {
  // Star graph: center 0, m = n-1 edges. Cycle: n edges. On both, the
  // pointing round sends exactly one pointer per directed edge (2m), and
  // the per-iteration total stays within the c*m regression gate.
  for (const bool cycle : {false, true}) {
    const int n = 200;
    std::vector<WeightedEdge> edges;
    for (int i = 1; i < n; ++i) {
      edges.push_back(cycle ? WeightedEdge{i - 1, i, 1}
                            : WeightedEdge{0, i, 1});
    }
    if (cycle) edges.push_back({n - 1, 0, 1});
    const WeightedGraph g(n, std::move(edges));
    const decomp::HeavyStarsResult hs = decomp::heavy_stars(g);
    const std::string ctx = cycle ? "cycle" : "star";
    CHECK_MSG(hs.ledger.entries().size() == 4, ctx);
    CHECK_MSG(hs.ledger.entries()[0].phase == "pointing", ctx);
    CHECK_MSG(hs.ledger.entries()[0].messages == 2 * g.m(), ctx);
    CHECK_MSG(hs.messages == hs.ledger.total_messages(), ctx);
    CHECK_MSG(hs.max_congestion == hs.ledger.peak_congestion(), ctx);
    CHECK_MSG(hs.rounds == hs.ledger.total(), ctx);
    CHECK_MSG(hs.ledger.audit(2 * g.m()).ok, ctx);
    // Regression gate: one heavy-stars run costs at most c*m messages
    // (pointing 2m + cv rounds * forest + vote 6*forest + formation), with
    // forest <= n-1 <= m on connected graphs and cv rounds O(log* n).
    const std::int64_t gate = (2 + hs.cv_rounds + 6 + 1) * g.m();
    CHECK_MSG(hs.messages <= gate,
              ctx + " messages=" + std::to_string(hs.messages));
    CHECK_MSG(hs.messages > 0, ctx);
  }
}

TEST_CASE(ldd_local_peak_congestion_bounded) {
  // Bounded-degree family (grid): the measured peak per-edge congestion of
  // the whole pipeline is O(1) — the six-way bipartition vote is the
  // heaviest phase, so the peak is exactly 6 (and never more).
  const Graph g = grid_graph(20, 20);
  const decomp::LocalLdd ldd = decomp::ldd_minor_free_local(g, 0.3);
  CHECK(ldd.ledger.total_messages() > 0);
  CHECK(ldd.ledger.peak_congestion() >= 1);
  CHECK_MSG(ldd.ledger.peak_congestion() <= 6,
            "peak=" + std::to_string(ldd.ledger.peak_congestion()));
  CHECK(ldd.ledger.audit(2 * g.m()).ok);
  // Per-iteration gate: every heavy-stars pointing phase sends at most one
  // pointer per directed G-edge (cluster-graph edges are G-edge classes).
  for (const congest::RoundCharge& e : ldd.ledger.entries()) {
    if (e.phase.find("pointing") != std::string::npos) {
      CHECK_MSG(e.messages <= 2 * g.m(), e.phase);
    }
  }
}

TEST_CASE(edt_all_live_phases_have_messages) {
  // Every phase that charges rounds must now carry messages — measured or
  // envelope — on both chop routes.
  const Graph g = grid_graph(16, 16);
  for (const auto chop :
       {decomp::EdtChop::kLocalContraction, decomp::EdtChop::kGlobalBfs}) {
    decomp::EdtParams p;
    p.chop = chop;
    const decomp::EdtDecomposition edt = decomp::build_edt_decomposition(g, 0.3, p);
    const std::string ctx =
        chop == decomp::EdtChop::kGlobalBfs ? "chop" : "local";
    CHECK_MSG(edt.ledger.total_messages() > 0, ctx);
    CHECK_MSG(edt.ledger.peak_congestion() >= 1, ctx);
    CHECK_MSG(edt.ledger.audit(2 * g.m()).ok,
              ctx + ": " + edt.ledger.audit(2 * g.m()).violation);
    for (const congest::RoundCharge& e : edt.ledger.entries()) {
      if (e.rounds > 0) {
        CHECK_MSG(e.messages > 0, ctx + " phase '" + e.phase + "'");
      }
    }
  }
}

TEST_CASE(accounting_deterministic) {
  // Two identical runs must produce bit-identical charge sequences — the
  // determinism gate for the whole accounting path.
  const Graph g = grid_graph(18, 18);
  const decomp::EdtDecomposition a = decomp::build_edt_decomposition(g, 0.3);
  const decomp::EdtDecomposition b = decomp::build_edt_decomposition(g, 0.3);
  CHECK(same_charges(a.ledger, b.ledger));
  const decomp::LocalLdd la = decomp::ldd_minor_free_local(g, 0.25);
  const decomp::LocalLdd lb = decomp::ldd_minor_free_local(g, 0.25);
  CHECK(same_charges(la.ledger, lb.ledger));
}

TEST_CASE(overlap_budgeted_levels_halve) {
  const Graph g = grid_graph(14, 14);
  decomp::OverlapDecompParams p;
  p.budgeted = true;
  const decomp::OverlapDecompResult od =
      decomp::overlap_expander_decomposition(g, 0.25, p);
  CHECK(od.iterations >= 1);
  CHECK(od.budget_violations.empty());
  CHECK(od.level_edges.size() == static_cast<std::size_t>(od.iterations));
  for (std::size_t i = 0; i < od.level_edges.size(); ++i) {
    CHECK_MSG(2 * od.level_uncovered[i] <= od.level_edges[i],
              "level " + std::to_string(i));
  }
  const decomp::OverlapQuality q = decomp::evaluate_overlap(g, od);
  CHECK(q.level_budget_ok);
  // No level overshoots on this instance, so the surgical ladder never runs.
  CHECK(od.level_retries.size() == static_cast<std::size_t>(od.iterations));
  for (int r : od.level_retries) CHECK(r == 0);
  CHECK(od.ledger.total_messages() > 0);
  CHECK(od.ledger.audit(2 * g.m()).ok);
}

TEST_CASE(overlap_surgical_retry_repairs_level) {
  // Force the budgeted retry ladder: level_eps = 3.0 gives the base pass an
  // allowance >= m, so the EDT inside it never merges anything — every edge
  // stays uncovered and the level is maximally over budget. The surgical
  // ladder must then re-partition ONLY the uncovered remainder at halved
  // eps, append those clusters (the overlap the object licenses), and bring
  // the level inside its halving budget — with the retry trail recorded and
  // every evaluate_overlap guarantee intact.
  const Graph g = grid_graph(14, 14);
  decomp::OverlapDecompParams p;
  p.budgeted = true;
  p.level_eps = 3.0;
  const decomp::OverlapDecompResult od =
      decomp::overlap_expander_decomposition(g, 0.25, p);
  CHECK(od.iterations >= 1);
  CHECK(!od.level_retries.empty());
  CHECK_MSG(od.level_retries[0] >= 1, "ladder never ran");
  CHECK(od.budget_violations.empty());
  int total_retries = 0;
  for (std::size_t i = 0; i < od.level_edges.size(); ++i) {
    CHECK_MSG(2 * od.level_uncovered[i] <= od.level_edges[i],
              "level " + std::to_string(i));
    total_retries += od.level_retries[i];
  }
  const decomp::OverlapQuality q = decomp::evaluate_overlap(g, od);
  CHECK(q.level_budget_ok);
  CHECK(q.base.eps_fraction <= 0.25);
  // A vertex joins at most one cluster per pass: levels + retries bounds c.
  CHECK_MSG(q.overlap_c <= od.iterations + total_retries,
            "c=" + std::to_string(q.overlap_c));
  // The retry trail is visible in the ledger under the level's prefix.
  bool saw_retry_charge = false;
  for (const congest::RoundCharge& e : od.ledger.entries()) {
    if (e.phase.find("retry 1: ") != std::string::npos) saw_retry_charge = true;
  }
  CHECK(saw_retry_charge);
  CHECK(od.ledger.audit(2 * g.m()).ok);
}

TEST_CASE(solver_stats_audit_passes) {
  // An apps/-layer solve carries the full composed breakdown; the audit
  // must hold end to end (edt phases + cluster solve + seam repair).
  Rng rng(23);
  const Graph g = random_maximal_planar(80, rng);
  const apps::SetSolution sol = apps::approx_max_independent_set(g, 0.4, 3);
  CHECK(sol.stats.runtime.audit(2 * g.m()).ok);
  CHECK(sol.stats.runtime.total_messages() > 0);
  CHECK(sol.stats.total_rounds == sol.stats.runtime.total());
}
