// graph/planarity.hpp invariants:
//   * every planar generator family tests planar (the ten families minus
//     ktree3, whose random instances stack three vertices on one triangle
//     and thereby contain K3,3 subdivisions),
//   * K5, K3,3, the Petersen graph, and random subdivisions of K5/K3,3
//     test non-planar — subdivisions keep m <= 3n - 6, so these exercise
//     the LR machinery rather than the Euler filter,
//   * apexed expanders (apex over a random 3-regular graph) are non-planar,
//   * maximal planar graphs are edge-maximal: adding any non-edge flips
//     the verdict,
//   * the Euler filter reports its own verdict on dense graphs.
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "graph/ops.hpp"
#include "graph/planarity.hpp"
#include "test_main.hpp"

using namespace mfd;
using mfd::bench::make_family;

namespace {

Graph k33() {
  std::vector<std::pair<int, int>> e;
  for (int a = 0; a < 3; ++a) {
    for (int b = 3; b < 6; ++b) e.emplace_back(a, b);
  }
  return Graph::from_edges(6, std::move(e));
}

Graph petersen() {
  std::vector<std::pair<int, int>> e;
  for (int i = 0; i < 5; ++i) {
    e.emplace_back(i, (i + 1) % 5);
    e.emplace_back(i, i + 5);
    e.emplace_back(i + 5, 5 + (i + 2) % 5);
  }
  return Graph::from_edges(10, std::move(e));
}

/// Subdivide `times` random edges (planarity-preserving in both directions).
Graph subdivide(const Graph& g, int times, Rng& rng) {
  auto edges = g.edges();
  int n = g.n();
  for (int t = 0; t < times; ++t) {
    const int ei = rng.uniform_int(0, static_cast<int>(edges.size()) - 1);
    const auto [a, b] = edges[ei];
    edges[ei] = {a, n};
    edges.emplace_back(n, b);
    ++n;
  }
  return Graph::from_edges(n, std::move(edges));
}

}  // namespace

TEST_CASE(planarity_minor_free_families) {
  for (const char* fam :
       {"tree", "cycle", "path", "grid", "outerplanar", "planar",
        "planar-sparse", "cactus", "series-parallel"}) {
    Rng rng(5);
    CHECK_MSG(is_planar(make_family(fam, 600, rng)), fam);
  }
  CHECK(is_planar(add_apex(cycle_graph(24))));  // the wheel
  CHECK(is_planar(complete_graph(4)));
  CHECK(is_planar(Graph::from_edges(0, {})));
  CHECK(is_planar(Graph::from_edges(1, {})));
}

TEST_CASE(planarity_kuratowski_negative) {
  CHECK(!is_planar(complete_graph(5)));
  CHECK(!is_planar(k33()));
  CHECK(!is_planar(petersen()));
  // K6 is dense enough for the Euler verdict; Petersen needs the LR one.
  CHECK(check_planarity(complete_graph(6)).verdict ==
        PlanarityVerdict::kEulerBound);
  CHECK(check_planarity(petersen()).verdict == PlanarityVerdict::kLrConflict);
}

TEST_CASE(planarity_subdivisions_stay_nonplanar) {
  for (int seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 11);
    CHECK_MSG(!is_planar(subdivide(complete_graph(5), 40, rng)),
              "K5 subdivision seed=" + std::to_string(seed));
    CHECK_MSG(!is_planar(subdivide(k33(), 40, rng)),
              "K3,3 subdivision seed=" + std::to_string(seed));
  }
  // Non-planar piece hiding inside a larger planar host (disjoint union).
  std::vector<std::pair<int, int>> e = grid_graph(8, 8).edges();
  for (int a = 64; a < 69; ++a) {
    for (int b = a + 1; b < 69; ++b) e.emplace_back(a, b);
  }
  CHECK(!is_planar(Graph::from_edges(69, std::move(e))));
}

TEST_CASE(planarity_apexed_expanders) {
  for (int seed = 1; seed <= 5; ++seed) {
    Rng rng(seed * 3 + 1);
    CHECK_MSG(!is_planar(add_apex(random_regular(40, 3, rng))),
              "apexed 3-regular seed=" + std::to_string(seed));
  }
  // Random 3-trees stack vertices on shared triangles: K3,3 subdivisions.
  Rng rng(5);
  CHECK(!is_planar(make_family("ktree3", 600, rng)));
}

TEST_CASE(planarity_maximal_planar_edge_maximal) {
  for (int seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    const int n = 20 + static_cast<int>(rng.next_below(200));
    const Graph g = random_maximal_planar(n, rng);
    CHECK_MSG(is_planar(g), "seed=" + std::to_string(seed));
    for (int t = 0; t < 3; ++t) {
      const int a = static_cast<int>(rng.next_below(n));
      const int b = static_cast<int>(rng.next_below(n));
      if (a == b || g.has_edge(a, b)) {
        --t;
        continue;
      }
      auto e = g.edges();
      e.emplace_back(a, b);
      CHECK_MSG(!is_planar(Graph::from_edges(n, std::move(e))),
                "added (" + std::to_string(a) + "," + std::to_string(b) + ")");
    }
  }
}
