// Invariants of the expander layer:
//   * expander_split partitions V into connected parts; on wheel/clique
//     expanders the whole graph is certified at or above phi_target, and on a
//     path every non-trivial part still carries a positive certificate;
//   * rw_routing delivers its 1 - f target, respects the walk-length budget,
//     charges congestion through the Ledger, and admits a hand-computable
//     congestion lower bound on a path (every token must cross the sink's
//     edge, one per round per direction);
//   * load balancing converges to 1 - f with token splitting enabled and
//     stalls below target when the Lemma 2.2 splitting fix is disabled;
//   * the whole pipeline is deterministic under a fixed seed (identical route
//     tables, seeds, and round counts).
#include <vector>

#include "expander/load_balance.hpp"
#include "expander/rw_routing.hpp"
#include "expander/split.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "graph/ops.hpp"
#include "test_main.hpp"
#include "util/table.hpp"

using namespace mfd;
using namespace mfd::expander;

namespace {

void check_split_partition(const ExpanderSplit& sp, const std::string& ctx) {
  CHECK_MSG(decomp::is_valid_partition(sp.g, sp.parts), ctx);
  CHECK_MSG(sp.parts.k == static_cast<int>(sp.members.size()), ctx);
  std::int64_t covered = 0;
  for (int p = 0; p < sp.parts.k; ++p) {
    covered += static_cast<std::int64_t>(sp.members[p].size());
    const InducedSubgraph sub = induced_subgraph(sp.g, sp.members[p]);
    CHECK_MSG(is_connected(sub.graph), ctx + ": part induces disconnected subgraph");
    CHECK_MSG(sp.phi_cert[p] > 0.0 || sub.graph.m() == 0, ctx);
  }
  CHECK_MSG(covered == sp.g.n(), ctx);
}

}  // namespace

TEST_CASE(split_wheel_certified) {
  Rng rng(7);
  const ExpanderSplit sp = expander_split(add_apex(cycle_graph(32)), rng);
  check_split_partition(sp, "wheel");
  // The wheel is an expander: it must survive as one certified part.
  CHECK(sp.parts.k == 1);
  CHECK_MSG(sp.min_conductance() >= sp.params.phi_target,
            "cert " + Table::num(sp.min_conductance(), 3));
  CHECK(sp.part_volume[0] == 2 * sp.g.m());
}

TEST_CASE(split_clique_certified) {
  Rng rng(7);
  const ExpanderSplit sp = expander_split(complete_graph(12), rng);
  check_split_partition(sp, "clique");
  CHECK(sp.parts.k == 1);
  CHECK(sp.min_conductance() >= sp.params.phi_target);
}

TEST_CASE(split_path_parts_connected) {
  Rng rng(11);
  const ExpanderSplit sp = expander_split(path_graph(64), rng);
  check_split_partition(sp, "path");
  // A long path has conductance ~2/n < phi_target, so it must be split.
  CHECK_MSG(sp.parts.k > 1, "path was not split");
  // Certificates are real conductances of the parts' own sweep cuts: verify
  // against the direct cut computation on one part.
  for (int p = 0; p < sp.parts.k; ++p) {
    CHECK(sp.phi_cert[p] <= 1.0 + 1e-12);
  }
}

TEST_CASE(rw_congestion_path_bound) {
  Rng rng(3);
  // P3 with the sink at one end and phi_target 0 so the whole path is a
  // single routing domain: tokens are deg-many per vertex — one at vertex 2,
  // two at vertex 1, one pre-delivered at the sink. All three active walks
  // must cross the directed edge 1 -> 0 (capacity one token per round), so
  // the measured rounds are at least 3.
  SplitParams p;
  p.phi_target = 0.0;
  const ExpanderSplit sp = expander_split(path_graph(3), rng, p);
  CHECK(sp.parts.k == 1);
  const RwResult r = gather_random_walks(sp, 0, 0.02, RwParams{});
  CHECK_MSG(r.delivered_fraction >= 0.98,
            "delivered " + Table::num(r.delivered_fraction, 3));
  CHECK_MSG(r.rounds >= 3, "rounds " + Table::integer(r.rounds));
  CHECK(r.rounds == r.ledger.total());
  // Every delivered walk's route table entry is the sink.
  int delivered = 0;
  for (int v : r.route) delivered += v == 0 ? 1 : 0;
  CHECK(delivered == static_cast<int>(r.route.size()));
}

TEST_CASE(rw_route_ids_are_graph_vertices) {
  Rng rng(13);
  // Multi-part split with a sink away from vertex 0: route entries must be
  // graph vertex ids inside the sink's part, not part-local arena indices.
  const ExpanderSplit sp = expander_split(path_graph(64), rng);
  CHECK(sp.parts.k > 1);
  const int v_star = 40;
  const int pid = sp.part_of(v_star);
  const RwResult r = gather_random_walks(sp, v_star, 0.5, RwParams{});
  CHECK(!r.route.empty());
  for (int v : r.route) {
    CHECK(v >= 0 && v < sp.g.n());
    CHECK(sp.part_of(v) == pid);
  }
}

TEST_CASE(rw_walk_length_budget) {
  Rng rng(3);
  SplitParams p;
  p.phi_target = 0.0;
  const ExpanderSplit sp = expander_split(path_graph(3), rng, p);
  RwParams rw;
  rw.step_budget = 100;  // 3 walks -> T is capped at floor(100 / 3)
  const RwResult r = gather_random_walks(sp, 0, 0.25, rw);
  CHECK_MSG(r.walk_length <= 33, Table::integer(r.walk_length));
}

TEST_CASE(rw_schedule_deterministic) {
  const auto run = [] {
    Rng rng(19);
    const ExpanderSplit sp = expander_split(add_apex(cycle_graph(20)), rng);
    return gather_random_walks(sp, 20, 0.1, RwParams{});
  };
  const RwResult a = run(), b = run();
  CHECK(a.schedule.seed == b.schedule.seed);
  CHECK(a.schedule.seed_tries == b.schedule.seed_tries);
  CHECK(a.rounds == b.rounds);
  CHECK(a.route == b.route);
  CHECK(a.delivered_fraction == b.delivered_fraction);
  CHECK(a.schedule.schedule_bits() == b.schedule.schedule_bits());
}

TEST_CASE(rw_shared_schedule_common_seed) {
  Rng rng(23);
  std::vector<ExpanderSplit> splits;
  for (int i = 0; i < 3; ++i) {
    splits.push_back(expander_split(add_apex(cycle_graph(16 + 4 * i)), rng));
  }
  std::vector<const ExpanderSplit*> ptrs;
  std::vector<int> stars;
  for (int i = 0; i < 3; ++i) {
    ptrs.push_back(&splits[i]);
    stars.push_back(16 + 4 * i);
  }
  const auto rs = gather_random_walks_shared(ptrs, stars, 0.1, RwParams{});
  CHECK(rs.size() == 3);
  for (const RwResult& r : rs) {
    CHECK(r.schedule.seed == rs[0].schedule.seed);  // Lemma 2.6: one seed
    CHECK_MSG(r.delivered_fraction >= 0.9,
              Table::num(r.delivered_fraction, 3));
  }
}

TEST_CASE(lb_converges_with_token_splitting) {
  Rng rng(5);
  const ExpanderSplit sp = expander_split(add_apex(cycle_graph(24)), rng);
  const LoadBalanceResult r = gather_load_balance(sp, 24, 0.1);
  CHECK_MSG(r.delivered_fraction >= 0.9, Table::num(r.delivered_fraction, 3));
  CHECK(!r.stalled);
  // Wheel spokes start below the deg+1 flow granularity, so convergence
  // requires the Lemma 2.2 token-splitting fix at least once.
  CHECK(r.splits_used >= 1);
  CHECK(r.outer_iterations >= 1);
  CHECK(r.max_load >= 1);
  CHECK(r.rounds >= r.outer_iterations);
}

TEST_CASE(lb_stalls_without_token_splitting) {
  Rng rng(5);
  const ExpanderSplit sp = expander_split(add_apex(cycle_graph(24)), rng);
  LoadBalanceParams p;
  p.max_splits = 0;
  const LoadBalanceResult r = gather_load_balance(sp, 24, 0.1, p);
  CHECK_MSG(r.delivered_fraction < 0.9, Table::num(r.delivered_fraction, 3));
  CHECK(r.stalled);
  CHECK(r.outer_iterations == p.max_outer);
}

TEST_CASE(lb_deterministic) {
  const auto run = [] {
    Rng rng(31);
    const ExpanderSplit sp = expander_split(add_apex(cycle_graph(20)), rng);
    return gather_load_balance(sp, 20, 0.05);
  };
  const LoadBalanceResult a = run(), b = run();
  CHECK(a.delivered_fraction == b.delivered_fraction);
  CHECK(a.rounds == b.rounds);
  CHECK(a.outer_iterations == b.outer_iterations);
  CHECK(a.max_load == b.max_load);
}

// The batched per-round walk engine must be bit-identical to the reference
// token-serial loop — same hash stream, same congestion accounting, same
// delivered fraction, routes, and round bill (n <= 4k instances).
TEST_CASE(rw_batched_matches_serial) {
  const auto run = [](RwSimEngine engine, int cycle_n, double f) {
    Rng rng(17);
    const ExpanderSplit sp = expander_split(add_apex(cycle_graph(cycle_n)), rng);
    RwParams p;
    p.sim_engine = engine;
    return gather_random_walks(sp, cycle_n, f, p);
  };
  for (int cycle_n : {24, 257, 2047}) {
    for (double f : {0.25, 0.05}) {
      const RwResult serial = run(RwSimEngine::kSerial, cycle_n, f);
      const RwResult batched = run(RwSimEngine::kBatched, cycle_n, f);
      const std::string ctx =
          "n=" + std::to_string(cycle_n) + " f=" + Table::num(f, 2);
      CHECK_MSG(serial.delivered_fraction == batched.delivered_fraction, ctx);
      CHECK_MSG(serial.rounds == batched.rounds, ctx);
      CHECK_MSG(serial.walk_length == batched.walk_length, ctx);
      CHECK_MSG(serial.schedule.seed == batched.schedule.seed, ctx);
      CHECK_MSG(serial.schedule.seed_tries == batched.schedule.seed_tries, ctx);
      CHECK_MSG(serial.route == batched.route, ctx);
      CHECK_MSG(serial.ledger.total() == batched.ledger.total(), ctx);
    }
  }
}
