// The sharded per-round engine's determinism contract (congest/shard.hpp):
// every sharded path must produce BIT-IDENTICAL results to its serial
// reference for every shard count. These cases sweep thread counts
// {1, 2, 7, hardware_concurrency} over
//   * the primitives (ShardPlan coverage, ShardPool task completion,
//     ShardedMeter merge vs a serial MessageMeter fed the same traffic),
//   * heavy-stars contraction on a weighted cluster graph,
//   * the full Theorem 1.1 local LDD on grid and torus families (clusterings,
//     cut edges, per-phase ledger entries, and Runtime::audit totals),
//   * the kSharded walk engine vs the kSerial reference (routes, rounds,
//     accepted seed, and the merged-meter congestion gate).
// They also run under ThreadSanitizer in CI — the race gate for the pool and
// the per-shard meter lanes.
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "apps/approx.hpp"
#include "apps/domination.hpp"
#include "apps/maxcut.hpp"
#include "congest/shard.hpp"
#include "decomp/edt.hpp"
#include "decomp/expander_decomp.hpp"
#include "decomp/heavy_stars.hpp"
#include "decomp/ldd_local.hpp"
#include "expander/rw_routing.hpp"
#include "expander/split.hpp"
#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "graph/weighted.hpp"
#include "test_main.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace mfd;
using namespace mfd::congest;

namespace {

// The sweep every equivalence case runs: serial, two, an odd count that does
// not divide the test sizes, and whatever the host machine has.
const std::vector<int> kThreadSweep = {1, 2, 7, 0};

bool same_charges(const Runtime& a, const Runtime& b, const std::string& ctx) {
  if (a.entries().size() != b.entries().size()) return false;
  for (std::size_t i = 0; i < a.entries().size(); ++i) {
    const RoundCharge& x = a.entries()[i];
    const RoundCharge& y = b.entries()[i];
    if (x.phase != y.phase || x.rounds != y.rounds ||
        x.messages != y.messages || x.max_congestion != y.max_congestion) {
      CHECK_MSG(false, ctx + ": charge " + std::to_string(i) + " (" + x.phase +
                           ") diverged");
      return false;
    }
  }
  return true;
}

// A deterministic weighted graph for the heavy-stars sweep: grid edges with
// weights spread over [1, 9] so the pointing phase has real ties to break.
WeightedGraph weighted_grid(int rows, int cols) {
  const Graph g = grid_graph(rows, cols);
  std::vector<WeightedEdge> edges;
  for (int u = 0; u < g.n(); ++u) {
    for (int v : g.neighbors(u)) {
      if (u < v) edges.push_back({u, v, (u * 7 + v * 13) % 9 + 1});
    }
  }
  return WeightedGraph(g.n(), std::move(edges));
}

}  // namespace

TEST_CASE(shard_plan_covers_range) {
  for (int n : {0, 1, 5, 16, 4096, 4097}) {
    for (int shards : {1, 2, 7, 8, 64}) {
      const ShardPlan plan(n, shards);
      const std::string ctx = "n=" + std::to_string(n) +
                              " shards=" + std::to_string(shards);
      CHECK_MSG(plan.begin(0) == 0, ctx);
      CHECK_MSG(plan.end(shards - 1) == n, ctx);
      int lo = n, hi = 0;
      for (int s = 0; s < shards; ++s) {
        CHECK_MSG(plan.end(s) == plan.begin(s + 1), ctx);  // contiguity
        const int size = plan.end(s) - plan.begin(s);
        CHECK_MSG(size >= 0, ctx);
        lo = std::min(lo, size);
        hi = std::max(hi, size);
      }
      CHECK_MSG(hi - lo <= 1, ctx + ": uneven partition");
    }
  }
}

TEST_CASE(shard_pool_runs_every_task_once) {
  for (int threads : kThreadSweep) {
    ShardPool pool(threads);
    CHECK(pool.threads() >= 1);
    const int tasks = 3 * pool.threads() + 5;
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(tasks));
    for (auto& h : hits) h.store(0);
    // Reuse across run() calls is the per-round pattern: barriers between.
    for (int round = 0; round < 3; ++round) {
      pool.run(tasks, [&](int t, int worker) {
        CHECK(worker >= 0 && worker < pool.threads());
        hits[static_cast<std::size_t>(t)].fetch_add(1);
      });
    }
    for (int t = 0; t < tasks; ++t) {
      CHECK_MSG(hits[static_cast<std::size_t>(t)].load() == 3,
                "task " + std::to_string(t) + " threads=" +
                    std::to_string(threads));
    }
  }
}

TEST_CASE(sharded_meter_merge_matches_serial_meter) {
  // Drive a serial MessageMeter and a ShardedMeter with identical traffic
  // (including zero-count queries, which must meter nothing on either) and
  // compare every merged view per round and at the end.
  const std::int64_t slots = 100;
  for (int shards : {1, 2, 7}) {
    std::vector<std::int64_t> slot_begin;
    const ShardPlan plan(static_cast<int>(slots), shards);
    for (int s = 0; s <= shards; ++s) slot_begin.push_back(plan.begin(s));
    MessageMeter serial(slots);
    ShardedMeter sharded(slot_begin);
    CHECK(sharded.shards() == shards);
    std::uint64_t state = 12345;
    const auto owner_of = [&](std::int64_t slot) {
      int s = 0;
      while (plan.end(s) <= slot) ++s;
      return s;
    };
    for (int round = 0; round < 17; ++round) {
      for (int i = 0; i < 400; ++i) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        const std::int64_t slot =
            static_cast<std::int64_t>(state >> 33) % slots;
        const std::int64_t count = static_cast<std::int64_t>(state >> 29) % 4;
        // count == 0 exercises the no-op query contract under sharding too.
        const std::int64_t a = serial.send(slot, count);
        const std::int64_t b = sharded.send(owner_of(slot), slot, count);
        CHECK(a == b);
      }
      CHECK_MSG(serial.round_peak() == sharded.round_peak(),
                "round " + std::to_string(round) + " shards=" +
                    std::to_string(shards));
      serial.end_round();
      sharded.end_round();
    }
    CHECK(serial.total_messages() == sharded.total_messages());
    CHECK(serial.peak_congestion() == sharded.peak_congestion());
    CHECK(serial.rounds() == sharded.rounds());
    std::int64_t lane_sum = 0;
    for (int s = 0; s < shards; ++s) lane_sum += sharded.shard_messages(s);
    CHECK(lane_sum == sharded.total_messages());  // the offline merge trail
  }
}

TEST_CASE(heavy_stars_sharded_bit_identical) {
  const WeightedGraph wg = weighted_grid(40, 37);
  const decomp::HeavyStarsResult serial = decomp::heavy_stars(wg);
  for (int threads : kThreadSweep) {
    ShardPool pool(threads);
    const decomp::HeavyStarsResult sharded = decomp::heavy_stars(wg, &pool);
    const std::string ctx = "threads=" + std::to_string(pool.threads());
    CHECK_MSG(serial.star == sharded.star, ctx);
    CHECK_MSG(serial.kept_parent == sharded.kept_parent, ctx);
    CHECK_MSG(serial.stars == sharded.stars, ctx);
    CHECK_MSG(serial.captured_weight == sharded.captured_weight, ctx);
    CHECK_MSG(serial.max_marked_depth == sharded.max_marked_depth, ctx);
    CHECK_MSG(serial.rounds == sharded.rounds, ctx);
    CHECK_MSG(serial.messages == sharded.messages, ctx);
    same_charges(serial.ledger, sharded.ledger, ctx);
  }
}

TEST_CASE(ldd_sharded_bit_identical_grid_torus) {
  struct Family {
    const char* name;
    Graph g;
  };
  const Family families[] = {{"grid", grid_graph(64, 64)},
                             {"torus", torus_graph(40, 40)}};
  for (const Family& fam : families) {
    const decomp::LocalLdd serial = decomp::ldd_minor_free_local(fam.g, 0.25);
    for (int threads : kThreadSweep) {
      ShardPool pool(threads);
      decomp::LocalLddParams p;
      p.pool = &pool;
      const decomp::LocalLdd sharded =
          decomp::ldd_minor_free_local(fam.g, 0.25, p);
      const std::string ctx = std::string(fam.name) +
                              " threads=" + std::to_string(pool.threads());
      CHECK_MSG(serial.clustering.cluster == sharded.clustering.cluster, ctx);
      CHECK_MSG(serial.cut_edges == sharded.cut_edges, ctx);
      CHECK_MSG(serial.iterations == sharded.iterations, ctx);
      CHECK_MSG(serial.merges == sharded.merges, ctx);
      same_charges(serial.ledger, sharded.ledger, ctx);
      const AuditResult sa = serial.ledger.audit(2 * fam.g.m());
      const AuditResult ha = sharded.ledger.audit(2 * fam.g.m());
      CHECK_MSG(sa.ok && ha.ok, ctx);
      CHECK_MSG(serial.ledger.total() == sharded.ledger.total(), ctx);
      CHECK_MSG(
          serial.ledger.total_messages() == sharded.ledger.total_messages(),
          ctx);
      CHECK_MSG(
          serial.ledger.peak_congestion() == sharded.ledger.peak_congestion(),
          ctx);
    }
  }
}

TEST_CASE(edt_global_chop_sharded_bit_identical) {
  // The kGlobalBfs chop's per-pass BFS-wave sweep fans one task per cluster
  // over the pool (ROADMAP item (b), first half). Clusterings, pass counts,
  // merges, every ledger charge and the audit totals must match the serial
  // reference bit for bit at every thread count.
  struct Family {
    const char* name;
    Graph g;
  };
  const Family families[] = {{"grid", grid_graph(64, 64)},
                             {"torus", torus_graph(40, 40)}};
  for (const Family& fam : families) {
    decomp::EdtParams serial_params;
    serial_params.chop = decomp::EdtChop::kGlobalBfs;
    const decomp::EdtDecomposition serial =
        decomp::build_edt_decomposition(fam.g, 0.25, serial_params);
    for (int threads : kThreadSweep) {
      ShardPool pool(threads);
      decomp::EdtParams p;
      p.chop = decomp::EdtChop::kGlobalBfs;
      p.pool = &pool;
      const decomp::EdtDecomposition sharded =
          decomp::build_edt_decomposition(fam.g, 0.25, p);
      const std::string ctx = std::string(fam.name) +
                              " threads=" + std::to_string(pool.threads());
      CHECK_MSG(serial.clustering.cluster == sharded.clustering.cluster, ctx);
      CHECK_MSG(serial.clustering.k == sharded.clustering.k, ctx);
      CHECK_MSG(serial.iterations == sharded.iterations, ctx);
      CHECK_MSG(serial.merges == sharded.merges, ctx);
      CHECK_MSG(serial.quality.cut_edges == sharded.quality.cut_edges, ctx);
      CHECK_MSG(serial.quality.max_diameter == sharded.quality.max_diameter,
                ctx);
      same_charges(serial.ledger, sharded.ledger, ctx);
      CHECK_MSG(serial.ledger.total() == sharded.ledger.total(), ctx);
      CHECK_MSG(
          serial.ledger.total_messages() == sharded.ledger.total_messages(),
          ctx);
      CHECK_MSG(
          serial.ledger.peak_congestion() == sharded.ledger.peak_congestion(),
          ctx);
      const AuditResult sa = serial.ledger.audit(2 * fam.g.m());
      const AuditResult ha = sharded.ledger.audit(2 * fam.g.m());
      CHECK_MSG(sa.ok && ha.ok, ctx);
    }
  }
}

TEST_CASE(rw_sharded_matches_serial) {
  const auto run = [](expander::RwSimEngine engine, int threads, int cycle_n,
                      double f) {
    Rng rng(17);
    const expander::ExpanderSplit sp =
        expander::expander_split(add_apex(cycle_graph(cycle_n)), rng);
    expander::RwParams p;
    p.sim_engine = engine;
    p.threads = threads;
    return expander::gather_random_walks(sp, cycle_n, f, p);
  };
  for (int cycle_n : {24, 257, 2047}) {
    for (double f : {0.25, 0.05}) {
      const expander::RwResult serial =
          run(expander::RwSimEngine::kSerial, 1, cycle_n, f);
      for (int threads : kThreadSweep) {
        const expander::RwResult sharded =
            run(expander::RwSimEngine::kSharded, threads, cycle_n, f);
        const std::string ctx = "n=" + std::to_string(cycle_n) +
                                " f=" + Table::num(f, 2) +
                                " threads=" + std::to_string(threads);
        CHECK_MSG(serial.delivered_fraction == sharded.delivered_fraction, ctx);
        CHECK_MSG(serial.rounds == sharded.rounds, ctx);
        CHECK_MSG(serial.walk_length == sharded.walk_length, ctx);
        CHECK_MSG(serial.schedule.seed == sharded.schedule.seed, ctx);
        CHECK_MSG(serial.schedule.seed_tries == sharded.schedule.seed_tries,
                  ctx);
        CHECK_MSG(serial.route == sharded.route, ctx);
        same_charges(serial.ledger, sharded.ledger, ctx);
        // Merged-meter congestion gate: the sharded engine's per-lane merge
        // trail must re-derive the serial "walk rounds" phase exactly.
        CHECK_MSG(!sharded.shard_messages.empty(), ctx);
        std::int64_t lane_sum = 0;
        for (std::int64_t m : sharded.shard_messages) lane_sum += m;
        CHECK_MSG(lane_sum == serial.ledger.entries()[0].messages, ctx);
      }
    }
  }
}

TEST_CASE(shard_pool_nested_run_inlines) {
  // A task that re-enters run() on its own pool must execute the nested
  // tasks inline (the workers are busy with the outer level, so queueing
  // would deadlock) — every task at both levels runs exactly once.
  for (int threads : kThreadSweep) {
    ShardPool pool(threads);
    std::atomic<int> outer{0}, inner{0}, nested_worker_sum{0};
    pool.run(5, [&](int /*task*/, int /*worker*/) {
      outer.fetch_add(1, std::memory_order_relaxed);
      pool.run(3, [&](int /*t*/, int w) {
        inner.fetch_add(1, std::memory_order_relaxed);
        nested_worker_sum.fetch_add(w, std::memory_order_relaxed);
      });
    });
    const std::string ctx = "threads=" + std::to_string(threads);
    CHECK_MSG(outer.load() == 5, ctx);
    CHECK_MSG(inner.load() == 15, ctx);
    // Inline execution always reports worker 0 to the nested tasks.
    CHECK_MSG(nested_worker_sum.load() == 0, ctx);
    // The pool still works after the nested episode.
    std::atomic<int> after{0};
    pool.run(4, [&](int, int) { after.fetch_add(1); });
    CHECK_MSG(after.load() == 4, ctx);
  }
}

TEST_CASE(certify_parts_pooled_bit_identical) {
  // certify_parts fans whole clusters over the pool; the report fold runs in
  // cluster order, so every field — counts, mins, the state high-water, the
  // ledger charge — must equal the serial loop at every thread count.
  for (const auto& [name, g] :
       {std::pair<std::string, Graph>{"grid", grid_graph(16, 16)},
        {"torus", torus_graph(12, 14)}}) {
    const decomp::ExpanderDecomp ed =
        decomp::expander_decomposition_minor_free(g, 0.5, {});
    std::vector<std::vector<int>> members(ed.clustering.k);
    for (int v = 0; v < g.n(); ++v) {
      members[ed.clustering.cluster[v]].push_back(v);
    }
    expander::PhiCertParams pc;
    const decomp::PartCertifyReport serial =
        decomp::certify_parts(g, members, pc);
    CHECK_MSG(serial.ok, name);
    for (int threads : kThreadSweep) {
      ShardPool pool(threads);
      const decomp::PartCertifyReport pooled =
          decomp::certify_parts(g, members, pc, &pool);
      const std::string ctx = name + " threads=" + std::to_string(threads);
      CHECK_MSG(serial.ok == pooled.ok, ctx);
      CHECK_MSG(serial.clusters_certified == pooled.clusters_certified, ctx);
      CHECK_MSG(serial.clusters_estimated == pooled.clusters_estimated, ctx);
      CHECK_MSG(serial.min_phi_lower == pooled.min_phi_lower, ctx);
      CHECK_MSG(serial.min_phi_estimate == pooled.min_phi_estimate, ctx);
      CHECK_MSG(serial.max_certified_cluster == pooled.max_certified_cluster,
                ctx);
      CHECK_MSG(serial.state_bytes_peak == pooled.state_bytes_peak, ctx);
      same_charges(serial.ledger, pooled.ledger, ctx);
    }
  }
}

TEST_CASE(apps_seam_repair_sharded_bit_identical) {
  // The apps' seam-repair sweeps (MIS conflict drops, VC patches, the maxcut
  // cluster-flip gain scan) route their O(m) scans through the pool; the
  // collect-then-replay form is proven order-equivalent to the serial
  // adjacency sweep, so solutions and charges must match bit for bit.
  std::int64_t seam_messages = 0;  // non-vacuity: some sweep must act
  for (const auto& [name, g] :
       {std::pair<std::string, Graph>{"grid", grid_graph(8, 9)},
        {"cycle", cycle_graph(601)},
        {"torus", torus_graph(6, 8)}}) {
    const apps::SetSolution mis_serial =
        apps::approx_max_independent_set(g, 0.3, 3);
    const apps::SetSolution vc_serial = apps::approx_min_vertex_cover(g, 0.3, 3);
    const apps::CutSolution cut_serial = apps::approx_max_cut(g, 0.3);
    for (const congest::Runtime* rt :
         {&mis_serial.stats.runtime, &vc_serial.stats.runtime}) {
      for (const RoundCharge& e : rt->entries()) {
        if (e.phase.find("seam repair") != std::string::npos) {
          seam_messages += e.messages;
        }
      }
    }
    for (int threads : kThreadSweep) {
      ShardPool pool(threads);
      const std::string ctx = name + " threads=" + std::to_string(threads);
      const apps::SetSolution mis =
          apps::approx_max_independent_set(g, 0.3, 3, &pool);
      CHECK_MSG(mis.vertices == mis_serial.vertices, ctx + ": mis set");
      same_charges(mis_serial.stats.runtime, mis.stats.runtime, ctx + ": mis");
      const apps::SetSolution vc =
          apps::approx_min_vertex_cover(g, 0.3, 3, &pool);
      CHECK_MSG(vc.vertices == vc_serial.vertices, ctx + ": vc set");
      same_charges(vc_serial.stats.runtime, vc.stats.runtime, ctx + ": vc");
      const apps::CutSolution cut = apps::approx_max_cut(g, 0.3, 24, &pool);
      CHECK_MSG(cut.value == cut_serial.value, ctx + ": cut value");
      CHECK_MSG(cut.side == cut_serial.side, ctx + ": cut sides");
      same_charges(cut_serial.stats.runtime, cut.stats.runtime, ctx + ": cut");
    }
  }
  CHECK_MSG(seam_messages > 0, "no graph exercised the seam sweeps");
}

TEST_CASE(apps_cluster_ladder_sharded_bit_identical) {
  // The per-cluster solver ladder (apps/treewidth.hpp tiers) fans over the
  // pool: clusters are vertex-disjoint, every tier is deterministic, and the
  // fold runs in cluster order — so solutions, round charges, AND the
  // SolverStats tier audit trail must match the serial sweep bit for bit at
  // every thread count. solve_ms is wall time and deliberately excluded
  // from the contract.
  const auto same_tiers = [](const congest::SolverStats& a,
                             const congest::SolverStats& b,
                             const std::string& ctx) {
    CHECK_MSG(a.tier_forest == b.tier_forest && a.tier_tw_dp == b.tier_tw_dp &&
                  a.tier_bb == b.tier_bb && a.tier_greedy == b.tier_greedy,
              ctx + ": tier counts diverged");
    CHECK_MSG(a.max_width_dp == b.max_width_dp, ctx + ": max_width_dp");
    CHECK_MSG(a.bb_runs == b.bb_runs && a.bb_nodes == b.bb_nodes &&
                  a.bb_exact_runs == b.bb_exact_runs,
              ctx + ": search effort diverged");
  };
  Rng rng(97);
  std::int64_t tw_solves = 0;  // non-vacuity: the DP tier must fire somewhere
  for (const auto& [name, g] :
       {std::pair<std::string, Graph>{"outerplanar",
                                      random_maximal_outerplanar(260, rng)},
        {"grid", grid_graph(13, 11)},
        {"cactus", random_cactus(300, rng)}}) {
    const apps::MdsSolution mds_serial =
        apps::approx_min_dominating_set(g, 0.25, 2);
    const apps::SetSolution mis_serial =
        apps::approx_max_independent_set(g, 0.25, 2);
    const apps::MatchingSolution mm_serial =
        apps::approx_max_matching(g, 0.25, 2);
    const apps::CutSolution cut_serial = apps::approx_max_cut(g, 0.25);
    tw_solves += mds_serial.stats.tier_tw_dp + mis_serial.stats.tier_tw_dp +
                 cut_serial.stats.tier_tw_dp;
    for (int threads : kThreadSweep) {
      ShardPool pool(threads);
      const std::string ctx = name + " threads=" + std::to_string(threads);
      const apps::MdsSolution mds =
          apps::approx_min_dominating_set(g, 0.25, 2, &pool);
      CHECK_MSG(mds.vertices == mds_serial.vertices, ctx + ": mds set");
      same_charges(mds_serial.stats.runtime, mds.stats.runtime, ctx + ": mds");
      same_tiers(mds_serial.stats, mds.stats, ctx + ": mds");
      const apps::SetSolution mis =
          apps::approx_max_independent_set(g, 0.25, 2, &pool);
      CHECK_MSG(mis.vertices == mis_serial.vertices, ctx + ": mis set");
      same_tiers(mis_serial.stats, mis.stats, ctx + ": mis");
      const apps::MatchingSolution mm =
          apps::approx_max_matching(g, 0.25, 2, &pool);
      CHECK_MSG(mm.edges == mm_serial.edges, ctx + ": matching edges");
      same_charges(mm_serial.stats.runtime, mm.stats.runtime, ctx + ": mm");
      const apps::CutSolution cut = apps::approx_max_cut(g, 0.25, 24, &pool);
      CHECK_MSG(cut.value == cut_serial.value, ctx + ": cut value");
      CHECK_MSG(cut.side == cut_serial.side, ctx + ": cut sides");
      same_tiers(cut_serial.stats, cut.stats, ctx + ": cut");
    }
  }
  CHECK_MSG(tw_solves > 0, "no family reached the treewidth-DP tier");
}
