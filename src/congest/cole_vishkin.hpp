// Cole–Vishkin deterministic 3-coloring of rooted forests — the CONGEST
// symmetry-breaking primitive the Section-4 heavy-stars contraction charges
// its O(log* n) rounds through.
//
// Input is a parent array (parent[v] < 0 or parent[v] == v marks a root);
// the forest edges are (v, parent[v]). Output colors are in {0, 1, 2} and
// proper along every parent edge. `rounds` counts simulated CONGEST rounds:
// one per bit-shrinking Cole–Vishkin iteration (O(log* n) of them — each
// iteration shrinks a K-color palette to 2*ceil(log2 K)) plus the six
// constant rounds of the three shift-down + recolor phases that take the
// palette from 6 colors to 3.
//
// Message accounting is measured, not symbolic: every round each non-root
// vertex reads its parent's current color, so the round costs exactly one
// O(log n)-bit message per parent edge — `messages` accumulates
// forest_edges per round and `max_congestion` is 1 whenever the forest has
// an edge at all (no directed edge ever carries two colors in one round).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace mfd::congest {

struct ColeVishkinResult {
  std::vector<int> color;  // color[v] in {0, 1, 2}, proper along parent edges
  int rounds = 0;          // simulated CONGEST rounds, O(log* n)
  std::int64_t messages = 0;        // measured: one per parent edge per round
  std::int64_t max_congestion = 0;  // 1 whenever the forest has any edge
};

/// 3-color the rooted forest given by `parent` over vertex set [0, n).
inline ColeVishkinResult cole_vishkin_3color_forest(
    int n, const std::vector<int>& parent) {
  ColeVishkinResult out;
  std::vector<std::uint32_t> c(n), next(n);
  for (int v = 0; v < n; ++v) c[v] = static_cast<std::uint32_t>(v);
  const auto is_root = [&parent](int v) {
    return parent[v] < 0 || parent[v] == v;
  };
  std::int64_t forest_edges = 0;
  for (int v = 0; v < n; ++v) forest_edges += is_root(v) ? 0 : 1;

  // Bit-shrinking iterations: each vertex finds the lowest bit where its
  // color differs from its parent's (roots compare against their own color
  // with bit 0 flipped) and recolors to 2*index + own bit. Distinct initial
  // ids keep the coloring proper along parent edges throughout.
  bool big = n > 6;
  while (big) {
    for (int v = 0; v < n; ++v) {
      const std::uint32_t pc = is_root(v) ? (c[v] ^ 1u)
                                          : c[static_cast<std::size_t>(parent[v])];
      const std::uint32_t diff = c[v] ^ pc;
      int i = 0;
      while (((diff >> i) & 1u) == 0) ++i;
      next[v] = static_cast<std::uint32_t>(2 * i) + ((c[v] >> i) & 1u);
    }
    c.swap(next);
    ++out.rounds;
    out.messages += forest_edges;
    big = false;
    for (int v = 0; v < n; ++v) {
      if (c[v] >= 6) {
        big = true;
        break;
      }
    }
  }

  // Palette 6 -> 3: for each dropped color, one shift-down round (everyone
  // adopts its parent's color, so all siblings agree) and one recolor round
  // (the dropped class picks the smallest free color; only parent and the
  // now-unanimous child color are forbidden).
  for (std::uint32_t drop = 5; drop >= 3; --drop) {
    for (int v = 0; v < n; ++v) {
      if (is_root(v)) {
        next[v] = c[v] == 0 ? 1 : 0;  // anything differing from old color
      } else {
        next[v] = c[static_cast<std::size_t>(parent[v])];
      }
    }
    // After shift-down, v's children all wear v's pre-shift color c[v].
    for (int v = 0; v < n; ++v) {
      if (next[v] != drop) continue;
      const std::uint32_t forbid_child = c[v];
      const std::uint32_t forbid_parent =
          is_root(v) ? forbid_child : next[static_cast<std::size_t>(parent[v])];
      std::uint32_t pick = 0;
      while (pick == forbid_child || pick == forbid_parent) ++pick;
      next[v] = pick;  // < 3: at most two values are forbidden
    }
    c.swap(next);
    out.rounds += 2;
    out.messages += 2 * forest_edges;
  }
  if (out.messages > 0) out.max_congestion = 1;

  out.color.assign(n, 0);
  for (int v = 0; v < n; ++v) out.color[v] = static_cast<int>(c[v]);
  return out;
}

/// Graph-flavored entry point (the forest must be a subgraph of g; only
/// g.n() is consulted — the algorithm communicates along parent edges only).
inline ColeVishkinResult cole_vishkin_3color(const Graph& g,
                                             const std::vector<int>& parent) {
  return cole_vishkin_3color_forest(g.n(), parent);
}

}  // namespace mfd::congest
