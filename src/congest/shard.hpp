// The sharded per-round engine: vertex work inside a simulated CONGEST round
// is embarrassingly parallel (rounds are synchronous barriers), so the hot
// simulation paths — heavy-stars pointing, the LDD merge/BFS sweeps, the
// rw_routing walk rounds — partition their vertices across a thread pool and
// meet at a barrier per round.
//
// Three pieces, shared by every sharded engine in the tree:
//
//   * ShardPlan — the contiguous even partition of [0, n). Contiguity is
//     load-bearing: CSR adjacency and MessageMeter slot ids are both laid
//     out in vertex order, so a contiguous vertex slice owns a contiguous
//     slot slice, and per-task outputs concatenated in task order reproduce
//     the serial iteration order exactly.
//   * ShardPool — a persistent pool of worker threads. run(tasks, fn) calls
//     fn(task, worker) for every task index, claims tasks dynamically (so
//     skewed cluster sizes still balance), and barriers before returning.
//     With one thread the loop runs inline on the caller — the serial
//     reference path and the sharded path share one code body.
//   * ShardedMeter — congest::MessageMeter split into per-shard lanes.
//     Each lane owns a contiguous slot slice and is only ever written by its
//     owning shard, so metering is race-free without atomics; merging the
//     lanes (totals summed, peaks maxed) reproduces the serial meter's
//     totals BIT-IDENTICALLY, which is what lets Runtime::audit() keep the
//     PR-5 invariants (conservation, messages <= rounds * edges * peak,
//     charge order) exact under sharding.
//
// Determinism contract: every sharded engine must produce results equal to
// its serial reference for EVERY shard count. The engines only parallelize
// loops whose per-vertex effects are independent (pointing, relabeling),
// whose reductions are integer sums/maxes (associative and commutative, so
// task grouping cannot change them), or whose cross-shard traffic is
// exchanged through double-buffered outboxes drained in shard order.
// tests/test_shard.cpp sweeps shard counts {1, 2, 7, hardware} and asserts
// bit-identical outputs against the serial engines.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "congest/runtime.hpp"

namespace mfd::congest {

/// Contiguous even partition of [0, n) into `shards` slices. Slice s is
/// [begin(s), end(s)); sizes differ by at most one.
struct ShardPlan {
  int n = 0;
  int shards = 1;

  ShardPlan() = default;
  ShardPlan(int n_, int shards_)
      : n(std::max(n_, 0)), shards(std::max(shards_, 1)) {}

  int begin(int s) const {
    return static_cast<int>(static_cast<std::int64_t>(n) * s / shards);
  }
  int end(int s) const { return begin(s + 1); }
};

/// Persistent worker pool. Construct once per engine run (thread startup is
/// not free); run() executes fn(task, worker) for task in [0, tasks) with
/// dynamic task claiming, worker in [0, threads()), and returns only after
/// every task finished (the per-round barrier). threads() == 1 executes
/// inline with no synchronization at all — the serial reference path.
class ShardPool {
 public:
  /// threads <= 0 asks for std::thread::hardware_concurrency().
  explicit ShardPool(int threads = 0) {
    if (threads <= 0) {
      threads = static_cast<int>(std::thread::hardware_concurrency());
    }
    threads_ = std::max(1, threads);
    workers_.reserve(static_cast<std::size_t>(threads_ - 1));
    for (int w = 1; w < threads_; ++w) {
      workers_.emplace_back([this, w] { worker_loop(w); });
    }
  }

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  ~ShardPool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  int threads() const { return threads_; }

  /// Execute fn(task, worker) for every task in [0, tasks); blocks until all
  /// tasks are done. The calling thread participates as worker 0. A
  /// reentrant call (fn itself calling run on the same pool) executes its
  /// tasks inline on the calling thread: a nested fan-out could never claim
  /// the pool's workers — they are busy running the outer tasks — so
  /// serializing it is both deadlock-free and the fastest correct option.
  /// This is what lets certify_parts fan clusters over the pool while each
  /// cluster's game is free to pass the same pool to its replay stage.
  void run(int tasks, const std::function<void(int task, int worker)>& fn) {
    if (tasks <= 0) return;
    if (threads_ == 1 || in_run_.load(std::memory_order_relaxed)) {
      for (int t = 0; t < tasks; ++t) fn(t, 0);
      return;
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      in_run_.store(true, std::memory_order_relaxed);
      fn_ = &fn;
      tasks_ = tasks;
      next_task_.store(0, std::memory_order_relaxed);
      idle_ = 0;
      ++generation_;
    }
    cv_work_.notify_all();
    drain(0);
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [this] { return idle_ == threads_ - 1; });
    fn_ = nullptr;
    in_run_.store(false, std::memory_order_relaxed);
  }

 private:
  void drain(int worker) {
    for (;;) {
      const int t = next_task_.fetch_add(1, std::memory_order_relaxed);
      if (t >= tasks_) break;
      (*fn_)(t, worker);
    }
  }

  void worker_loop(int worker) {
    std::int64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_work_.wait(lk, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
      }
      drain(worker);
      {
        std::lock_guard<std::mutex> lk(mu_);
        ++idle_;
      }
      cv_done_.notify_one();
    }
  }

  int threads_ = 1;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_, cv_done_;
  const std::function<void(int, int)>* fn_ = nullptr;
  int tasks_ = 0;
  std::atomic<bool> in_run_{false};
  std::atomic<int> next_task_{0};
  int idle_ = 0;
  std::int64_t generation_ = 0;
  bool stop_ = false;
};

/// congest::MessageMeter split into per-shard lanes. Lane s owns the global
/// slot slice [slot_begin[s], slot_begin[s+1]) and must be the ONLY shard
/// that calls send(s, ...) for slots in that slice — engines shard traffic
/// by source vertex, and slot ids are assigned in source-vertex order, so
/// ownership is automatic. Lanes are cache-line padded; no atomics.
///
/// Merge semantics (the serial-equivalence contract): a round's global peak
/// is the max over lanes of the lane's open-round peak, because every slot
/// lives in exactly one lane; total messages is the sum over lanes; the
/// whole-run peak is the max over rounds of the per-round global peaks.
/// These merged views equal, bit for bit, what one serial MessageMeter fed
/// the same traffic would report — Runtime charges read the merged values,
/// so Runtime::audit() sees sharding-invariant numbers.
class ShardedMeter {
 public:
  ShardedMeter() = default;

  /// slot_begin has size shards+1, ascending; lane s covers global slots
  /// [slot_begin[s], slot_begin[s+1]).
  explicit ShardedMeter(std::vector<std::int64_t> slot_begin)
      : slot_begin_(std::move(slot_begin)) {
    const int shards =
        std::max(1, static_cast<int>(slot_begin_.size()) - 1);
    lanes_.reserve(static_cast<std::size_t>(shards));
    for (int s = 0; s < shards; ++s) {
      const std::int64_t lo = slot_index(s);
      const std::int64_t hi = slot_index(s + 1);
      lanes_.emplace_back(std::max<std::int64_t>(hi - lo, 0), lo);
    }
  }

  int shards() const { return static_cast<int>(lanes_.size()); }

  /// Record `count` messages on global slot `s` from its owning shard.
  /// Same contract as MessageMeter::send (count <= 0 is a no-op query).
  std::int64_t send(int shard, std::int64_t s, std::int64_t count = 1) {
    Lane& lane = lanes_[static_cast<std::size_t>(shard)];
    return lane.meter.send(s - lane.offset, count);
  }

  /// Peak per-slot load of the open round, merged over lanes. Only valid
  /// between barriers (no shard may be mid-send).
  std::int64_t round_peak() const {
    std::int64_t p = 0;
    for (const Lane& lane : lanes_) p = std::max(p, lane.meter.round_peak());
    return p;
  }

  /// Close the open round on every lane (call from the coordinator, at the
  /// barrier). Advances the merged round count by one.
  void end_round() {
    for (Lane& lane : lanes_) lane.meter.end_round();
    ++rounds_;
  }

  std::int64_t rounds() const { return rounds_; }

  /// Merged totals — equal to a serial MessageMeter fed the same traffic.
  std::int64_t total_messages() const {
    std::int64_t t = 0;
    for (const Lane& lane : lanes_) t += lane.meter.total_messages();
    return t;
  }
  std::int64_t peak_congestion() const {
    std::int64_t p = 0;
    for (const Lane& lane : lanes_) {
      p = std::max(p, lane.meter.peak_congestion());
    }
    return p;
  }

  /// Per-lane message totals — the merge trail bench_scale publishes so
  /// scripts/check_bench_json.py can re-derive the merged total offline.
  std::int64_t shard_messages(int s) const {
    return lanes_[static_cast<std::size_t>(s)].meter.total_messages();
  }

 private:
  std::int64_t slot_index(int i) const {
    if (slot_begin_.empty()) return 0;
    i = std::min(i, static_cast<int>(slot_begin_.size()) - 1);
    return slot_begin_[static_cast<std::size_t>(i)];
  }

  struct alignas(64) Lane {
    MessageMeter meter;
    std::int64_t offset = 0;
    Lane(std::int64_t slots, std::int64_t offset_)
        : meter(slots), offset(offset_) {}
  };

  std::vector<std::int64_t> slot_begin_;
  std::vector<Lane> lanes_;
  std::int64_t rounds_ = 0;
};

/// Convenience: run fn(lo, hi, task) over an even contiguous partition of
/// [0, n) — the shape of every per-vertex sharded loop. Per-task outputs
/// indexed by `task` and folded in task order reproduce serial order.
inline void parallel_ranges(ShardPool& pool, int n, int tasks,
                            const std::function<void(int, int, int)>& fn) {
  tasks = std::max(1, tasks);
  const ShardPlan plan(n, tasks);
  pool.run(tasks, [&](int t, int /*worker*/) {
    const int lo = plan.begin(t);
    const int hi = plan.end(t);
    if (lo < hi) fn(lo, hi, t);
  });
}

/// Read-only fan-out over [0, n) in fixed-size chunks — the query-serving
/// shape: chunks are claimed dynamically (so skewed per-item costs still
/// balance across workers) and fn(lo, hi, worker) must write only state
/// derived from its own [lo, hi) slice. With disjoint output slices the hot
/// path needs no locks or atomics beyond the pool's task counter, and the
/// result is independent of the thread count by construction (every item is
/// processed exactly once, in isolation).
inline void parallel_chunks(ShardPool& pool, std::int64_t n, std::int64_t grain,
                            const std::function<void(std::int64_t, std::int64_t,
                                                     int)>& fn) {
  if (n <= 0) return;
  grain = std::max<std::int64_t>(grain, 1);
  const std::int64_t chunks = (n + grain - 1) / grain;
  if (pool.threads() == 1 || chunks == 1) {
    fn(0, n, 0);
    return;
  }
  pool.run(static_cast<int>(chunks), [&](int c, int worker) {
    const std::int64_t lo = static_cast<std::int64_t>(c) * grain;
    const std::int64_t hi = std::min(lo + grain, n);
    fn(lo, hi, worker);
  });
}

}  // namespace mfd::congest
