// The shared CONGEST round-accounting substrate every layer charges through.
//
// Historically each layer kept its own ad-hoc accounting (`decomp::Ledger`
// phase strings, per-round loops in expander/, tracked counters in
// cole_vishkin); Runtime unifies them: one append-only sequence of
// phase-attributed charges, each carrying the simulated CONGEST rounds a
// distributed implementation would pay plus optional per-phase message and
// peak-congestion observations for the phases whose simulation measures them
// (the expander/ gathers count token moves and per-round directed-edge load).
//
// Units contract (the one every consumer relies on): `rounds` is always in
// simulated CONGEST rounds — never wall clock and never BFS hops. Phases
// that sweep to depth d charge d rounds; symbolic phases (e.g. the
// "log* n / eps preprocessing" of Theorem 1.1) charge their theory value.
// `messages` counts O(log n)-bit messages sent during the phase (0 when the
// phase does not measure them); `max_congestion` is the peak number of
// messages any directed edge carried in one round of the phase (0 when
// unmeasured). total() sums rounds over phases; charges preserve order so a
// consumer (benches, apps/) can attribute rounds per phase.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mfd::congest {

/// Iterated-logarithm helper: number of log2 applications taking x to <= 1.
/// The symmetry-breaking budget of Cole–Vishkin-style phases (Theorem 6.1's
/// Omega(log* n) lower bound is stated in exactly these units).
inline int log_star(double x) {
  int r = 0;
  while (x > 1.0) {
    x = std::log2(x);
    ++r;
  }
  return r;
}

/// ceil(log2(x)) with a floor of 1 — the bit width of an id domain of size x.
inline int ceil_log2(std::int64_t x) {
  int bits = 0;
  while ((std::int64_t{1} << bits) < x) ++bits;
  return std::max(bits, 1);
}

/// One phase-attributed charge (see the header comment for units).
struct RoundCharge {
  std::string phase;
  std::int64_t rounds = 0;
  std::int64_t messages = 0;        // 0 when the phase does not measure them
  std::int64_t max_congestion = 0;  // peak per-edge per-round load, 0 unmeasured
};

/// The substrate itself: append-only phase charges. Replaces decomp::Ledger
/// (which is now an alias of this class); everything in decomp/, expander/
/// and apps/ charges simulated rounds through one of these.
class Runtime {
 public:
  void charge(const std::string& phase, std::int64_t rounds,
              std::int64_t messages = 0, std::int64_t max_congestion = 0) {
    entries_.push_back({phase, rounds, messages, max_congestion});
  }

  /// Fold another runtime's charges into this one, phase names prefixed —
  /// how a composed algorithm (EDT inside approx-MIS, split inside the
  /// expander-decomp pipeline) attributes its sub-phases.
  void absorb(const Runtime& sub, const std::string& prefix = "") {
    for (const RoundCharge& e : sub.entries_) {
      entries_.push_back(
          {prefix.empty() ? e.phase : prefix + e.phase, e.rounds, e.messages,
           e.max_congestion});
    }
  }

  /// Total simulated CONGEST rounds over all phases.
  std::int64_t total() const {
    std::int64_t t = 0;
    for (const RoundCharge& e : entries_) t += e.rounds;
    return t;
  }

  /// Total measured messages (phases that do not measure contribute 0).
  std::int64_t total_messages() const {
    std::int64_t t = 0;
    for (const RoundCharge& e : entries_) t += e.messages;
    return t;
  }

  /// Peak per-edge per-round congestion observed by any phase.
  std::int64_t peak_congestion() const {
    std::int64_t c = 0;
    for (const RoundCharge& e : entries_) c = std::max(c, e.max_congestion);
    return c;
  }

  const std::vector<RoundCharge>& entries() const { return entries_; }

 private:
  std::vector<RoundCharge> entries_;
};

/// What an apps/-layer solver reports next to its solution: the headline
/// round count, the decomposition's routing term T, the cluster count it
/// programmed against, and the full phase breakdown. total_rounds must equal
/// runtime.total() — finish() pins that.
struct SolverStats {
  std::int64_t total_rounds = 0;  // == runtime.total() after finish()
  std::int64_t T = 0;             // routing-structure term of the decomposition
  std::int64_t clusters = 0;      // clusters the solver solved locally
  Runtime runtime;                // phase-attributed breakdown

  void finish() { total_rounds = runtime.total(); }
};

}  // namespace mfd::congest
