// The shared CONGEST accounting substrate every layer charges through — an
// instrumented engine, not a passive log.
//
// Historically each layer kept its own ad-hoc accounting (`decomp::Ledger`
// phase strings, per-round loops in expander/, tracked counters in
// cole_vishkin); Runtime unifies them: one append-only sequence of
// phase-attributed charges, each carrying the simulated CONGEST rounds a
// distributed implementation would pay plus the per-phase message count and
// peak per-edge congestion. Three instruments drive it:
//
//   * ChargeScope — RAII phase composition. Opening a scope on a Runtime
//     gives the callee a fresh sub-runtime; closing it (or leaving the C++
//     scope) absorbs every sub-charge into the parent with the scope's
//     phase name as prefix ("edt: heavy-stars iter 3"). This is the ONE
//     composition idiom in the tree — decomp/, expander/ and apps/ all
//     attribute sub-phases this way.
//   * MessageMeter — per-directed-edge traffic meter a simulating phase
//     drives as it runs: send(slot) per message, end_round() per simulated
//     round. The phase reads its total messages and peak per-edge-per-round
//     congestion into the RoundCharge it charges.
//   * audit() — invariant checker over the finished charge sequence
//     (conservation, bandwidth sanity, phase-order preservation); tests and
//     benches run it so a phase that mis-meters fails loudly.
//
// Units contract (the one every consumer relies on): `rounds` is always in
// simulated CONGEST rounds — never wall clock and never BFS hops. Phases
// that sweep to depth d charge d rounds; symbolic phases (e.g. the
// "log* n / eps preprocessing" of Theorem 1.1) charge their theory value.
// `messages` counts O(log n)-bit messages crossing a directed edge in one
// round; `max_congestion` is the peak number of messages any directed edge
// carried in one round of the phase. Phases are either *measured* (the
// simulation counted every send — MessageMeter or explicit counters) or
// *envelope-charged* (symbolic phases billed at the CONGEST bandwidth
// ceiling of one message per directed edge per round via charge_envelope);
// docs/ARCHITECTURE.md tabulates which phase is which. total() sums rounds
// over phases; charges preserve order so a consumer (benches, apps/) can
// attribute rounds per phase.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mfd::congest {

/// Iterated-logarithm helper: number of log2 applications taking x to <= 1.
/// The symmetry-breaking budget of Cole–Vishkin-style phases (Theorem 6.1's
/// Omega(log* n) lower bound is stated in exactly these units).
/// Guarded: non-positive and non-finite inputs (NaN, ±inf) return 0 — they
/// are caller bugs, and the guard keeps the loop from spinning on +inf.
inline int log_star(double x) {
  if (!std::isfinite(x)) return 0;
  int r = 0;
  while (x > 1.0) {
    x = std::log2(x);
    ++r;
  }
  return r;
}

/// ceil(log2(x)) with a floor of 1 — the bit width of an id domain of size x.
/// Guarded: non-positive and degenerate domains (x <= 2) clamp to 1 bit, and
/// the shift never reaches 63, so x up to INT64_MAX is overflow-safe
/// (everything past 2^62 reports 62 bits).
inline int ceil_log2(std::int64_t x) {
  if (x <= 2) return 1;
  int bits = 1;
  while (bits < 62 && (std::int64_t{1} << bits) < x) ++bits;
  return bits;
}

/// One phase-attributed charge (see the header comment for units). `seq` is
/// the global charge order stamped by the owning Runtime; audit() verifies
/// it stays strictly increasing (phase-order preservation).
struct RoundCharge {
  std::string phase;
  std::int64_t rounds = 0;
  std::int64_t messages = 0;        // O(log n)-bit messages sent in the phase
  std::int64_t max_congestion = 0;  // peak per-directed-edge per-round load
  std::int64_t seq = 0;
};

/// Per-directed-edge message meter. A simulating phase constructs one with
/// its directed-edge (slot) count, calls send(slot) for every O(log n)-bit
/// message it simulates and end_round() at each simulated round boundary,
/// then reads total_messages()/peak_congestion() into its phase charge
/// (expander/rw_routing drives one through both sim engines). send()
/// returns the slot's load within the open round so engines that price
/// queueing can react to it. Phases whose per-round traffic is uniform and
/// known in closed form charge through Runtime::charge_envelope instead of
/// a slot loop.
class MessageMeter {
 public:
  MessageMeter() = default;
  explicit MessageMeter(std::int64_t directed_slots) {
    load_.assign(static_cast<std::size_t>(std::max<std::int64_t>(directed_slots, 0)), 0);
  }

  /// Record `count` messages crossing directed slot `s` in the open round;
  /// returns the slot's load so far this round.
  ///
  /// Contract for non-positive counts: metering is monotone, so count <= 0
  /// is a no-op QUERY — it records nothing, does not mark the slot as
  /// touched (touched_ means "nonzero load this round"; the sharded merge
  /// in congest/shard.hpp and per-round cleanup both rely on that being
  /// literally true), and negative counts never un-send traffic. The return
  /// value is still the slot's load so far this round, so send(s, 0) reads
  /// a slot's open-round load without perturbing the meter.
  std::int64_t send(std::int64_t s, std::int64_t count = 1) {
    const bool tracked = s >= 0 && s < static_cast<std::int64_t>(load_.size());
    if (count <= 0) {
      return tracked ? load_[static_cast<std::size_t>(s)] : 0;
    }
    messages_ += count;
    std::int64_t slot_load = count;
    if (tracked) {
      if (load_[static_cast<std::size_t>(s)] == 0) touched_.push_back(s);
      slot_load = load_[static_cast<std::size_t>(s)] += count;
    }
    open_peak_ = std::max(open_peak_, slot_load);
    peak_ = std::max(peak_, slot_load);
    return slot_load;
  }

  /// Peak per-slot load of the open (not yet ended) round.
  std::int64_t round_peak() const { return open_peak_; }

  /// Close the open simulated round: one more round elapsed, loads reset.
  void end_round() {
    ++rounds_;
    for (std::int64_t s : touched_) load_[static_cast<std::size_t>(s)] = 0;
    touched_.clear();
    open_peak_ = 0;
  }

  std::int64_t rounds() const { return rounds_; }
  std::int64_t total_messages() const { return messages_; }
  std::int64_t peak_congestion() const { return peak_; }

 private:
  std::vector<std::int64_t> load_;     // per-slot load of the open round
  std::vector<std::int64_t> touched_;  // slots with nonzero load this round
  std::int64_t rounds_ = 0;
  std::int64_t messages_ = 0;
  std::int64_t peak_ = 0;
  std::int64_t open_peak_ = 0;
};

/// Peak-congestion floor for a phase whose simulation counted `messages`
/// in bulk (sequentially, not per round): the smallest peak any schedule of
/// `rounds` rounds over `directed_edges` edges could have had. Phases that
/// cannot attribute their traffic per round charge this — it keeps the
/// bandwidth identity messages <= rounds * edges * congestion tight instead
/// of guessing 1.
inline std::int64_t congestion_floor(std::int64_t messages, std::int64_t rounds,
                                     std::int64_t directed_edges) {
  if (messages <= 0) return 0;
  const std::int64_t capacity = std::max<std::int64_t>(rounds, 1) *
                                std::max<std::int64_t>(directed_edges, 1);
  return std::max<std::int64_t>(1, (messages + capacity - 1) / capacity);
}

/// Verdict of Runtime::audit(). `ok` is the headline; `violation` names the
/// first broken invariant (empty when ok) so tests can print it.
struct AuditResult {
  bool ok = true;
  std::string violation;
};

/// The substrate itself: append-only phase charges. Replaces decomp::Ledger
/// (which is now an alias of this class); everything in decomp/, expander/
/// and apps/ charges simulated rounds through one of these.
class Runtime {
 public:
  void charge(const std::string& phase, std::int64_t rounds,
              std::int64_t messages = 0, std::int64_t max_congestion = 0) {
    entries_.push_back({phase, rounds, messages, max_congestion, next_seq_++});
  }

  /// Envelope charge for a symbolic phase: bill the CONGEST bandwidth
  /// ceiling of one O(log n)-bit message per directed edge per round. Keeps
  /// symbolic phases (preprocessing, +T routing setup) non-degenerate in the
  /// bandwidth audit without pretending they were simulated.
  void charge_envelope(const std::string& phase, std::int64_t rounds,
                       std::int64_t directed_edges) {
    const bool live = rounds > 0 && directed_edges > 0;
    charge(phase, rounds, live ? rounds * directed_edges : 0, live ? 1 : 0);
  }

  /// Fold another runtime's charges into this one, phase names prefixed —
  /// how a composed algorithm (EDT inside approx-MIS, split inside the
  /// expander-decomp pipeline) attributes its sub-phases. Prefer ChargeScope,
  /// which does this automatically on scope exit.
  void absorb(const Runtime& sub, const std::string& prefix = "") {
    for (const RoundCharge& e : sub.entries_) {
      entries_.push_back({prefix.empty() ? e.phase : prefix + e.phase, e.rounds,
                          e.messages, e.max_congestion, next_seq_++});
    }
  }

  /// Total simulated CONGEST rounds over all phases.
  std::int64_t total() const {
    std::int64_t t = 0;
    for (const RoundCharge& e : entries_) t += e.rounds;
    return t;
  }

  /// Total messages over all phases (measured + envelope).
  std::int64_t total_messages() const {
    std::int64_t t = 0;
    for (const RoundCharge& e : entries_) t += e.messages;
    return t;
  }

  /// Peak per-edge per-round congestion observed by any phase.
  std::int64_t peak_congestion() const {
    std::int64_t c = 0;
    for (const RoundCharge& e : entries_) c = std::max(c, e.max_congestion);
    return c;
  }

  /// Invariant checker over the finished charge sequence:
  ///   * conservation — rounds, messages and congestion are never negative,
  ///     and a phase that sent messages took at least one round on at least
  ///     one edge (messages > 0 implies rounds >= 1 and congestion >= 1);
  ///   * peak sanity — the per-round peak of one edge cannot exceed the
  ///     phase's total messages, and a phase with no messages has no
  ///     congestion to report;
  ///   * bandwidth sanity (when the caller passes its directed-edge count) —
  ///     messages <= rounds * directed_edges * max_congestion, i.e.
  ///     max_congestion * rounds >= messages / directed_edges;
  ///   * phase-order preservation — charge sequence numbers strictly
  ///     increase, so no consumer reordered or spliced the log.
  /// Pass directed_edges = 2 * m of the LARGEST graph the runtime's phases
  /// ran on (sub-phases run on subgraphs, which only slackens the bound).
  AuditResult audit(std::int64_t directed_edges = 0) const {
    AuditResult r;
    std::int64_t prev_seq = -1;
    for (const RoundCharge& e : entries_) {
      const auto fail = [&r, &e](const std::string& why) {
        r.ok = false;
        r.violation = "phase '" + e.phase + "': " + why;
      };
      if (e.rounds < 0 || e.messages < 0 || e.max_congestion < 0) {
        fail("negative rounds/messages/congestion");
        return r;
      }
      if (e.messages > 0 && (e.rounds < 1 || e.max_congestion < 1)) {
        fail("messages without rounds or congestion");
        return r;
      }
      if (e.messages == 0 && e.max_congestion > 0) {
        fail("congestion without messages");
        return r;
      }
      if (e.max_congestion > e.messages) {
        fail("per-edge peak exceeds total messages");
        return r;
      }
      if (directed_edges > 0 && e.messages > 0 &&
          e.messages > e.rounds * directed_edges * e.max_congestion) {
        fail("messages exceed rounds * edges * peak congestion");
        return r;
      }
      if (e.seq <= prev_seq) {
        fail("charge order not preserved");
        return r;
      }
      prev_seq = e.seq;
    }
    return r;
  }

  const std::vector<RoundCharge>& entries() const { return entries_; }

 private:
  std::vector<RoundCharge> entries_;
  std::int64_t next_seq_ = 0;
};

/// RAII phase scope: charges made through the scope (or absorbed into its
/// sub-runtime) land in the parent prefixed with "<phase>: " when the scope
/// closes — destructor or explicit close(), whichever comes first. Replaces
/// hand-written `parent.absorb(sub, "phase: ")` calls so there is exactly
/// one composition idiom in the tree.
class ChargeScope {
 public:
  ChargeScope(Runtime& parent, std::string phase)
      : parent_(&parent), prefix_(std::move(phase) + ": ") {}
  ChargeScope(const ChargeScope&) = delete;
  ChargeScope& operator=(const ChargeScope&) = delete;
  ~ChargeScope() { close(); }

  /// The scope's sub-runtime — hand it to a callee that expects a Runtime.
  Runtime& runtime() { return local_; }

  void charge(const std::string& phase, std::int64_t rounds,
              std::int64_t messages = 0, std::int64_t max_congestion = 0) {
    local_.charge(phase, rounds, messages, max_congestion);
  }

  void charge_envelope(const std::string& phase, std::int64_t rounds,
                       std::int64_t directed_edges) {
    local_.charge_envelope(phase, rounds, directed_edges);
  }

  void absorb(const Runtime& sub, const std::string& prefix = "") {
    local_.absorb(sub, prefix);
  }

  /// Absorb into the parent with the phase prefix; idempotent.
  void close() {
    if (parent_ != nullptr) {
      parent_->absorb(local_, prefix_);
      parent_ = nullptr;
    }
  }

 private:
  Runtime* parent_;
  std::string prefix_;
  Runtime local_;
};

/// What an apps/-layer solver reports next to its solution: the headline
/// round count, the decomposition's routing term T, the cluster count it
/// programmed against, and the full phase breakdown. total_rounds must equal
/// runtime.total() — finish() pins that.
///
/// The tier_* / bb_* / solve_ms block is the cluster-ladder audit trail
/// (apps/treewidth.hpp): every per-cluster solve lands in exactly one tier
/// (tier_forest + tier_tw_dp + tier_bb + tier_greedy == clusters for the
/// ladder solvers — scripts/check_bench_json.py re-checks this offline), the
/// bb_* columns surface branch-and-bound effort so a tier-choice regression
/// shows up in bench JSON instead of silently, and solve_ms is the summed
/// wall time of the per-cluster solver calls (a timing, not part of the
/// deterministic output contract).
struct SolverStats {
  std::int64_t total_rounds = 0;  // == runtime.total() after finish()
  std::int64_t T = 0;             // routing-structure term of the decomposition
  std::int64_t clusters = 0;      // clusters the solver solved locally
  // Per-tier cluster counts from the width-gated solver ladder.
  std::int64_t tier_forest = 0;   // exact forest/tree DP
  std::int64_t tier_tw_dp = 0;    // treewidth DP (computed width <= tw_cap)
  std::int64_t tier_bb = 0;       // budgeted exact search, budget survived
  std::int64_t tier_greedy = 0;   // pruned-greedy fallback
  int max_width_dp = -1;          // widest decomposition a tw-DP solve used
  // Branch-and-bound effort (MdsBranch / MisSolver searches).
  std::int64_t bb_runs = 0;        // searches launched
  std::int64_t bb_nodes = 0;       // total nodes explored
  std::int64_t bb_exact_runs = 0;  // searches that finished within budget
  double solve_ms = 0.0;           // summed per-cluster solver wall time
  Runtime runtime;                 // phase-attributed breakdown

  void finish() { total_rounds = runtime.total(); }
};

}  // namespace mfd::congest
