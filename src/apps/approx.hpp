// Section-6 approximation applications — Corollaries 6.4 / 6.5.
//
// Every solver here is the same two-phase shape the paper's Theorem 1.2
// applications share: build a Theorem 1.1 (ε*, D, T)-decomposition whose cut
// budget ε* is scaled down so the additive ε*·m combination loss becomes a
// multiplicative (1 ± ε), then solve every cluster *exactly* with the
// centralized baselines (branch-and-bound MIS, blossom matching) — the
// simulation stand-in for the paper's free local computation inside
// O(1/ε)-diameter clusters — and repair the seams along cut edges.
//
// Guarantee bookkeeping (alpha = the minor-free density bound the caller
// asserts for its family: m <= alpha * n; trees 1, outerplanar 2, planar 3):
//   * MIS:      alpha(G) >= n / (2*alpha + 1) by degeneracy-greedy, and each
//               cut edge costs at most one vertex of the per-cluster union,
//               so eps* = eps / (alpha * (2*alpha + 1)) gives |I| >=
//               (1 - eps) * OPT.
//   * Matching: nu(G) >= m / (2*Delta - 1) (every matched edge blocks at
//               most 2*Delta - 1 edges), and restricting an optimal matching
//               to intra-cluster edges loses at most one edge per cut edge,
//               so eps* = eps / (2*Delta + 1) gives |M| >= (1 - eps) * OPT.
//   * VC:       per-cluster exact covers plus one endpoint per cut edge is a
//               cover of size <= OPT + cut, and OPT >= nu(G), so the same
//               eps* gives |C| <= (1 + eps) * OPT.
//
// Round accounting goes through congest::Runtime: the decomposition's phases
// are absorbed verbatim, the per-cluster exact solve charges the 2D+1
// gather/scatter a CONGEST cluster pays to act as one node, and the seam
// repair charges one round (cut endpoints exchange one bit). On cycles the
// whole bill is O(log* n + poly(1/eps)) — the Theorem 6.1 shape the
// log*-flatness test pins.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "apps/blossom.hpp"
#include "apps/exact.hpp"
#include "apps/treewidth.hpp"
#include "congest/runtime.hpp"
#include "congest/shard.hpp"
#include "decomp/edt.hpp"
#include "graph/graph.hpp"
#include "graph/ops.hpp"

namespace mfd::apps {

/// A vertex-set solution (approximate MIS or vertex cover) plus its round
/// bill. vertices is sorted.
struct SetSolution {
  std::vector<int> vertices;
  congest::SolverStats stats;
};

/// An approximate maximum matching as (u, v) edges with u < v.
struct MatchingSolution {
  std::vector<std::pair<int, int>> edges;
  congest::SolverStats stats;
};

namespace detail {

/// The decomposition every Section-6 solver programs against: Theorem 1.1 at
/// the solver's ε*, clusters materialized, rounds absorbed into stats.
struct AppDecomposition {
  decomp::EdtDecomposition edt;
  std::vector<std::vector<int>> members;
};

inline AppDecomposition decompose_for_app(const Graph& g, double eps_star,
                                          congest::SolverStats& stats) {
  AppDecomposition out;
  out.edt = decomp::build_edt_decomposition(g, eps_star);
  out.members.resize(out.edt.clustering.k);
  for (int v = 0; v < g.n(); ++v) {
    out.members[out.edt.clustering.cluster[v]].push_back(v);
  }
  {
    congest::ChargeScope edt_scope(stats.runtime, "edt");
    edt_scope.absorb(out.edt.ledger);
  }
  stats.T = out.edt.T_measured;
  stats.clusters = out.edt.clustering.k;
  // Acting as one node per cluster: gather the cluster topology to its
  // center and scatter the local answer back, in parallel across clusters.
  // Envelope bill: every gather/scatter round moves at most one O(log n)-bit
  // message per directed intra-cluster edge (the only edges it uses).
  const std::int64_t intra_directed =
      2 * (g.m() - out.edt.quality.cut_edges);
  stats.runtime.charge_envelope("cluster solve (gather+scatter, 2D+1)",
                                2 * out.edt.quality.max_diameter + 1,
                                intra_directed);
  return out;
}

/// Keep eps* off zero so degenerate inputs (isolated vertices, eps ~ 0)
/// still terminate; smaller eps* only makes the decomposition finer.
inline double clamp_eps_star(double eps_star) {
  return std::max(eps_star, 1e-6);
}

/// The width-gated cluster MIS ladder (apps/treewidth.hpp tiers): forest
/// clusters solve by reductions alone (every tree has a leaf, so MisSolver
/// never branches there), medium clusters by the treewidth DP when the
/// capped probe certifies width <= tw_cap, then the budgeted B&B, then the
/// greedy completion (a budget-0 solve: reductions + min-degree greedy).
inline std::vector<int> cluster_mis(const Graph& h, const LadderConfig& cfg,
                                    TierReport& rep) {
  rep = TierReport{};
  if (h.n() == 0) return {};
  const auto t0 = std::chrono::steady_clock::now();
  rep.solved = true;
  std::vector<int> sol;
  NiceTreeDecomposition nd;
  if (cfg.mode == SolverMode::kGreedy) {
    sol = max_independent_set(h, 0, nullptr).set;
    rep.tier = SolveTier::kGreedy;
  } else if (h.m() == h.n() - 1) {  // connected cluster with tree edge count
    sol = max_independent_set(h).set;
    rep.tier = SolveTier::kForest;
  } else if (ladder_tw_probe(h, cfg, nd)) {
    sol = tw_max_independent_set(h, nd);
    rep.tier = SolveTier::kTreewidthDp;
    rep.width = nd.width;
  } else if (cfg.mode != SolverMode::kTreewidth) {
    MisSearchReport r;
    sol = max_independent_set(h, cfg.node_budget, &r).set;
    rep.bb_ran = true;
    rep.bb_nodes = r.nodes;
    rep.bb_exact = r.exact;
    rep.tier = r.exact ? SolveTier::kBranchBound : SolveTier::kGreedy;
  } else {  // kTreewidth mode past the width gate: no B&B rescue
    sol = max_independent_set(h, 0, nullptr).set;
    rep.tier = SolveTier::kGreedy;
  }
  rep.ms = std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
               .count();
  return sol;
}

/// Cluster VC: the complement of the cluster MIS ladder's witness — a valid
/// cover for every tier (the complement of ANY independent set covers all
/// edges), minimum whenever the tier was exact. Same tier report.
inline std::vector<int> cluster_vc(const Graph& h, const LadderConfig& cfg,
                                   TierReport& rep) {
  const std::vector<int> mis = cluster_mis(h, cfg, rep);
  std::vector<char> in_set(h.n(), 0);
  for (int v : mis) in_set[v] = 1;
  std::vector<int> out;
  for (int v = 0; v < h.n(); ++v) {
    if (!in_set[v]) out.push_back(v);
  }
  return out;
}

/// Sharded seam-candidate scan: collect the cut-edge pairs (u, v), u < v,
/// for which `want(u, v)` holds on the PRE-SWEEP state, in lexicographic
/// order. The O(m) adjacency walk is the hot part of both seam sweeps, and
/// it reads only frozen state, so vertex ranges fan out over the pool and
/// the per-task vectors concatenate in task order — which IS lex order,
/// because ranges are contiguous and ascending (congest::ShardPlan).
/// The caller replays the candidates serially with live-state checks; the
/// monotone sweeps (in_set only falls, in_cover only rises) make that replay
/// provably identical to the serial adjacency sweep — see each call site.
inline std::vector<std::pair<int, int>> collect_seam_candidates(
    const Graph& g, const std::vector<int>& cluster,
    const std::function<bool(int, int)>& want, congest::ShardPool* pool) {
  const auto scan = [&](int lo, int hi, std::vector<std::pair<int, int>>& out) {
    for (int u = lo; u < hi; ++u) {
      for (int v : g.neighbors(u)) {
        if (u < v && cluster[u] != cluster[v] && want(u, v)) {
          out.emplace_back(u, v);
        }
      }
    }
  };
  if (pool == nullptr || pool->threads() == 1 || g.n() == 0) {
    std::vector<std::pair<int, int>> out;
    scan(0, g.n(), out);
    return out;
  }
  const int tasks = std::min(g.n(), 4 * pool->threads());
  std::vector<std::vector<std::pair<int, int>>> partial(tasks);
  congest::parallel_ranges(*pool, g.n(), tasks,
                           [&](int lo, int hi, int t) { scan(lo, hi, partial[t]); });
  std::vector<std::pair<int, int>> out;
  for (auto& p : partial) {
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

}  // namespace detail

/// Corollary 6.5: deterministic (1-eps)-approximate maximum independent set.
/// alpha is the family's density bound (m <= alpha*n). `pool` fans the
/// per-cluster ladder solves (vertex-disjoint clusters, deterministic
/// ladder, folded in cluster order) and shards the seam-repair candidate
/// scan; the result is bit-identical to the serial sweep at every thread
/// count (test_shard gates it). `ladder` selects the solver tiers.
inline SetSolution approx_max_independent_set(const Graph& g, double eps,
                                              int alpha,
                                              congest::ShardPool* pool = nullptr,
                                              const LadderConfig& ladder = {}) {
  SetSolution out;
  const double a = std::max(alpha, 1);
  const double eps_star =
      detail::clamp_eps_star(eps / (a * (2.0 * a + 1.0)));
  const detail::AppDecomposition dec =
      detail::decompose_for_app(g, eps_star, out.stats);

  const int k = static_cast<int>(dec.members.size());
  std::vector<std::vector<int>> local(k);
  std::vector<TierReport> reports(k);
  const auto solve_one = [&](int c) {
    const std::vector<int>& verts = dec.members[c];
    if (verts.empty()) return;
    const InducedSubgraph sub = induced_subgraph(g, verts);
    const std::vector<int> s =
        detail::cluster_mis(sub.graph, ladder, reports[c]);
    local[c].reserve(s.size());
    for (int i : s) local[c].push_back(sub.to_parent[i]);
  };
  if (pool != nullptr && pool->threads() > 1) {
    pool->run(k, [&](int task, int) { solve_one(task); });
  } else {
    for (int c = 0; c < k; ++c) solve_one(c);
  }
  std::vector<char> in_set(g.n(), 0);
  for (int c = 0; c < k; ++c) {
    accumulate_tier(out.stats, reports[c]);
    for (int v : local[c]) in_set[v] = 1;
  }
  // Seam repair: a cut edge with both endpoints chosen drops its larger
  // endpoint — at most one loss per cut edge, which eps* budgeted for.
  // Sharded form: collect the cut pairs with both endpoints in the
  // PRE-SWEEP set (lex order), then replay them serially with live checks.
  // This equals the serial adjacency sweep exactly: membership only falls
  // during the sweep, so every pair the serial sweep acts on was in the
  // pre-sweep candidate set, and pairs whose live check fails are skipped
  // by both versions — same drops, same conflict count, in the same order.
  const std::vector<std::pair<int, int>> candidates =
      detail::collect_seam_candidates(
          g, dec.edt.clustering.cluster,
          [&in_set](int u, int v) { return in_set[u] && in_set[v]; }, pool);
  std::int64_t conflicts = 0;
  for (const auto& [u, v] : candidates) {
    if (in_set[u] && in_set[v]) {
      in_set[v] = 0;
      ++conflicts;
    }
  }
  out.stats.runtime.charge("seam repair (1 round)", 1, conflicts,
                           conflicts > 0 ? 1 : 0);
  for (int v = 0; v < g.n(); ++v) {
    if (in_set[v]) out.vertices.push_back(v);
  }
  out.stats.finish();
  return out;
}

/// Corollary 6.4 (matching half): deterministic (1-eps)-approximate maximum
/// matching via per-cluster blossom on the (ε*, D, T)-decomposition.
/// Blossom is polynomial, so there is no solver ladder here — but the
/// per-cluster solves still fan over `pool` (vertex-disjoint clusters,
/// deterministic solver, edges folded in cluster order then sorted:
/// bit-identical to the serial sweep).
inline MatchingSolution approx_max_matching(const Graph& g, double eps,
                                            int alpha,
                                            congest::ShardPool* pool = nullptr) {
  (void)alpha;  // the matching bound is degree- not density-driven
  MatchingSolution out;
  const double eps_star =
      detail::clamp_eps_star(eps / (2.0 * g.max_degree() + 1.0));
  const detail::AppDecomposition dec =
      detail::decompose_for_app(g, eps_star, out.stats);

  const int k = static_cast<int>(dec.members.size());
  std::vector<std::vector<std::pair<int, int>>> local(k);
  const auto solve_one = [&](int c) {
    const std::vector<int>& verts = dec.members[c];
    if (verts.size() < 2) return;
    const InducedSubgraph sub = induced_subgraph(g, verts);
    for (const auto& [a, b] : max_matching_edges(sub.graph)) {
      const int u = sub.to_parent[a], v = sub.to_parent[b];
      local[c].emplace_back(std::min(u, v), std::max(u, v));
    }
  };
  if (pool != nullptr && pool->threads() > 1) {
    pool->run(k, [&](int task, int) { solve_one(task); });
  } else {
    for (int c = 0; c < k; ++c) solve_one(c);
  }
  for (int c = 0; c < k; ++c) {
    out.edges.insert(out.edges.end(), local[c].begin(), local[c].end());
  }
  std::sort(out.edges.begin(), out.edges.end());
  out.stats.finish();
  return out;
}

/// Corollary 6.4 (cover half): deterministic (1+eps)-approximate minimum
/// vertex cover — per-cluster ladder covers plus one endpoint per cut edge.
/// `pool` fans the per-cluster solves and shards the seam scan; `ladder`
/// selects the solver tiers.
inline SetSolution approx_min_vertex_cover(const Graph& g, double eps,
                                           int alpha,
                                           congest::ShardPool* pool = nullptr,
                                           const LadderConfig& ladder = {}) {
  (void)alpha;
  SetSolution out;
  const double eps_star =
      detail::clamp_eps_star(eps / (2.0 * g.max_degree() + 1.0));
  const detail::AppDecomposition dec =
      detail::decompose_for_app(g, eps_star, out.stats);

  const int k = static_cast<int>(dec.members.size());
  std::vector<std::vector<int>> local(k);
  std::vector<TierReport> reports(k);
  const auto solve_one = [&](int c) {
    const std::vector<int>& verts = dec.members[c];
    if (verts.empty()) return;
    const InducedSubgraph sub = induced_subgraph(g, verts);
    const std::vector<int> s =
        detail::cluster_vc(sub.graph, ladder, reports[c]);
    local[c].reserve(s.size());
    for (int i : s) local[c].push_back(sub.to_parent[i]);
  };
  if (pool != nullptr && pool->threads() > 1) {
    pool->run(k, [&](int task, int) { solve_one(task); });
  } else {
    for (int c = 0; c < k; ++c) solve_one(c);
  }
  std::vector<char> in_cover(g.n(), 0);
  for (int c = 0; c < k; ++c) {
    accumulate_tier(out.stats, reports[c]);
    for (int v : local[c]) in_cover[v] = 1;
  }
  // Every cut edge must be covered too: take its smaller endpoint unless one
  // endpoint is already in. Sharded like the MIS sweep — candidates are the
  // cut pairs with both endpoints uncovered PRE-SWEEP, replayed in lex order
  // with live checks. Coverage only rises during the sweep, so every pair
  // the serial sweep patches was uncovered pre-sweep, and both versions skip
  // the same live-covered pairs — identical patches, identical count.
  const std::vector<std::pair<int, int>> candidates =
      detail::collect_seam_candidates(
          g, dec.edt.clustering.cluster,
          [&in_cover](int u, int v) { return !in_cover[u] && !in_cover[v]; },
          pool);
  std::int64_t patched = 0;
  for (const auto& [u, v] : candidates) {
    if (!in_cover[u] && !in_cover[v]) {
      in_cover[u] = 1;
      ++patched;
    }
  }
  out.stats.runtime.charge("seam repair (1 round)", 1, patched,
                           patched > 0 ? 1 : 0);
  for (int v = 0; v < g.n(); ++v) {
    if (in_cover[v]) out.vertices.push_back(v);
  }
  out.stats.finish();
  return out;
}

}  // namespace mfd::apps
