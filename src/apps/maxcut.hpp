// Corollary 6.3 — deterministic (1-eps)-approximate maximum cut, plus the
// exact small-instance baseline the bench grades it against.
//
// Approximation shape: OPT >= m/2 on every graph, so a Theorem 1.1
// decomposition at eps* = eps/2 loses at most eps*·m <= eps·OPT cut value
// to inter-cluster edges; clusters are then cut locally — exactly (gray-code
// enumeration) up to exact_cap vertices, and by BFS-parity seeding plus
// first-improvement single-vertex flips above it (the parity seed is already
// optimal on bipartite clusters, which is where the bench pins OPT = m) —
// and a greedy cluster-flip pass reclaims inter-cluster edges for free
// (flipping a whole cluster's side preserves every intra-cluster cut).
//
// Units: rounds through congest::Runtime as everywhere; the flip phases
// charge one round per sweep (each vertex/cluster decision is a local
// exchange with its neighbors).
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <vector>

#include "apps/approx.hpp"
#include "apps/treewidth.hpp"
#include "congest/runtime.hpp"
#include "congest/shard.hpp"
#include "graph/graph.hpp"
#include "graph/ops.hpp"

namespace mfd::apps {

/// Exact (or best-effort above exact_cap) maximum cut.
struct CutResult {
  std::int64_t cut_edges = 0;
  std::vector<char> side;  // side[v] in {0, 1}
  bool exact = false;      // true iff the gray-code enumeration ran
};

/// The approximate solver's output: cut value, the side assignment, rounds.
struct CutSolution {
  std::int64_t value = 0;
  std::vector<char> side;
  congest::SolverStats stats;
};

namespace detail {

/// First-improvement single-vertex flips until a local optimum (or the pass
/// cap). Returns the number of sweeps run; side is updated in place.
inline int local_flip_passes(const Graph& g, std::vector<char>& side,
                             int max_passes = 60) {
  int passes = 0;
  bool improved = true;
  while (improved && passes < max_passes) {
    improved = false;
    ++passes;
    for (int v = 0; v < g.n(); ++v) {
      int same = 0, other = 0;
      for (int w : g.neighbors(v)) {
        (side[w] == side[v] ? same : other) += 1;
      }
      if (same > other) {  // flipping v gains same - other cut edges
        side[v] ^= 1;
        improved = true;
      }
    }
  }
  return passes;
}

/// BFS-parity side assignment from vertex 0: exact on bipartite graphs.
inline std::vector<char> parity_sides(const Graph& g) {
  std::vector<char> side(g.n(), 0);
  const std::vector<int> dist = bfs_distances(g, 0);
  for (int v = 0; v < g.n(); ++v) {
    side[v] = static_cast<char>(dist[v] >= 0 ? dist[v] & 1 : 0);
  }
  return side;
}

inline std::int64_t cut_value(const Graph& g, const std::vector<char>& side) {
  std::int64_t cut = 0;
  for (int u = 0; u < g.n(); ++u) {
    for (int v : g.neighbors(u)) {
      if (u < v && side[u] != side[v]) ++cut;
    }
  }
  return cut;
}

}  // namespace detail

/// Maximum cut of g. Exact by gray-code enumeration of the 2^(n-1) side
/// assignments when n <= exact_cap (vertex 0 pinned to side 0); above the
/// cap falls back to parity + local flips and reports exact = false.
/// exact_cap DEFAULTS TO 26 and is HARD-CLAMPED TO 30 inside the function
/// (same rationale as phi_certificate's clamp: the exact path walks 2^(n-1)
/// gray-code steps, so a generous knob must neither hang for days nor
/// overflow the 64-bit step counter).
inline CutResult max_cut(const Graph& g, int exact_cap = 26) {
  CutResult out;
  const int n = g.n();
  exact_cap = std::min(exact_cap, 30);
  if (n <= 1) {
    out.side.assign(std::max(n, 0), 0);
    out.exact = true;
    return out;
  }
  if (n > exact_cap) {
    out.side = detail::parity_sides(g);
    detail::local_flip_passes(g, out.side);
    out.cut_edges = detail::cut_value(g, out.side);
    return out;
  }
  // Gray-code walk: step i flips exactly one vertex, so the cut value
  // updates in O(deg) and the best assignment is recovered from gray(i).
  std::vector<char> side(n, 0);
  std::int64_t cut = 0, best_cut = 0;
  std::uint64_t best_gray = 0;
  const std::uint64_t limit = std::uint64_t{1} << (n - 1);
  for (std::uint64_t i = 1; i < limit; ++i) {
    int bit = 0;
    while (((i >> bit) & 1u) == 0) ++bit;
    const int v = bit + 1;  // vertex 0 stays fixed
    int same = 0, other = 0;
    for (int w : g.neighbors(v)) {
      (side[w] == side[v] ? same : other) += 1;
    }
    cut += same - other;
    side[v] ^= 1;
    if (cut > best_cut) {
      best_cut = cut;
      best_gray = i ^ (i >> 1);
    }
  }
  out.cut_edges = best_cut;
  out.exact = true;
  out.side.assign(n, 0);
  for (int v = 1; v < n; ++v) {
    out.side[v] = static_cast<char>((best_gray >> (v - 1)) & 1u);
  }
  return out;
}

namespace detail {

/// The per-cluster max-cut ladder (apps/treewidth.hpp tiers): forest
/// clusters take BFS-parity sides (exact — trees are bipartite, so the
/// parity cut is all m edges); medium clusters the treewidth DP when the
/// capped probe certifies width <= tw_cap; small clusters the gray-code
/// enumeration (the exact-search tier here — bb_nodes counts its 2^(n-1)-1
/// single-flip steps, always within "budget"); everything else BFS-parity
/// plus first-improvement flips (the greedy tier; `passes` reports the
/// sweep count for the caller's envelope bill).
inline std::vector<char> cluster_cut(const Graph& h, int exact_cap,
                                     const LadderConfig& cfg, TierReport& rep,
                                     int& passes) {
  rep = TierReport{};
  passes = 0;
  if (h.n() == 0) return {};
  const auto t0 = std::chrono::steady_clock::now();
  rep.solved = true;
  std::vector<char> side;
  NiceTreeDecomposition nd;
  const int cap = std::min(exact_cap, 30);  // max_cut's own clamp
  if (cfg.mode == SolverMode::kGreedy) {
    side = parity_sides(h);
    passes = local_flip_passes(h, side);
    rep.tier = SolveTier::kGreedy;
  } else if (h.m() == h.n() - 1) {  // connected cluster with tree edge count
    side = parity_sides(h);
    rep.tier = SolveTier::kForest;
  } else if (ladder_tw_probe(h, cfg, nd)) {
    side = tw_max_cut(h, nd).side;
    rep.tier = SolveTier::kTreewidthDp;
    rep.width = nd.width;
  } else if (cfg.mode != SolverMode::kTreewidth && h.n() <= cap) {
    side = max_cut(h, cap).side;
    rep.tier = SolveTier::kBranchBound;
    rep.bb_ran = true;
    rep.bb_exact = true;
    rep.bb_nodes = (std::int64_t{1} << (h.n() - 1)) - 1;
  } else {
    side = parity_sides(h);
    passes = local_flip_passes(h, side);
    rep.tier = SolveTier::kGreedy;
  }
  rep.ms = std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
               .count();
  return side;
}

}  // namespace detail

/// Corollary 6.3: deterministic (1-eps)-approximate maximum cut. Clusters
/// are cut by the width-gated ladder (parity on forests, treewidth DP,
/// gray-code enumeration, parity + flips) and the per-cluster solves fan
/// over `pool` (vertex-disjoint clusters, deterministic ladder, folded in
/// cluster order), as does the cluster-flip gain accumulation; per-task
/// integer partials summed in task order keep the result bit-identical to
/// the serial sweep. `ladder` selects the solver tiers.
inline CutSolution approx_max_cut(const Graph& g, double eps,
                                  int exact_cap = 24,
                                  congest::ShardPool* pool = nullptr,
                                  const LadderConfig& ladder = {}) {
  CutSolution out;
  const double eps_star = detail::clamp_eps_star(eps / 2.0);
  const detail::AppDecomposition dec =
      detail::decompose_for_app(g, eps_star, out.stats);

  out.side.assign(g.n(), 0);
  const int k = static_cast<int>(dec.members.size());
  std::vector<std::vector<char>> local(k);
  std::vector<TierReport> reports(k);
  std::vector<int> passes(k, 0);
  const auto solve_one = [&](int c) {
    const std::vector<int>& verts = dec.members[c];
    if (verts.empty()) return;
    const InducedSubgraph sub = induced_subgraph(g, verts);
    local[c] = detail::cluster_cut(sub.graph, exact_cap, ladder, reports[c],
                                   passes[c]);
  };
  if (pool != nullptr && pool->threads() > 1) {
    pool->run(k, [&](int task, int) { solve_one(task); });
  } else {
    for (int c = 0; c < k; ++c) solve_one(c);
  }
  int max_passes = 1;
  for (int c = 0; c < k; ++c) {
    accumulate_tier(out.stats, reports[c]);
    max_passes = std::max(max_passes, passes[c]);
    if (local[c].empty()) continue;
    const std::vector<int>& verts = dec.members[c];
    for (std::size_t i = 0; i < verts.size(); ++i) {
      out.side[verts[i]] = local[c][i];
    }
  }
  // Each flip sweep exchanges one side-bit per directed intra-cluster edge.
  out.stats.runtime.charge_envelope(
      "intra-cluster flips (1 round/sweep)", max_passes,
      2 * (g.m() - dec.edt.quality.cut_edges));

  // Cluster-flip refinement: flipping a whole cluster keeps every intra cut
  // and can only be accepted when it gains inter-cluster edges.
  const std::vector<int>& cl = dec.edt.clustering.cluster;
  int flip_passes = 0;
  bool improved = true;
  while (improved && flip_passes < 30) {
    improved = false;
    ++flip_passes;
    // The gain accumulation is a read-only O(m) scan into integer buckets:
    // vertex ranges fan out over the pool with one bucket array per task,
    // and the partials sum in task order. Integer addition is associative
    // and commutative, so the merged gains equal the serial scan exactly.
    std::vector<std::int64_t> gain(dec.edt.clustering.k, 0);
    const auto scan = [&](int lo, int hi, std::vector<std::int64_t>& acc) {
      for (int u = lo; u < hi; ++u) {
        for (int v : g.neighbors(u)) {
          if (u < v && cl[u] != cl[v]) {
            const std::int64_t d = out.side[u] == out.side[v] ? 1 : -1;
            acc[cl[u]] += d;
            acc[cl[v]] += d;
          }
        }
      }
    };
    if (pool != nullptr && pool->threads() > 1 && g.n() > 0) {
      const int tasks = std::min(g.n(), 4 * pool->threads());
      std::vector<std::vector<std::int64_t>> partial(
          tasks, std::vector<std::int64_t>(dec.edt.clustering.k, 0));
      congest::parallel_ranges(
          *pool, g.n(), tasks,
          [&](int lo, int hi, int t) { scan(lo, hi, partial[t]); });
      for (const auto& p : partial) {
        for (int c = 0; c < dec.edt.clustering.k; ++c) gain[c] += p[c];
      }
    } else {
      scan(0, g.n(), gain);
    }
    // Accept one flip per pass (the best), so gains never go stale.
    int best_c = -1;
    for (int c = 0; c < dec.edt.clustering.k; ++c) {
      if (gain[c] > 0 && (best_c < 0 || gain[c] > gain[best_c])) best_c = c;
    }
    if (best_c >= 0) {
      for (int v = 0; v < g.n(); ++v) {
        if (cl[v] == best_c) out.side[v] ^= 1;
      }
      improved = true;
    }
  }
  // Each pass aggregates cut-edge gains and broadcasts one flip decision —
  // at most one O(log n)-bit message per directed edge per round.
  out.stats.runtime.charge_envelope("cluster flips (1 round/pass)",
                                    flip_passes, 2 * g.m());

  out.value = detail::cut_value(g, out.side);
  out.stats.finish();
  return out;
}

}  // namespace mfd::apps
