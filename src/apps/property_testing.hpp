// Corollary 6.6 — distributed property testing of additive minor-closed
// properties (Theorem 6.2 gives the matching Omega(log n / eps) lower
// bound).
//
// The simulation decides membership exactly (members accept, non-members —
// a superset of the ε-far graphs — reject, so the tester's one-sided
// promise holds on every bench instance) using the repo's structural
// machinery: the left-right planarity test, the apex reduction for
// outerplanarity (G is outerplanar iff G + apex is planar), cycle counting
// for forests/linear forests, and a block decomposition for cacti (every
// block must be an edge or a simple cycle). Round accounting follows the
// paper's tester: a ceil(log2 n)-level verification hierarchy paying
// O(1/eps) rounds per level, plus the verdict broadcast — O(log n / eps)
// total, charged through congest::Runtime.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "congest/runtime.hpp"
#include "graph/graph.hpp"
#include "graph/ops.hpp"
#include "graph/planarity.hpp"

namespace mfd {

/// The additive minor-closed families the tester knows. Each is closed
/// under minors and disjoint unions (the "additive" in Corollary 6.6).
enum class Family { kPlanar, kForest, kOuterplanar, kCactus, kLinearForest };

inline const char* family_name(Family f) {
  switch (f) {
    case Family::kPlanar: return "planar";
    case Family::kForest: return "forest";
    case Family::kOuterplanar: return "outerplanar";
    case Family::kCactus: return "cactus";
    case Family::kLinearForest: return "linear forest";
  }
  return "?";
}

namespace apps {

struct PropertyTestResult {
  bool accepted = false;
  std::string reason;       // obstruction description when rejecting
  std::int64_t rounds = 0;  // simulated CONGEST rounds, O(log n / eps)
  congest::Runtime runtime;
};

namespace detail {

/// True iff every biconnected block of g is an edge or a simple cycle —
/// the cactus characterization. On failure names the offending block.
inline bool is_cactus(const Graph& g, std::string* reason) {
  // Iterative DFS tracking per-edge discovery; a block has shared cycle
  // edges iff it contains more edges than vertices. We count, per DFS tree
  // edge, the number of back edges spanning it: cactus iff every tree edge
  // is spanned by at most one back edge.
  const int n = g.n();
  std::vector<int> depth(n, -1), parent(n, -1), span(n, 0);
  std::vector<int> stack;
  for (int root = 0; root < n; ++root) {
    if (depth[root] >= 0) continue;
    depth[root] = 0;
    stack.push_back(root);
    std::vector<int> order;
    while (!stack.empty()) {
      const int v = stack.back();
      stack.pop_back();
      order.push_back(v);
      for (int w : g.neighbors(v)) {
        if (depth[w] < 0) {
          depth[w] = depth[v] + 1;
          parent[w] = v;
          stack.push_back(w);
        }
      }
    }
    // Each non-tree edge (u, w) closes one cycle through the tree path
    // u..w; add +1 span to every tree edge on that path by walking up.
    for (int v : order) {
      for (int w : g.neighbors(v)) {
        if (v < w && parent[w] != v && parent[v] != w) {
          int a = v, b = w;
          while (a != b) {
            if (depth[a] < depth[b]) std::swap(a, b);
            if (++span[a] > 1) {
              if (reason != nullptr) {
                *reason = "edge on two cycles near vertex " + std::to_string(a);
              }
              return false;
            }
            a = parent[a];
          }
        }
      }
    }
  }
  return true;
}

}  // namespace detail

/// Corollary 6.6 tester: members of `fam` accept; non-members (in
/// particular every eps-far instance) reject with the obstruction named.
inline PropertyTestResult test_property(const Graph& g, Family fam,
                                        double eps) {
  PropertyTestResult out;
  const int n = std::max(g.n(), 2);
  const std::int64_t m = g.m();
  const auto [comp, k] = connected_components(g);
  (void)comp;
  const std::int64_t forest_m = static_cast<std::int64_t>(g.n()) - k;

  out.accepted = true;
  switch (fam) {
    case Family::kForest:
      if (m > forest_m) {
        out.accepted = false;
        out.reason = "cyclic: m = " + std::to_string(m) + " > n - c";
      }
      break;
    case Family::kLinearForest:
      if (m > forest_m) {
        out.accepted = false;
        out.reason = "cyclic: m > n - c";
      } else if (g.max_degree() > 2) {
        out.accepted = false;
        out.reason = "degree " + std::to_string(g.max_degree()) + " vertex";
      }
      break;
    case Family::kPlanar: {
      const PlanarityResult pr = check_planarity(g);
      if (!pr.planar) {
        out.accepted = false;
        out.reason = pr.verdict == PlanarityVerdict::kEulerBound
                         ? "Euler bound: m > 3n - 6"
                         : "LR conflict: K5/K3,3 subdivision";
      }
      break;
    }
    case Family::kOuterplanar:
      if (g.n() >= 2 && m > 2 * static_cast<std::int64_t>(g.n()) - 3) {
        out.accepted = false;
        out.reason = "Euler bound: m > 2n - 3";
      } else if (!is_planar(add_apex(g))) {
        out.accepted = false;
        out.reason = "apexed graph nonplanar: K4/K2,3 minor";
      }
      break;
    case Family::kCactus: {
      std::string why;
      if (!detail::is_cactus(g, &why)) {
        out.accepted = false;
        out.reason = why;
      }
      break;
    }
  }

  // The tester's round bill: a ceil(log2 n)-level hierarchy, O(1/eps)
  // verification rounds per level, one broadcast of the verdict per level.
  const std::int64_t levels = congest::ceil_log2(n);
  const std::int64_t per_level =
      static_cast<std::int64_t>(std::ceil(1.0 / std::max(eps, 1e-9)));
  out.runtime.charge_envelope("verification hierarchy (log n levels x 1/eps)",
                              levels * per_level, 2 * g.m());
  out.runtime.charge_envelope("verdict broadcast", levels, 2 * g.m());
  out.rounds = out.runtime.total();
  return out;
}

}  // namespace apps
}  // namespace mfd
