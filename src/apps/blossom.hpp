// Exact maximum matching in general graphs — Edmonds' blossom algorithm,
// O(V^3). The exact baseline the Theorem 1.2 matching application will be
// graded against (bench_matching_vc, bench_kernels); the distributed
// approximation layer lands with the rest of apps/.
//
// Standard contract-blossoms-implicitly formulation: repeated BFS
// augmenting-path search where `base[v]` tracks the base of the blossom
// containing v and lowest-common-ancestor marking contracts odd cycles on
// the fly.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace mfd::apps {

/// match[v] = partner of v, or -1 if v is unmatched.
struct Matching {
  std::vector<int> match;
  int size = 0;  // number of matched edges
};

namespace detail {

class Blossom {
 public:
  explicit Blossom(const Graph& g)
      : g_(g), n_(g.n()), match_(n_, -1), p_(n_), base_(n_), q_(n_) {}

  Matching run() {
    for (int v = 0; v < n_; ++v) {
      if (match_[v] < 0) {
        const int u = find_augmenting_path(v);
        if (u >= 0) augment(u);
      }
    }
    Matching out;
    out.match = match_;
    for (int v = 0; v < n_; ++v) {
      if (match_[v] > v) ++out.size;
    }
    return out;
  }

 private:
  int lca(int a, int b) {
    std::vector<char> used(n_, 0);
    for (;;) {
      a = base_[a];
      used[a] = 1;
      if (match_[a] < 0) break;
      a = p_[match_[a]];
    }
    for (;;) {
      b = base_[b];
      if (used[b]) return b;
      b = p_[match_[b]];
    }
  }

  void mark_path(std::vector<char>& blossom, int v, int b, int child) {
    while (base_[v] != b) {
      blossom[base_[v]] = 1;
      blossom[base_[match_[v]]] = 1;
      p_[v] = child;
      child = match_[v];
      v = p_[match_[v]];
    }
  }

  int find_augmenting_path(int root) {
    std::vector<char> used(n_, 0);
    std::fill(p_.begin(), p_.end(), -1);
    for (int v = 0; v < n_; ++v) base_[v] = v;
    int head = 0, tail = 0;
    q_[tail++] = root;
    used[root] = 1;
    while (head < tail) {
      const int v = q_[head++];
      for (int to : g_.neighbors(v)) {
        if (base_[v] == base_[to] || match_[v] == to) continue;
        if (to == root || (match_[to] >= 0 && p_[match_[to]] >= 0)) {
          // Odd cycle: contract the blossom around the LCA.
          const int b = lca(v, to);
          std::vector<char> blossom(n_, 0);
          mark_path(blossom, v, b, to);
          mark_path(blossom, to, b, v);
          for (int u = 0; u < n_; ++u) {
            if (blossom[base_[u]]) {
              base_[u] = b;
              if (!used[u]) {
                used[u] = 1;
                q_[tail++] = u;
              }
            }
          }
        } else if (p_[to] < 0) {
          p_[to] = v;
          if (match_[to] < 0) return to;  // augmenting path found
          used[match_[to]] = 1;
          q_[tail++] = match_[to];
        }
      }
    }
    return -1;
  }

  void augment(int v) {
    while (v >= 0) {
      const int pv = p_[v], ppv = match_[pv];
      match_[v] = pv;
      match_[pv] = v;
      v = ppv;
    }
  }

  const Graph& g_;
  int n_;
  std::vector<int> match_, p_, base_, q_;
};

}  // namespace detail

inline Matching max_matching(const Graph& g) {
  return detail::Blossom(g).run();
}

/// A maximum matching as an explicit (u, v) edge list with u < v — the
/// shape the approximation benches compare their per-cluster unions against.
inline std::vector<std::pair<int, int>> max_matching_edges(const Graph& g) {
  const Matching m = max_matching(g);
  std::vector<std::pair<int, int>> out;
  out.reserve(static_cast<std::size_t>(m.size));
  for (int v = 0; v < g.n(); ++v) {
    if (m.match[v] > v) out.emplace_back(v, m.match[v]);
  }
  return out;
}

}  // namespace mfd::apps
