// The covering-IP application (§1 motivation; the MDS line of [LPW13,
// AASS16, ASS19, CHWW20] the paper's framework subsumes): a deterministic
// (1+eps)-approximate minimum dominating set on H-minor-free networks, plus
// the exact and greedy centralized baselines it is graded against.
//
// Approximation shape: decompose at eps* = eps / (alpha * (Delta + 1)) and
// dominate every cluster within itself. Restricting a global optimum D* to
// a cluster C and adding the border vertices of C that D* dominated from
// outside yields a dominating set of C, so sum_C gamma(C) <= gamma(G) +
// O(cut) and the additive eps*·m loss becomes multiplicative via
// gamma(G) >= n / (Delta + 1) and m <= alpha * n.
//
// Per-cluster solver ladder (all deterministic, apps/treewidth.hpp's
// width-gated four tiers): exact tree DP on forest clusters of any size;
// the treewidth DP when the capped decomposition probe certifies width <=
// tw_cap; branch-and-bound — candidate branching on a fewest-dominator
// white vertex with a greedy 2-packing lower bound (closed neighborhoods of
// a 2-packing are disjoint, so any dominating set spends one vertex per
// packed vertex) — inside a node budget; greedy plus redundancy pruning
// when the budget blows. Per-tier cluster counts and B&B effort land in
// congest::SolverStats. min_dominating_set (the exact baseline) runs the
// same B&B with an unbounded budget.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "apps/approx.hpp"
#include "apps/treewidth.hpp"
#include "congest/runtime.hpp"
#include "congest/shard.hpp"
#include "graph/graph.hpp"
#include "graph/ops.hpp"

namespace mfd::apps {

/// An exact minimum dominating set (sorted vertex list).
struct MdsResult {
  std::vector<int> set;
};

/// The approximate solver's output; eps_star is the decomposition budget the
/// eps -> eps* scaling chose (the bench prints it).
struct MdsSolution {
  std::vector<int> vertices;
  double eps_star = 0.0;
  congest::SolverStats stats;
};

namespace detail {

/// Exact MDS of a tree (or forest) by the standard 3-state DP:
/// state 0 = v in the set, 1 = v dominated from within its subtree,
/// 2 = v not yet dominated (its parent must take it). Reconstructs a set.
inline std::vector<int> tree_mds(const Graph& t) {
  const int n = t.n();
  std::vector<int> chosen;
  if (n == 0) return chosen;
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;
  std::vector<std::int64_t> c0(n), c1(n), c2(n);
  std::vector<int> parent(n, -2), order;
  std::vector<std::vector<int>> kids(n);
  order.reserve(n);
  for (int root = 0; root < n; ++root) {
    if (parent[root] != -2) continue;
    parent[root] = -1;
    const std::size_t first = order.size();
    order.push_back(root);
    for (std::size_t i = first; i < order.size(); ++i) {
      const int v = order[i];
      for (int w : t.neighbors(v)) {
        if (parent[w] == -2) {
          parent[w] = v;
          kids[v].push_back(w);
          order.push_back(w);
        }
      }
    }
  }
  // Bottom-up costs (order is BFS, so reverse order is a valid postorder).
  for (int i = n - 1; i >= 0; --i) {
    const int v = order[i];
    std::int64_t sum_min3 = 0, sum_min01 = 0, sum_c1 = 0;
    std::int64_t best_force = kInf;  // min c0 - min(c0, c1) over children
    for (int ch : kids[v]) {
      sum_min3 += std::min({c0[ch], c1[ch], c2[ch]});
      const std::int64_t m01 = std::min(c0[ch], c1[ch]);
      sum_min01 = std::min(sum_min01 + m01, kInf);
      sum_c1 = std::min(sum_c1 + c1[ch], kInf);
      best_force = std::min(best_force, c0[ch] - m01);
    }
    c0[v] = 1 + sum_min3;
    c2[v] = kids[v].empty() ? 0 : sum_c1;
    c1[v] = kids[v].empty()
                ? kInf
                : std::min(sum_min01 + best_force, kInf);
  }
  // Top-down reconstruction.
  std::vector<int> state(n, -1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const int v = order[i];
    if (parent[v] < 0) state[v] = c0[v] <= c1[v] ? 0 : 1;
    const int s = state[v];
    if (s == 0) chosen.push_back(v);
    if (kids[v].empty()) continue;
    if (s == 0) {
      for (int ch : kids[v]) {
        state[ch] = c0[ch] <= c1[ch] && c0[ch] <= c2[ch]
                        ? 0
                        : (c1[ch] <= c2[ch] ? 1 : 2);
      }
    } else if (s == 2) {
      for (int ch : kids[v]) state[ch] = 1;
    } else {  // s == 1: at least one child must enter the set
      bool have_zero = false;
      for (int ch : kids[v]) {
        state[ch] = c0[ch] <= c1[ch] ? 0 : 1;
        have_zero = have_zero || state[ch] == 0;
      }
      if (!have_zero) {
        int fc = kids[v].front();
        for (int ch : kids[v]) {
          if (c0[ch] - std::min(c0[ch], c1[ch]) <
              c0[fc] - std::min(c0[fc], c1[fc])) {
            fc = ch;
          }
        }
        state[fc] = 0;
      }
    }
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

/// Greedy max-coverage dominating set of the whole graph (the ln(Delta)
/// baseline); ties break toward the smaller id.
inline std::vector<int> greedy_mds(const Graph& g) {
  const int n = g.n();
  std::vector<char> dominated(n, 0), in_set(n, 0);
  std::vector<int> cover(n);
  int undominated = n;
  const auto coverage = [&](int v) {
    int c = dominated[v] ? 0 : 1;
    for (int w : g.neighbors(v)) c += dominated[w] ? 0 : 1;
    return c;
  };
  for (int v = 0; v < n; ++v) cover[v] = coverage(v);
  std::vector<int> out;
  while (undominated > 0) {
    int best = -1;
    for (int v = 0; v < n; ++v) {
      if (!in_set[v] && cover[v] > 0 && (best < 0 || cover[v] > cover[best])) {
        best = v;
      }
    }
    in_set[best] = 1;
    out.push_back(best);
    // Mark N[best] dominated; refresh coverages in the 2-neighborhood.
    const auto mark = [&](int u) {
      if (dominated[u]) return;
      dominated[u] = 1;
      --undominated;
      cover[u] -= 1;
      for (int w : g.neighbors(u)) cover[w] -= 1;
    };
    mark(best);
    for (int w : g.neighbors(best)) mark(w);
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Drop set members whose closed neighborhood stays dominated without them.
inline void prune_redundant(const Graph& g, std::vector<int>& set) {
  const int n = g.n();
  std::vector<int> cnt(n, 0);
  std::vector<char> in_set(n, 0);
  for (int v : set) in_set[v] = 1;
  for (int v : set) {
    ++cnt[v];
    for (int w : g.neighbors(v)) ++cnt[w];
  }
  std::vector<int> kept;
  // Scan in reverse id order so earlier (greedy-higher-value) picks survive.
  for (auto it = set.rbegin(); it != set.rend(); ++it) {
    const int v = *it;
    bool removable = cnt[v] >= 2;
    for (int w : g.neighbors(v)) {
      if (cnt[w] < 2) {
        removable = false;
        break;
      }
    }
    if (removable) {
      --cnt[v];
      for (int w : g.neighbors(v)) --cnt[w];
    } else {
      kept.push_back(v);
    }
  }
  std::sort(kept.begin(), kept.end());
  set = std::move(kept);
}

/// Branch and bound for exact MDS. Branches over the candidate dominators
/// of a fewest-candidates white vertex; prunes with a greedy 2-packing
/// lower bound. node_budget < 0 means unlimited (the exact baseline).
class MdsBranch {
 public:
  MdsBranch(const Graph& g, std::int64_t node_budget)
      : g_(g),
        n_(g.n()),
        white_(g.n()),
        dominated_(n_, 0),
        banned_(n_, 0),
        budget_(node_budget) {}

  /// Runs the search; exact() reports whether the budget survived.
  std::vector<int> solve() {
    best_ = greedy_mds(g_);
    prune_redundant(g_, best_);
    std::vector<int> chosen;
    descend(chosen);
    return best_;
  }

  bool exact() const { return exact_; }
  std::int64_t nodes() const { return nodes_; }

 private:
  int coverage(int v) const {
    int c = dominated_[v] ? 0 : 1;
    for (int w : g_.neighbors(v)) c += dominated_[w] ? 0 : 1;
    return c;
  }

  /// Greedy 2-packing of white vertices: closed neighborhoods of packed
  /// vertices are disjoint, and every dominating set spends a distinct
  /// vertex per packed vertex — a lower bound on what remains to pay.
  int packing_bound() {
    pack_mark_.assign(n_, 0);
    int packed = 0;
    for (int v = 0; v < n_; ++v) {
      if (dominated_[v]) continue;
      bool free = !pack_mark_[v];
      if (free) {
        for (int w : g_.neighbors(v)) {
          if (pack_mark_[w]) {
            free = false;
            break;
          }
        }
      }
      if (!free) continue;
      ++packed;
      // Block everything within distance 2 (mark the closed neighborhood;
      // a later candidate checks its own closed neighborhood against it).
      pack_mark_[v] = 1;
      for (int w : g_.neighbors(v)) pack_mark_[w] = 1;
    }
    return packed;
  }

  void descend(std::vector<int>& chosen) {
    if (!exact_) return;
    if (budget_ >= 0 && ++nodes_ > budget_) {
      exact_ = false;
      return;
    }
    if (static_cast<int>(chosen.size()) +
            (white_ > 0 ? packing_bound() : 0) >=
        static_cast<int>(best_.size())) {
      return;
    }
    // Fewest-candidates white vertex.
    int pivot = -1, pivot_cands = n_ + 1;
    for (int v = 0; v < n_; ++v) {
      if (dominated_[v]) continue;
      int cands = banned_[v] ? 0 : 1;
      for (int w : g_.neighbors(v)) cands += banned_[w] ? 0 : 1;
      if (cands < pivot_cands) {
        pivot = v;
        pivot_cands = cands;
      }
    }
    if (pivot < 0) {  // everything dominated: chosen is a full solution
      best_ = chosen;
      std::sort(best_.begin(), best_.end());
      return;
    }
    if (pivot_cands == 0) return;  // infeasible branch
    std::vector<int> cands;
    if (!banned_[pivot]) cands.push_back(pivot);
    for (int w : g_.neighbors(pivot)) {
      if (!banned_[w]) cands.push_back(w);
    }
    std::sort(cands.begin(), cands.end(), [this](int a, int b) {
      const int ca = coverage(a), cb = coverage(b);
      return ca != cb ? ca > cb : a < b;
    });
    std::vector<int> newly_banned;
    for (int u : cands) {
      std::vector<int> newly_dominated;
      const auto mark = [&](int x) {
        if (!dominated_[x]) {
          dominated_[x] = 1;
          --white_;
          newly_dominated.push_back(x);
        }
      };
      mark(u);
      for (int w : g_.neighbors(u)) mark(w);
      chosen.push_back(u);
      descend(chosen);
      chosen.pop_back();
      for (int x : newly_dominated) dominated_[x] = 0;
      white_ += static_cast<int>(newly_dominated.size());
      // Completeness: some dominator of pivot is in an optimal solution;
      // having explored "u in", the remaining branches may assume "u out".
      banned_[u] = 1;
      newly_banned.push_back(u);
      if (!exact_) break;
    }
    for (int u : newly_banned) banned_[u] = 0;
  }

  const Graph& g_;
  int n_;
  int white_ = 0;
  std::vector<char> dominated_, banned_, pack_mark_;
  std::vector<int> best_;
  std::int64_t nodes_ = 0, budget_;
  bool exact_ = true;
};

/// The width-gated cluster ladder: forest tree-DP -> treewidth DP (computed
/// width <= tw_cap) -> budgeted B&B -> greedy + pruning. Fills `rep` with
/// the tier that produced the answer, the certified width when the DP ran,
/// the B&B effort when that tier ran, and the wall time of this solve.
inline std::vector<int> cluster_mds(const Graph& h, const LadderConfig& cfg,
                                    TierReport& rep) {
  rep = TierReport{};
  if (h.n() == 0) return {};
  const auto t0 = std::chrono::steady_clock::now();
  rep.solved = true;
  std::vector<int> sol;
  NiceTreeDecomposition nd;
  if (cfg.mode == SolverMode::kGreedy) {
    sol = greedy_mds(h);
    prune_redundant(h, sol);
    rep.tier = SolveTier::kGreedy;
  } else if (h.m() == h.n() - 1) {  // connected cluster with tree edge count
    sol = tree_mds(h);
    rep.tier = SolveTier::kForest;
  } else if (ladder_tw_probe(h, cfg, nd)) {
    sol = tw_min_dominating_set(h, nd);
    rep.tier = SolveTier::kTreewidthDp;
    rep.width = nd.width;
  } else if (cfg.mode != SolverMode::kTreewidth) {
    MdsBranch bb(h, cfg.node_budget);
    sol = bb.solve();
    rep.bb_ran = true;
    rep.bb_nodes = bb.nodes();
    rep.bb_exact = bb.exact();
    if (bb.exact()) {
      rep.tier = SolveTier::kBranchBound;
    } else {
      rep.tier = SolveTier::kGreedy;
      std::vector<int> fallback = greedy_mds(h);
      prune_redundant(h, fallback);
      if (fallback.size() < sol.size()) sol = std::move(fallback);
    }
  } else {  // kTreewidth mode past the width gate: no B&B rescue
    sol = greedy_mds(h);
    prune_redundant(h, sol);
    rep.tier = SolveTier::kGreedy;
  }
  rep.ms = std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
               .count();
  return sol;
}

}  // namespace detail

/// Exact minimum dominating set: tree DP per forest component, unbounded
/// branch and bound otherwise. Exponential worst case — baseline sizes only.
inline MdsResult min_dominating_set(const Graph& g) {
  MdsResult out;
  const auto [comp, k] = connected_components(g);
  std::vector<std::vector<int>> members(k);
  for (int v = 0; v < g.n(); ++v) members[comp[v]].push_back(v);
  for (const auto& verts : members) {
    const InducedSubgraph sub = induced_subgraph(g, verts);
    std::vector<int> local;
    if (sub.graph.m() == sub.graph.n() - 1) {
      local = detail::tree_mds(sub.graph);
    } else {
      detail::MdsBranch bb(sub.graph, -1);
      local = bb.solve();
    }
    for (int i : local) out.set.push_back(sub.to_parent[i]);
  }
  std::sort(out.set.begin(), out.set.end());
  return out;
}

/// The ln(Delta)-factor greedy baseline the decomposition is graded against.
inline std::vector<int> greedy_dominating_set(const Graph& g) {
  return detail::greedy_mds(g);
}

/// The covering application: deterministic (1+eps)-approximate minimum
/// dominating set via per-cluster domination on the (ε*, D, T)-decomposition
/// with eps* = eps / (alpha * (Delta + 1)). `pool` fans the per-cluster
/// ladder solves (clusters are vertex-disjoint and the ladder is
/// deterministic; results fold in cluster order, so the output is
/// bit-identical to the serial sweep — test_shard gates it); `ladder`
/// selects the solver tiers (the benches' --tw_cap / --solver knobs).
inline MdsSolution approx_min_dominating_set(const Graph& g, double eps,
                                             int alpha,
                                             congest::ShardPool* pool = nullptr,
                                             const LadderConfig& ladder = {}) {
  MdsSolution out;
  const double a = std::max(alpha, 1);
  out.eps_star =
      detail::clamp_eps_star(eps / (a * (g.max_degree() + 1.0)));
  const detail::AppDecomposition dec =
      detail::decompose_for_app(g, out.eps_star, out.stats);

  const int k = static_cast<int>(dec.members.size());
  std::vector<std::vector<int>> local(k);
  std::vector<TierReport> reports(k);
  const auto solve_one = [&](int c) {
    const std::vector<int>& verts = dec.members[c];
    if (verts.empty()) return;
    const InducedSubgraph sub = induced_subgraph(g, verts);
    const std::vector<int> s = detail::cluster_mds(sub.graph, ladder,
                                                   reports[c]);
    local[c].reserve(s.size());
    for (int i : s) local[c].push_back(sub.to_parent[i]);
  };
  if (pool != nullptr && pool->threads() > 1) {
    pool->run(k, [&](int task, int) { solve_one(task); });
  } else {
    for (int c = 0; c < k; ++c) solve_one(c);
  }
  for (int c = 0; c < k; ++c) {
    accumulate_tier(out.stats, reports[c]);
    out.vertices.insert(out.vertices.end(), local[c].begin(), local[c].end());
  }
  std::sort(out.vertices.begin(), out.vertices.end());
  out.stats.finish();
  return out;
}

}  // namespace mfd::apps
