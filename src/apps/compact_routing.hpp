// Compact routing from the low-diameter decomposition — the [AGM05, AGMW07]
// application the paper's introduction cites for (ε, O(1/ε)) decompositions
// of minor-free graphs.
//
// Two-level scheme over an (ε, D, T)-decomposition, both levels using
// interval tree routing (walk up until the target's DFS interval is below
// you, then descend into the child interval containing it):
//   * level 0 (intra-cluster): every cluster carries a BFS tree rooted at
//     its center; a vertex stores its cluster id, parent port, its own DFS
//     interval and one interval per tree child — O(log n) bits plus
//     O(deg_tree log n), which averages O(log n) over the cluster.
//   * level 1 (inter-cluster): the clusters of each component form a BFS
//     spanning tree of the cluster graph; a cluster's *center* additionally
//     stores the cluster-tree interval labels and one portal edge per
//     tree-adjacent cluster — O(k log n) bits summed over ALL centers (not
//     per center), which is the compact-table claim the bench audits.
// A packet for v tree-routes to the portal of the next cluster on the
// cluster-tree path, crosses it, and repeats; inside the final cluster it
// tree-routes to v. Cost is at most 2D + 1 hops per cluster-tree hop — the
// O(D)-per-hop stretch shape the bench measures.
//
// Two execution tiers serve queries over the same tables:
//   * RoutingScheme + route_hops — the pointer-walk serial reference
//     (per-vertex child vectors, a std::map of portals). Kept verbatim as
//     the equivalence gate per the PR 6 serial-reference contract.
//   * FlatRoutingTables + flat_route_hops / serve_route_queries — the
//     query-serving tier: both levels flattened into contiguous record
//     arrays plus CSR child lists keyed by DFS-interval entry time, so the
//     descend step is a binary search over a cache-resident slice and a
//     climb touches one 24-byte record. The tables are immutable after
//     flatten_routing_scheme, so serve_route_queries fans queries across a
//     congest::ShardPool with zero locks on the hot path (each chunk writes
//     a disjoint output slice). tests/test_route_serve.cpp pins the flat
//     routes bit-identical to route_hops on every family.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "congest/runtime.hpp"
#include "congest/shard.hpp"
#include "decomp/clustering.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace mfd::apps {

/// The assembled two-level scheme; table-bit accessors count what each
/// vertex would actually store.
struct RoutingScheme {
  int n = 0, k = 0;
  std::vector<int> cluster;            // cluster[v]
  std::vector<int> center;             // center[c] = root vertex of cluster c
  std::vector<int> up;                 // BFS-tree parent toward center (-1 at it)
  std::vector<int> tin, tout;          // DFS interval of v on its cluster tree
  std::vector<std::vector<int>> kids;  // tree children of v
  // Level 1: BFS spanning forest of the cluster graph with DFS intervals,
  // plus one portal edge per tree-adjacent cluster pair (both directions).
  std::vector<int> cparent;            // cluster-tree parent (-1 at roots)
  std::vector<int> ctin, ctout;        // cluster-tree DFS interval
  std::vector<std::vector<int>> ckids; // cluster-tree children
  std::map<std::pair<int, int>, std::pair<int, int>> portal;

  /// Bits vertex v stores: cluster id + parent port + own interval + one
  /// interval per tree child; centers add the cluster-tree labels and one
  /// portal id per tree-adjacent cluster.
  std::int64_t table_bits(int v) const {
    const int logn = congest::ceil_log2(std::max(n, 2));
    const int logk = congest::ceil_log2(std::max(k, 2));
    std::int64_t bits = logk + logn + 2 * logn;  // id, port, interval
    bits += static_cast<std::int64_t>(kids[v].size()) * 2 * logn;
    const int c = cluster[v];
    if (center[c] == v) {
      bits += 2 * logk + logn;  // own cluster interval + parent portal
      bits += static_cast<std::int64_t>(ckids[c].size()) * (2 * logk + logn);
    }
    return bits;
  }

  double avg_table_bits() const {
    if (n == 0) return 0.0;
    std::int64_t sum = 0;
    for (int v = 0; v < n; ++v) sum += table_bits(v);
    return static_cast<double>(sum) / n;
  }

  std::int64_t max_table_bits() const {
    std::int64_t best = 0;
    for (int v = 0; v < n; ++v) best = std::max(best, table_bits(v));
    return best;
  }
};

struct StretchStats {
  double avg_stretch = 0.0;
  double max_stretch = 0.0;
  double delivered_fraction = 0.0;
};

namespace detail {

/// Hops of the tree route src -> dst inside one cluster tree: climb while
/// dst's interval is not below, then descend into the containing child.
/// If `path` is given, every vertex after src is appended in visit order —
/// the equivalence gate compares these sequences against the flat engine.
inline int tree_route_hops(const RoutingScheme& s, int src, int dst,
                           std::vector<int>* path = nullptr) {
  int hops = 0, cur = src;
  while (cur != dst) {
    if (s.tin[cur] <= s.tin[dst] && s.tin[dst] <= s.tout[cur]) {
      int next = -1;  // descend: the unique child interval containing dst
      for (int ch : s.kids[cur]) {
        if (s.tin[ch] <= s.tin[dst] && s.tin[dst] <= s.tout[ch]) {
          next = ch;
          break;
        }
      }
      if (next < 0) return -1;  // corrupt labels; cannot happen on a tree
      cur = next;
    } else {
      if (s.up[cur] < 0) return -1;
      cur = s.up[cur];
    }
    if (path != nullptr) path->push_back(cur);
    ++hops;
  }
  return hops;
}

}  // namespace detail

/// Build the two-level scheme over a (connected-cluster) decomposition.
inline RoutingScheme build_routing_scheme(const Graph& g,
                                          const decomp::Clustering& parts) {
  RoutingScheme s;
  s.n = g.n();
  s.k = parts.k;
  s.cluster = parts.cluster;
  s.center.assign(s.k, -1);
  s.up.assign(s.n, -1);
  s.tin.assign(s.n, 0);
  s.tout.assign(s.n, 0);
  s.kids.assign(s.n, {});

  // Centers (minimum-id member) and per-cluster BFS trees toward them.
  for (int v = 0; v < s.n; ++v) {
    if (s.center[s.cluster[v]] < 0) s.center[s.cluster[v]] = v;
  }
  std::vector<int> frontier, next;
  std::vector<char> seen(s.n, 0);
  for (int c = 0; c < s.k; ++c) {
    const int root = s.center[c];
    if (root < 0) continue;
    seen[root] = 1;
    frontier.assign(1, root);
    while (!frontier.empty()) {
      next.clear();
      for (int u : frontier) {
        for (int w : g.neighbors(u)) {
          if (!seen[w] && s.cluster[w] == c) {
            seen[w] = 1;
            s.up[w] = u;
            s.kids[u].push_back(w);
            next.push_back(w);
          }
        }
      }
      std::swap(frontier, next);
    }
  }
  // DFS intervals per tree (one shared counter keeps labels globally unique).
  {
    int timer = 0;
    std::vector<std::pair<int, std::size_t>> stack;  // (vertex, child slot)
    for (int c = 0; c < s.k; ++c) {
      if (s.center[c] < 0) continue;
      stack.push_back({s.center[c], 0});
      s.tin[s.center[c]] = timer++;
      while (!stack.empty()) {
        auto& [v, slot] = stack.back();
        if (slot < s.kids[v].size()) {
          const int ch = s.kids[v][slot++];
          s.tin[ch] = timer++;
          stack.push_back({ch, 0});
        } else {
          s.tout[v] = timer - 1;
          stack.pop_back();
        }
      }
    }
  }

  // Cluster graph: adjacency + the first-seen portal edge per cluster pair.
  std::vector<std::vector<int>> cadj(s.k);
  std::map<std::pair<int, int>, std::pair<int, int>> any_portal;
  for (int u = 0; u < s.n; ++u) {
    for (int w : g.neighbors(u)) {
      const int a = s.cluster[u], b = s.cluster[w];
      if (a == b) continue;
      if (any_portal.emplace(std::make_pair(a, b), std::make_pair(u, w))
              .second) {
        cadj[a].push_back(b);
      }
    }
  }
  // BFS spanning forest of the cluster graph; keep portals only along tree
  // edges (that is all the scheme ever crosses).
  s.cparent.assign(s.k, -1);
  s.ckids.assign(s.k, {});
  s.ctin.assign(s.k, 0);
  s.ctout.assign(s.k, 0);
  std::vector<char> cseen(s.k, 0);
  for (int root = 0; root < s.k; ++root) {
    if (cseen[root]) continue;
    cseen[root] = 1;
    frontier.assign(1, root);
    while (!frontier.empty()) {
      next.clear();
      for (int c : frontier) {
        for (int d : cadj[c]) {
          if (cseen[d]) continue;
          cseen[d] = 1;
          s.cparent[d] = c;
          s.ckids[c].push_back(d);
          s.portal[{c, d}] = any_portal[{c, d}];
          s.portal[{d, c}] = any_portal[{d, c}];
          next.push_back(d);
        }
      }
      std::swap(frontier, next);
    }
  }
  {
    int timer = 0;
    std::vector<std::pair<int, std::size_t>> stack;
    for (int root = 0; root < s.k; ++root) {
      if (s.cparent[root] >= 0) continue;
      stack.push_back({root, 0});
      s.ctin[root] = timer++;
      while (!stack.empty()) {
        auto& [c, slot] = stack.back();
        if (slot < s.ckids[c].size()) {
          const int ch = s.ckids[c][slot++];
          s.ctin[ch] = timer++;
          stack.push_back({ch, 0});
        } else {
          s.ctout[c] = timer - 1;
          stack.pop_back();
        }
      }
    }
  }
  return s;
}

/// Route u -> v through the scheme; returns hop count, or -1 if
/// undeliverable (different components). Never inspects the graph beyond
/// the tables. This is the pointer-walk serial reference the flattened
/// engine below is equivalence-gated against (the PR 6 contract); if `path`
/// is given, every vertex after u is appended in visit order.
inline int route_hops(const RoutingScheme& s, int u, int v,
                      std::vector<int>* path = nullptr) {
  int hops = 0, cur = u;
  int guard = 8 * s.n + 8;  // defensive loop cap
  while (s.cluster[cur] != s.cluster[v]) {
    const int c = s.cluster[cur], tc = s.cluster[v];
    // Cluster-tree step: descend toward tc's interval, else climb.
    int d = -1;
    if (s.ctin[c] <= s.ctin[tc] && s.ctin[tc] <= s.ctout[c]) {
      for (int ch : s.ckids[c]) {
        if (s.ctin[ch] <= s.ctin[tc] && s.ctin[tc] <= s.ctout[ch]) {
          d = ch;
          break;
        }
      }
    } else {
      d = s.cparent[c];
    }
    if (d < 0) return -1;  // different components
    const auto it = s.portal.find({c, d});
    if (it == s.portal.end()) return -1;
    const int up_hops = detail::tree_route_hops(s, cur, it->second.first, path);
    if (up_hops < 0) return -1;
    hops += up_hops + 1;  // to the portal vertex, then across the edge
    cur = it->second.second;
    if (path != nullptr) path->push_back(cur);
    if ((guard -= up_hops + 1) < 0) return -1;
  }
  const int down = detail::tree_route_hops(s, cur, v, path);
  return down < 0 ? -1 : hops + down;
}

/// Sample `pairs` connected (u, v) pairs and compare route length against
/// BFS distance. Stretch of a pair = route hops / dist(u, v).
inline StretchStats measure_stretch(const Graph& g, const RoutingScheme& s,
                                    int pairs, Rng& rng) {
  StretchStats st;
  if (g.n() < 2 || pairs <= 0) return st;
  int sampled = 0, delivered = 0;
  double sum = 0.0;
  for (int trial = 0; trial < 8 * pairs && sampled < pairs; ++trial) {
    const int u = static_cast<int>(rng.next_below(g.n()));
    const int v = static_cast<int>(rng.next_below(g.n()));
    if (u == v) continue;
    const std::vector<int> dist = bfs_distances(g, u);
    if (dist[v] < 0) continue;  // different components: not a routing pair
    ++sampled;
    const int hops = route_hops(s, u, v);
    if (hops < 0) continue;
    ++delivered;
    const double stretch =
        static_cast<double>(hops) / static_cast<double>(dist[v]);
    sum += stretch;
    st.max_stretch = std::max(st.max_stretch, stretch);
  }
  st.delivered_fraction =
      sampled == 0 ? 0.0
                   : static_cast<double>(delivered) / static_cast<double>(sampled);
  st.avg_stretch = delivered == 0 ? 0.0 : sum / delivered;
  return st;
}

// ---------------------------------------------------------------------------
// The flattened query-serving tier.
// ---------------------------------------------------------------------------

/// RoutingScheme flattened into contiguous, cache-friendly arrays: one
/// record array plus one CSR child-list array per level. Child lists are
/// stored in ascending DFS-entry-time order (which is how the builder
/// emits them), so the interval descend step is a binary search for the
/// last child whose entry time is <= the target's — child intervals tile
/// the parent's, so that child is the unique containing one. Immutable
/// after flatten_routing_scheme; safe for concurrent readers.
struct FlatRoutingTables {
  /// Level-0 per-vertex record: everything a climb/descend step reads.
  struct VertexRec {
    std::int32_t cluster = -1;  // cluster id
    std::int32_t up = -1;       // BFS-tree parent toward the center
    std::int32_t tin = 0, tout = 0;            // own DFS interval
    std::int32_t kids_begin = 0, kids_end = 0; // slice of `child`
  };
  /// Level-0 CSR payload: (entry time, vertex id) per tree child.
  struct ChildRec {
    std::int32_t tin = 0;  // the binary-search key
    std::int32_t id = -1;  // the hop target
  };
  /// Level-1 per-cluster record (what the pointer scheme keeps at the
  /// center), including the portal toward the cluster-tree parent.
  struct ClusterRec {
    std::int32_t parent = -1;
    std::int32_t ctin = 0, ctout = 0;
    std::int32_t kids_begin = 0, kids_end = 0;  // slice of `cchild`
    std::int32_t portal_src = -1, portal_dst = -1;  // toward parent
  };
  /// Level-1 CSR payload: child cluster + the portal edge into it.
  struct ClusterChildRec {
    std::int32_t ctin = 0;
    std::int32_t id = -1;
    std::int32_t portal_src = -1, portal_dst = -1;
  };

  int n = 0, k = 0;
  std::vector<VertexRec> vertex;       // size n
  std::vector<ChildRec> child;         // size n - #cluster-centers
  std::vector<ClusterRec> cluster;     // size k
  std::vector<ClusterChildRec> cchild; // size k - #cluster-tree-roots

  /// Measured footprint of the four arrays — what the serving bench
  /// reports as bytes/vertex (the flat analogue of table_bits()).
  std::int64_t table_bytes() const {
    return static_cast<std::int64_t>(vertex.size() * sizeof(VertexRec)) +
           static_cast<std::int64_t>(child.size() * sizeof(ChildRec)) +
           static_cast<std::int64_t>(cluster.size() * sizeof(ClusterRec)) +
           static_cast<std::int64_t>(cchild.size() * sizeof(ClusterChildRec));
  }
  double bytes_per_vertex() const {
    return n == 0 ? 0.0
                  : static_cast<double>(table_bytes()) / static_cast<double>(n);
  }
};

/// Flatten a built RoutingScheme. Pure layout transformation: every field is
/// copied, none recomputed, so the flat engine can only route exactly as the
/// pointer walk does.
inline FlatRoutingTables flatten_routing_scheme(const RoutingScheme& s) {
  FlatRoutingTables t;
  t.n = s.n;
  t.k = s.k;
  t.vertex.resize(static_cast<std::size_t>(s.n));
  std::size_t kids_total = 0;
  for (int v = 0; v < s.n; ++v) kids_total += s.kids[v].size();
  t.child.reserve(kids_total);
  for (int v = 0; v < s.n; ++v) {
    FlatRoutingTables::VertexRec& r = t.vertex[static_cast<std::size_t>(v)];
    r.cluster = s.cluster[v];
    r.up = s.up[v];
    r.tin = s.tin[v];
    r.tout = s.tout[v];
    r.kids_begin = static_cast<std::int32_t>(t.child.size());
    for (int ch : s.kids[v]) {  // already in ascending-tin (DFS) order
      t.child.push_back({s.tin[ch], ch});
    }
    r.kids_end = static_cast<std::int32_t>(t.child.size());
  }
  t.cluster.resize(static_cast<std::size_t>(s.k));
  std::size_t ckids_total = 0;
  for (int c = 0; c < s.k; ++c) ckids_total += s.ckids[c].size();
  t.cchild.reserve(ckids_total);
  for (int c = 0; c < s.k; ++c) {
    FlatRoutingTables::ClusterRec& r = t.cluster[static_cast<std::size_t>(c)];
    r.parent = s.cparent[c];
    r.ctin = s.ctin[c];
    r.ctout = s.ctout[c];
    if (r.parent >= 0) {
      const auto it = s.portal.find({c, r.parent});
      if (it != s.portal.end()) {
        r.portal_src = it->second.first;
        r.portal_dst = it->second.second;
      }
    }
    r.kids_begin = static_cast<std::int32_t>(t.cchild.size());
    for (int d : s.ckids[c]) {  // ascending-ctin order by construction
      FlatRoutingTables::ClusterChildRec cc;
      cc.ctin = s.ctin[d];
      cc.id = d;
      const auto it = s.portal.find({c, d});
      if (it != s.portal.end()) {
        cc.portal_src = it->second.first;
        cc.portal_dst = it->second.second;
      }
      t.cchild.push_back(cc);
    }
    r.kids_end = static_cast<std::int32_t>(t.cchild.size());
  }
  return t;
}

namespace detail {

/// Flat tree route src -> dst inside one cluster tree; same climb/descend
/// walk as tree_route_hops, with the descend resolved by binary search over
/// the CSR child slice instead of a linear interval scan. Child intervals
/// tile the parent's interval, so "last child with tin <= dst's tin" is the
/// unique containing child the reference's scan finds.
inline int flat_tree_route_hops(const FlatRoutingTables& t, int src, int dst,
                                std::vector<int>* path = nullptr) {
  const std::int32_t dtin = t.vertex[static_cast<std::size_t>(dst)].tin;
  int hops = 0, cur = src;
  while (cur != dst) {
    const FlatRoutingTables::VertexRec& r =
        t.vertex[static_cast<std::size_t>(cur)];
    if (r.tin <= dtin && dtin <= r.tout) {
      const FlatRoutingTables::ChildRec* first = t.child.data() + r.kids_begin;
      const FlatRoutingTables::ChildRec* last = t.child.data() + r.kids_end;
      const FlatRoutingTables::ChildRec* it = std::upper_bound(
          first, last, dtin,
          [](std::int32_t key, const FlatRoutingTables::ChildRec& c) {
            return key < c.tin;
          });
      if (it == first) return -1;  // corrupt labels; cannot happen on a tree
      cur = (it - 1)->id;
    } else {
      if (r.up < 0) return -1;
      cur = r.up;
    }
    if (path != nullptr) path->push_back(cur);
    ++hops;
  }
  return hops;
}

}  // namespace detail

/// Route u -> v from the flattened tables; identical semantics, hop counts
/// and visited-vertex sequences to route_hops (the equivalence-gated
/// contract). Read-only: safe to call concurrently from many threads.
inline int flat_route_hops(const FlatRoutingTables& t, int u, int v,
                           std::vector<int>* path = nullptr) {
  int hops = 0, cur = u;
  int guard = 8 * t.n + 8;  // defensive loop cap (matches the reference)
  const std::int32_t tc = t.vertex[static_cast<std::size_t>(v)].cluster;
  const std::int32_t tctin = t.cluster[static_cast<std::size_t>(tc)].ctin;
  while (t.vertex[static_cast<std::size_t>(cur)].cluster != tc) {
    const FlatRoutingTables::ClusterRec& cr =
        t.cluster[static_cast<std::size_t>(
            t.vertex[static_cast<std::size_t>(cur)].cluster)];
    std::int32_t psrc = -1, pdst = -1;
    if (cr.ctin <= tctin && tctin <= cr.ctout) {
      const FlatRoutingTables::ClusterChildRec* first =
          t.cchild.data() + cr.kids_begin;
      const FlatRoutingTables::ClusterChildRec* last =
          t.cchild.data() + cr.kids_end;
      const FlatRoutingTables::ClusterChildRec* it = std::upper_bound(
          first, last, tctin,
          [](std::int32_t key, const FlatRoutingTables::ClusterChildRec& c) {
            return key < c.ctin;
          });
      if (it == first) return -1;
      psrc = (it - 1)->portal_src;
      pdst = (it - 1)->portal_dst;
    } else {
      if (cr.parent < 0) return -1;  // different components
      psrc = cr.portal_src;
      pdst = cr.portal_dst;
    }
    if (psrc < 0 || pdst < 0) return -1;
    const int up_hops = detail::flat_tree_route_hops(t, cur, psrc, path);
    if (up_hops < 0) return -1;
    hops += up_hops + 1;  // to the portal vertex, then across the edge
    cur = pdst;
    if (path != nullptr) path->push_back(cur);
    if ((guard -= up_hops + 1) < 0) return -1;
  }
  const int down = detail::flat_tree_route_hops(t, cur, v, path);
  return down < 0 ? -1 : hops + down;
}

/// First hop from cur toward v — the per-packet forwarding primitive a
/// router node would evaluate. Returns cur when cur == v, -1 when
/// undeliverable.
inline int flat_next_hop(const FlatRoutingTables& t, int cur, int v) {
  if (cur == v) return cur;
  std::vector<int> path;
  path.reserve(1);
  // One walk step is enough: route the packet and take the first vertex.
  // (flat_route_hops appends hops in order, so path[0] is the next hop.)
  const int hops = flat_route_hops(t, cur, v, &path);
  return hops <= 0 || path.empty() ? -1 : path.front();
}

/// Serve a batch of (s, t) queries from the flattened tables, fanning
/// chunks across a lent ShardPool. The tables are immutable and every chunk
/// writes only its own slice of `out_hops`, so the hot path takes no locks
/// and the output is independent of the thread count (the determinism gate
/// in tests/test_route_serve.cpp). pool == nullptr or 1 thread serves
/// inline — the serial reference path.
inline void serve_route_queries(const FlatRoutingTables& t,
                                const std::vector<std::pair<int, int>>& queries,
                                std::vector<int>& out_hops,
                                congest::ShardPool* pool = nullptr,
                                std::int64_t grain = 4096) {
  const std::int64_t total = static_cast<std::int64_t>(queries.size());
  out_hops.assign(queries.size(), -1);
  const auto body = [&](std::int64_t lo, std::int64_t hi, int /*worker*/) {
    for (std::int64_t i = lo; i < hi; ++i) {
      const auto& [qs, qt] = queries[static_cast<std::size_t>(i)];
      out_hops[static_cast<std::size_t>(i)] = flat_route_hops(t, qs, qt);
    }
  };
  if (pool == nullptr || pool->threads() == 1) {
    body(0, total, 0);
    return;
  }
  congest::parallel_chunks(*pool, total, grain, body);
}

}  // namespace mfd::apps
