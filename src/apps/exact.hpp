// Exact maximum independent set (and the exact covers derived from it) —
// the centralized baselines the Section-6 approximation applications are
// graded against (bench_mis, bench_matching_vc, bench_kernels), and the
// per-cluster solver apps/approx.hpp runs inside decomposition clusters.
// Branch and bound with the standard reductions: degree-0/1 vertices are
// always taken, components whose maximum degree is at most 2 (cycles after
// the reduction) are solved in closed form, and branching picks a
// maximum-degree vertex (include N[v]-deleted vs exclude v-deleted). The
// solver reconstructs an actual optimal set, not just its size.
// Exponential worst case — intended for the small-n exact baselines and
// decomposition clusters only (the benches stay at n <= a few hundred on
// sparse minor-free instances, where the reductions keep the tree tiny).
// An optional node budget turns the search anytime: once the budget is
// spent, open subproblems finish with a greedy min-degree completion (still
// a valid independent set) and the solver reports exact() == false.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace mfd::apps {

/// An optimal independent set (max_independent_set) or vertex cover
/// (min_vertex_cover), as a sorted vertex list.
struct MisResult {
  std::vector<int> set;
};

/// Search-effort report from a budgeted MIS/VC run: branch nodes explored
/// and whether the search finished inside its budget (exact result).
struct MisSearchReport {
  std::int64_t nodes = 0;
  bool exact = true;
};

namespace detail {

class MisSolver {
 public:
  explicit MisSolver(const Graph& g, std::int64_t node_budget = -1)
      : g_(g), budget_(node_budget), alive_(g.n(), 1), deg_(g.n()) {
    for (int v = 0; v < g.n(); ++v) deg_[v] = g.degree(v);
  }

  std::vector<int> solve() {
    std::vector<int> chosen;
    branch(chosen);
    std::sort(chosen.begin(), chosen.end());
    return chosen;
  }

  std::int64_t nodes() const { return nodes_; }
  bool exact() const { return exact_; }

 private:
  void remove(int v, std::vector<int>& removed) {
    alive_[v] = 0;
    removed.push_back(v);
    for (int w : g_.neighbors(v)) {
      if (alive_[w]) --deg_[w];
    }
  }

  void restore(std::vector<int>& removed, std::size_t mark) {
    while (removed.size() > mark) {
      const int v = removed.back();
      removed.pop_back();
      alive_[v] = 1;
      for (int w : g_.neighbors(v)) {
        if (alive_[w]) ++deg_[w];
      }
    }
  }

  // Solve the remaining graph exactly (or greedily once the node budget is
  // spent); appends a valid — optimal while exact_ holds — set for it to
  // `chosen`. Mutates alive_/deg_ and restores them before returning.
  int branch(std::vector<int>& chosen) {
    ++nodes_;
    std::vector<int> removed;
    int taken = 0;
    // Reduce: repeatedly take degree-0/1 vertices (always optimal).
    bool changed = true;
    while (changed) {
      changed = false;
      for (int v = 0; v < g_.n(); ++v) {
        if (!alive_[v] || deg_[v] > 1) continue;
        ++taken;
        chosen.push_back(v);
        changed = true;
        if (deg_[v] == 1) {
          for (int w : g_.neighbors(v)) {
            if (alive_[w]) {
              remove(w, removed);
              break;
            }
          }
        }
        remove(v, removed);
      }
    }
    // Pick a branching vertex; leftovers (max degree <= 2) are exact.
    int pivot = -1;
    for (int v = 0; v < g_.n(); ++v) {
      if (alive_[v] && deg_[v] >= 3 && (pivot < 0 || deg_[v] > deg_[pivot])) {
        pivot = v;
      }
    }
    int best;
    if (pivot < 0) {
      best = taken + paths_and_cycles(chosen);
    } else if (budget_ >= 0 && nodes_ >= budget_) {
      // Budget spent: greedy completion. Repeatedly take a min-degree
      // vertex and delete its closed neighborhood until the leftovers are
      // paths/cycles (solved exactly). Valid, not necessarily optimal.
      exact_ = false;
      int extra = 0;
      for (;;) {
        int v = -1;
        for (int u = 0; u < g_.n(); ++u) {
          if (alive_[u] && deg_[u] >= 3 && (v < 0 || deg_[u] < deg_[v])) {
            v = u;
          }
        }
        if (v < 0) break;
        ++extra;
        chosen.push_back(v);
        for (int w : g_.neighbors(v)) {
          if (alive_[w]) remove(w, removed);
        }
        remove(v, removed);
      }
      best = taken + extra + paths_and_cycles(chosen);
    } else {
      // Exclude pivot.
      const std::size_t mark = removed.size();
      std::vector<int> without_set, with_set;
      remove(pivot, removed);
      const int without = branch(without_set);
      restore(removed, mark);
      // Include pivot: drop its closed neighborhood.
      remove(pivot, removed);
      for (int w : g_.neighbors(pivot)) {
        if (alive_[w]) remove(w, removed);
      }
      const int with = 1 + branch(with_set);
      if (with >= without) {
        chosen.push_back(pivot);
        chosen.insert(chosen.end(), with_set.begin(), with_set.end());
        best = taken + with;
      } else {
        chosen.insert(chosen.end(), without_set.begin(), without_set.end());
        best = taken + without;
      }
    }
    restore(removed, 0);
    return best;
  }

  // All remaining components have max degree <= 2: alpha(path_k) =
  // ceil(k/2), alpha(cycle_k) = floor(k/2). Walk each component in path
  // order and take every other vertex (odd cycles drop the last).
  int paths_and_cycles(std::vector<int>& chosen) {
    int total = 0;
    std::vector<char> seen(g_.n(), 0);
    for (int s = 0; s < g_.n(); ++s) {
      if (!alive_[s] || seen[s]) continue;
      // Find an endpoint if the component is a path; else it is a cycle.
      int start = s;
      bool is_cycle = true;
      {
        std::vector<int> stack = {s};
        std::vector<int> comp;
        seen[s] = 1;
        while (!stack.empty()) {
          const int v = stack.back();
          stack.pop_back();
          comp.push_back(v);
          if (deg_[v] < 2) {
            is_cycle = false;
            start = v;
          }
          for (int w : g_.neighbors(v)) {
            if (alive_[w] && !seen[w]) {
              seen[w] = 1;
              stack.push_back(w);
            }
          }
        }
      }
      // Ordered walk from `start` (an endpoint for paths, arbitrary for
      // cycles); take even positions, skipping an odd cycle's last slot.
      std::vector<int> order;
      int prev = -1, cur = start;
      for (;;) {
        order.push_back(cur);
        int nxt = -1;
        for (int w : g_.neighbors(cur)) {
          if (alive_[w] && w != prev && (w != start || order.size() <= 1)) {
            nxt = w;
            break;
          }
        }
        prev = cur;
        if (nxt < 0 || nxt == start) break;
        cur = nxt;
      }
      const int size = static_cast<int>(order.size());
      const int take = is_cycle ? size / 2 : (size + 1) / 2;
      for (int i = 0; i < take; ++i) chosen.push_back(order[2 * i]);
      total += take;
    }
    return total;
  }

  const Graph& g_;
  std::int64_t budget_;      // max branch nodes; -1 = unbounded
  std::int64_t nodes_ = 0;   // branch nodes explored
  bool exact_ = true;        // false once a greedy completion ran
  std::vector<char> alive_;
  std::vector<int> deg_;
};

}  // namespace detail

/// A maximum independent set of g (the actual set, sorted). Exponential
/// worst case; intended for the exact small-instance baselines and
/// decomposition clusters.
inline MisResult max_independent_set(const Graph& g) {
  return {detail::MisSolver(g).solve()};
}

/// Budget-bounded variant: explores at most `node_budget` branch nodes,
/// finishing over-budget subproblems with a greedy min-degree completion
/// (always a valid independent set). Fills `report` with nodes explored and
/// whether the search stayed exact. node_budget < 0 means unbounded.
inline MisResult max_independent_set(const Graph& g, std::int64_t node_budget,
                                     MisSearchReport* report) {
  detail::MisSolver solver(g, node_budget);
  MisResult out{solver.solve()};
  if (report) {
    report->nodes = solver.nodes();
    report->exact = solver.exact();
  }
  return out;
}

/// A minimum vertex cover of g: the complement of a maximum independent set
/// (König-free exactness — valid on every graph since V \ I covers all
/// edges and |V| - alpha(G) is optimal).
inline MisResult min_vertex_cover(const Graph& g) {
  const MisResult mis = max_independent_set(g);
  std::vector<char> in_set(g.n(), 0);
  for (int v : mis.set) in_set[v] = 1;
  MisResult out;
  for (int v = 0; v < g.n(); ++v) {
    if (!in_set[v]) out.set.push_back(v);
  }
  return out;
}

/// Budget-bounded vertex cover: complement of the budgeted MIS. The
/// complement of ANY independent set covers every edge, so the result is a
/// valid cover even when the search blew its budget (report->exact false —
/// the cover is then merely not guaranteed minimum).
inline MisResult min_vertex_cover(const Graph& g, std::int64_t node_budget,
                                  MisSearchReport* report) {
  const MisResult mis = max_independent_set(g, node_budget, report);
  std::vector<char> in_set(g.n(), 0);
  for (int v : mis.set) in_set[v] = 1;
  MisResult out;
  for (int v = 0; v < g.n(); ++v) {
    if (!in_set[v]) out.set.push_back(v);
  }
  return out;
}

}  // namespace mfd::apps
