// Exact maximum independent set — the centralized baseline the Theorem 1.2
// MIS/approximation applications will be graded against (bench_mis,
// bench_kernels). Branch and bound with the standard reductions: degree-0/1
// vertices are always taken, components whose maximum degree is at most 2
// (paths and cycles) are solved in closed form, and branching picks a
// maximum-degree vertex (include N[v]-deleted vs exclude v-deleted).
// Exponential worst case — intended for the small-n exact baselines only
// (the benches stay at n <= a few hundred on sparse minor-free instances,
// where the reductions keep the tree tiny).
#pragma once

#include <algorithm>
#include <vector>

#include "graph/graph.hpp"

namespace mfd::apps {

namespace detail {

class MisSolver {
 public:
  explicit MisSolver(const Graph& g) : g_(g), alive_(g.n(), 1), deg_(g.n()) {
    for (int v = 0; v < g.n(); ++v) deg_[v] = g.degree(v);
  }

  int solve() { return branch(); }

 private:
  void remove(int v, std::vector<int>& removed) {
    alive_[v] = 0;
    removed.push_back(v);
    for (int w : g_.neighbors(v)) {
      if (alive_[w]) --deg_[w];
    }
  }

  void restore(std::vector<int>& removed, std::size_t mark) {
    while (removed.size() > mark) {
      const int v = removed.back();
      removed.pop_back();
      alive_[v] = 1;
      for (int w : g_.neighbors(v)) {
        if (alive_[w]) ++deg_[w];
      }
    }
  }

  // Solve the remaining graph exactly. Mutates alive_/deg_ and restores
  // them before returning.
  int branch() {
    std::vector<int> removed;
    int taken = 0;
    // Reduce: repeatedly take degree-0/1 vertices (always optimal).
    bool changed = true;
    while (changed) {
      changed = false;
      for (int v = 0; v < g_.n(); ++v) {
        if (!alive_[v] || deg_[v] > 1) continue;
        ++taken;
        changed = true;
        if (deg_[v] == 1) {
          for (int w : g_.neighbors(v)) {
            if (alive_[w]) {
              remove(w, removed);
              break;
            }
          }
        }
        remove(v, removed);
      }
    }
    // Pick a branching vertex; paths/cycles (max degree <= 2) are exact.
    int pivot = -1;
    for (int v = 0; v < g_.n(); ++v) {
      if (alive_[v] && deg_[v] >= 3 && (pivot < 0 || deg_[v] > deg_[pivot])) {
        pivot = v;
      }
    }
    int best;
    if (pivot < 0) {
      best = taken + paths_and_cycles();
    } else {
      // Exclude pivot.
      const std::size_t mark = removed.size();
      remove(pivot, removed);
      const int without = branch();
      restore(removed, mark);
      // Include pivot: drop its closed neighborhood.
      remove(pivot, removed);
      for (int w : g_.neighbors(pivot)) {
        if (alive_[w]) remove(w, removed);
      }
      const int with = 1 + branch();
      best = taken + std::max(without, with);
    }
    restore(removed, 0);
    return best;
  }

  // All remaining components have max degree <= 2: alpha(path_k) =
  // ceil(k/2), alpha(cycle_k) = floor(k/2).
  int paths_and_cycles() {
    int total = 0;
    std::vector<char> seen(g_.n(), 0);
    for (int s = 0; s < g_.n(); ++s) {
      if (!alive_[s] || seen[s]) continue;
      int size = 0;
      bool is_cycle = true;
      std::vector<int> stack = {s};
      seen[s] = 1;
      while (!stack.empty()) {
        const int v = stack.back();
        stack.pop_back();
        ++size;
        if (deg_[v] < 2) is_cycle = false;
        for (int w : g_.neighbors(v)) {
          if (alive_[w] && !seen[w]) {
            seen[w] = 1;
            stack.push_back(w);
          }
        }
      }
      total += is_cycle ? size / 2 : (size + 1) / 2;
    }
    return total;
  }

  const Graph& g_;
  std::vector<char> alive_;
  std::vector<int> deg_;
};

}  // namespace detail

/// Size of a maximum independent set of g. Exponential worst case; intended
/// for the exact small-instance baselines.
inline int max_independent_set(const Graph& g) {
  return detail::MisSolver(g).solve();
}

}  // namespace mfd::apps
