// The treewidth-DP solver tier — width-bounded exact kernels for the apps/
// cluster ladder (ROADMAP: "Treewidth-DP solver tier for medium clusters").
//
// The paper's decompositions emit clusters from minor-free families whose
// treewidth is structurally bounded (outerplanar tw <= 2, k-trees tw = k,
// R x C grids tw = min(R, C)), so an exponential per-cluster search
// (MdsBranch, MisSolver, gray-code max-cut) is the wrong tool exactly where
// the ladder needs it most: medium clusters that blow the branch-and-bound
// budget but have small width. This header turns those solves into
// O(f(w) * n) dynamic programs:
//
//   * tree_decomposition — deterministic greedy elimination-order search
//     (min-fill and min-degree candidates, best width wins, plus a bounded
//     width-improving local refinement pass that retries adjacent-position
//     swaps around the peak bags). The branch-decomposition-flavored search
//     strategy mirrors the treedec exemplar (SNIPPETS.md): enumerate cheap
//     candidate strategies, keep the best certificate. An abort_width makes
//     the ladder's probe cheap on wide clusters: the greedy bails the moment
//     every remaining choice would exceed the cap.
//   * nice_tree_decomposition — conversion to the introduce/forget/join
//     normal form every kernel programs against. Node children always have
//     smaller ids than their parent, so a plain ascending loop IS the
//     bottom-up DP order and reconstruction is a top-down stack walk.
//   * Four DP kernels, each reconstructing a witness (not just a value):
//     MIS (2^w subset states), MDS (the covered/dominated 3-state encoding:
//     black = in set, white = must be dominated, gray = no requirement —
//     monotone tables make the join a 4^w white-split enumeration), VC (the
//     complement of the MIS kernel, exact on every graph), and max-cut
//     (side-assignment states; join subtracts the bag-internal cut counted
//     once per branch).
//
// Memory contract: DP value tables live only while a parent still needs
// them (children are consumed in the ascending loop and freed); witnesses
// are reconstructed from per-forget choice bits and per-join white-split
// masks, so peak memory is O(3^w * w) per live table, not O(3^w * n).
//
// The shared ladder vocabulary (LadderConfig / SolveTier / TierReport /
// accumulate_tier) lives here too: domination.hpp, approx.hpp and
// maxcut.hpp all rewire their per-cluster solves through the same
// width-gated four-tier ladder (forest tree-DP -> treewidth DP when the
// computed width is <= tw_cap -> budgeted branch & bound -> pruned greedy)
// and report per-tier cluster counts plus B&B effort into
// congest::SolverStats.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "congest/runtime.hpp"
#include "graph/graph.hpp"

namespace mfd::apps {

/// A tree decomposition as bags plus a parent forest over bag ids. Bag i is
/// the closed neighborhood of the i-th eliminated vertex at its elimination;
/// parent[i] is always > i (the bag of the earliest-eliminated later bag
/// member), which makes ascending bag order a valid children-first order.
struct TreeDecomposition {
  std::vector<std::vector<int>> bags;  // each sorted ascending
  std::vector<int> parent;             // parent bag id; -1 for roots
  int width = -1;                      // max |bag| - 1 (-1 for empty graphs)
  bool complete = false;               // false iff the search hit abort_width
};

/// Nice tree decomposition: every node is a leaf (empty bag), introduce
/// (child bag + vertex), forget (child bag - vertex) or join (two children
/// with identical bags). Children ids are strictly smaller than the parent
/// id; the root has an empty bag.
struct NiceTreeDecomposition {
  enum Kind : int { kLeaf = 0, kIntroduce = 1, kForget = 2, kJoin = 3 };
  struct Node {
    int kind = kLeaf;
    int vertex = -1;  // the introduced/forgotten vertex (kIntroduce/kForget)
    int left = -1;    // child id (all kinds but kLeaf)
    int right = -1;   // second child id (kJoin only)
    std::vector<int> bag;  // sorted ascending
  };
  std::vector<Node> nodes;
  int root = -1;
  int width = -1;
};

/// Which rung of the cluster ladder solved a cluster.
enum class SolveTier : int {
  kForest = 0,       // exact forest/tree DP (or parity sides for max-cut)
  kTreewidthDp = 1,  // width-gated nice-tree-decomposition DP (exact)
  kBranchBound = 2,  // budgeted exact search that finished within budget
  kGreedy = 3,       // pruned-greedy fallback (budget blown or forced)
};

/// Solver selection for the ladder, wired to the benches' --solver flag.
enum class SolverMode : int {
  kAuto = 0,        // full ladder: forest -> tw-DP -> B&B -> greedy
  kTreewidth = 1,   // forest -> tw-DP -> greedy (no B&B rescue)
  kBranchBound = 2, // the pre-tw ladder: forest -> B&B -> greedy
  kGreedy = 3,      // greedy tier only (the ratio floor)
};

/// Per-cluster ladder knobs. tw_cap is the width gate: the DP runs only
/// when the computed decomposition width is <= tw_cap. It is HARD-CLAMPED
/// to 13 inside the ladders — the MDS kernel's tables are 3^(w+1) entries
/// and its join enumerates 4^(w+1) white-splits, so a generous knob must
/// not silently ask for gigabytes (same rationale as max_cut's exact_cap
/// clamp). tw_max_n bounds the decomposition search itself (the greedy is
/// quadratic in the worst case); node_budget is the B&B tier's budget.
struct LadderConfig {
  int tw_cap = 10;
  int tw_max_n = 4096;
  std::int64_t node_budget = 250'000;
  SolverMode mode = SolverMode::kAuto;
};

/// What one cluster solve reports back to the fold: the tier that produced
/// the answer, the computed width (when a decomposition was attempted), and
/// the B&B effort (nodes explored, budget survived) when that tier ran.
struct TierReport {
  bool solved = false;
  SolveTier tier = SolveTier::kGreedy;
  int width = -1;
  bool bb_ran = false;
  bool bb_exact = false;
  std::int64_t bb_nodes = 0;
  double ms = 0.0;  // wall time of this cluster's solve
};

/// Fold one cluster's report into the solver's stats (always in cluster
/// order — the callers' determinism contract).
inline void accumulate_tier(congest::SolverStats& stats, const TierReport& r) {
  if (!r.solved) return;
  switch (r.tier) {
    case SolveTier::kForest: ++stats.tier_forest; break;
    case SolveTier::kTreewidthDp: ++stats.tier_tw_dp; break;
    case SolveTier::kBranchBound: ++stats.tier_bb; break;
    case SolveTier::kGreedy: ++stats.tier_greedy; break;
  }
  if (r.tier == SolveTier::kTreewidthDp) {
    stats.max_width_dp = std::max(stats.max_width_dp, r.width);
  }
  if (r.bb_ran) {
    ++stats.bb_runs;
    stats.bb_nodes += r.bb_nodes;
    if (r.bb_exact) ++stats.bb_exact_runs;
  }
  stats.solve_ms += r.ms;
}

inline const char* solver_mode_name(SolverMode m) {
  switch (m) {
    case SolverMode::kAuto: return "auto";
    case SolverMode::kTreewidth: return "tw";
    case SolverMode::kBranchBound: return "bb";
    case SolverMode::kGreedy: return "greedy";
  }
  return "auto";
}

/// Parse a --solver flag value; unknown strings fall back to kAuto (the
/// benches warn via Cli, the ladder never dies on a typo).
inline SolverMode solver_mode_from_string(const std::string& s) {
  if (s == "tw") return SolverMode::kTreewidth;
  if (s == "bb") return SolverMode::kBranchBound;
  if (s == "greedy") return SolverMode::kGreedy;
  return SolverMode::kAuto;
}

namespace detail {

/// The elimination game both greedy strategies and the bag construction
/// simulate: eliminating v turns its current neighborhood into a clique and
/// removes v. Set-based adjacency — clusters are small and sparse, and the
/// ladder's abort_width caps the cliques the game ever builds.
class EliminationGame {
 public:
  explicit EliminationGame(const Graph& g) : adj_(g.n()), alive_(g.n(), 1) {
    for (int v = 0; v < g.n(); ++v) {
      for (int w : g.neighbors(v)) adj_[v].insert(w);
    }
  }

  int degree(int v) const { return static_cast<int>(adj_[v].size()); }
  bool alive(int v) const { return alive_[v] != 0; }
  const std::set<int>& neighbors(int v) const { return adj_[v]; }

  /// Fill-in of v: pairs of current neighbors not yet adjacent.
  std::int64_t fill(int v) const {
    std::int64_t f = 0;
    const std::set<int>& nb = adj_[v];
    for (auto it = nb.begin(); it != nb.end(); ++it) {
      auto jt = it;
      for (++jt; jt != nb.end(); ++jt) {
        if (adj_[*it].count(*jt) == 0) ++f;
      }
    }
    return f;
  }

  /// Eliminate v; returns its closed bag {v} + N(v), sorted.
  std::vector<int> eliminate(int v) {
    std::vector<int> nb(adj_[v].begin(), adj_[v].end());
    for (std::size_t i = 0; i < nb.size(); ++i) {
      adj_[nb[i]].erase(v);
      for (std::size_t j = i + 1; j < nb.size(); ++j) {
        adj_[nb[i]].insert(nb[j]);
        adj_[nb[j]].insert(nb[i]);
      }
    }
    adj_[v].clear();
    alive_[v] = 0;
    nb.push_back(v);
    std::sort(nb.begin(), nb.end());
    return nb;
  }

 private:
  std::vector<std::set<int>> adj_;
  std::vector<char> alive_;
};

struct ElimOrder {
  std::vector<int> order;
  int width = -1;
  bool complete = false;
};

/// One greedy elimination order. strategy 0 = min-degree (tie: smaller id);
/// strategy 1 = min-fill (tie: smaller degree, then smaller id). With an
/// abort_width >= 0 the search bails as soon as every remaining choice
/// would create a bag wider than abort_width + 1 — and min-fill only scores
/// candidates within the cap, so hub vertices never cost a quadratic fill
/// count during a capped ladder probe.
inline ElimOrder greedy_elimination_order(const Graph& g, int strategy,
                                          int abort_width) {
  const int n = g.n();
  ElimOrder out;
  out.order.reserve(n);
  EliminationGame game(g);
  const int deg_cap =
      abort_width >= 0 ? abort_width : std::numeric_limits<int>::max();
  std::vector<std::int64_t> fill(n, -1);  // -1 = stale, recompute on demand
  for (int step = 0; step < n; ++step) {
    int best = -1;
    std::int64_t best_fill = 0;
    for (int v = 0; v < n; ++v) {
      if (!game.alive(v)) continue;
      const int d = game.degree(v);
      if (d > deg_cap) continue;  // can never be the capped choice
      if (strategy == 0) {
        if (best < 0 || d < game.degree(best)) best = v;
      } else {
        if (fill[v] < 0) fill[v] = game.fill(v);
        if (best < 0 || fill[v] < best_fill ||
            (fill[v] == best_fill && d < game.degree(best))) {
          best = v;
          best_fill = fill[v];
        }
      }
    }
    if (best < 0) {  // every alive vertex exceeds the cap: abort
      out.width = n;
      out.complete = false;
      return out;
    }
    out.width = std::max(out.width, game.degree(best));
    const std::vector<int> bag = game.eliminate(best);
    if (strategy == 1) {
      // Elimination rewires the neighborhood: fill counts of the bag members
      // and everything adjacent to them are stale.
      for (int u : bag) {
        if (u == best || !game.alive(u)) continue;
        fill[u] = -1;
        for (int w : game.neighbors(u)) fill[w] = -1;
      }
    }
    out.order.push_back(best);
  }
  out.complete = true;
  if (n == 0) out.width = -1;
  return out;
}

/// Width of a full elimination order (simulate and take the max bag - 1);
/// per_degree[i] receives the elimination degree at position i when non-null.
/// With abort_width >= 0 the simulation stops (and returns the offending
/// degree) the moment a step exceeds the cap — no oversized clique is ever
/// materialized, so evaluating a bad order on a wide cluster stays cheap.
inline int elimination_order_width(const Graph& g, const std::vector<int>& order,
                                   std::vector<int>* per_degree = nullptr,
                                   int abort_width = -1) {
  EliminationGame game(g);
  int width = g.n() == 0 ? -1 : 0;
  if (per_degree != nullptr) per_degree->assign(order.size(), 0);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const int d = game.degree(order[i]);
    if (per_degree != nullptr) (*per_degree)[i] = d;
    width = std::max(width, d);
    if (abort_width >= 0 && width > abort_width) return width;
    game.eliminate(order[i]);
  }
  return width;
}

/// BFS-layer sweep order: per connected component, BFS from a
/// pseudo-peripheral vertex (double BFS, ties to the smaller id) and
/// eliminate in (distance, id) order. This is the separator-shaped order
/// greedy fill/degree plateau on: a k x k grid eliminates layer by layer at
/// width exactly k where min-fill stalls around 4k/3 — and grid-like
/// clusters are precisely the bench_mds showcase the DP tier targets.
inline std::vector<int> bfs_sweep_order(const Graph& g) {
  const int n = g.n();
  std::vector<int> dist(n, -1), comp(n, -1), order;
  order.reserve(n);
  std::vector<int> queue;
  // BFS from s over vertices with comp == mark; returns the farthest vertex
  // (ties to the smaller id, which BFS queue order delivers for free).
  const auto bfs = [&](int s, int mark) {
    queue.assign(1, s);
    dist[s] = 0;
    int far = s;
    for (std::size_t h = 0; h < queue.size(); ++h) {
      const int v = queue[h];
      if (dist[v] > dist[far]) far = v;
      for (int w : g.neighbors(v)) {
        if (comp[w] == mark && dist[w] < 0) {
          dist[w] = dist[v] + 1;
          queue.push_back(w);
        }
      }
    }
    return far;
  };
  for (int s = 0; s < n; ++s) {
    if (comp[s] >= 0) continue;
    // Pass 1 marks the component and finds a peripheral start.
    queue.assign(1, s);
    comp[s] = s;
    for (std::size_t h = 0; h < queue.size(); ++h) {
      for (int w : g.neighbors(queue[h])) {
        if (comp[w] < 0) {
          comp[w] = s;
          queue.push_back(w);
        }
      }
    }
    const std::vector<int> members = queue;
    for (int v : members) dist[v] = -1;
    const int start = bfs(s, s);
    for (int v : members) dist[v] = -1;
    bfs(start, s);
    // (distance, id) order — stable sort over the id-sorted member list.
    std::vector<int> layer = members;
    std::sort(layer.begin(), layer.end());
    std::stable_sort(layer.begin(), layer.end(),
                     [&dist](int a, int b) { return dist[a] < dist[b]; });
    order.insert(order.end(), layer.begin(), layer.end());
  }
  return order;
}

}  // namespace detail

/// Deterministic tree-decomposition search: run the min-fill and min-degree
/// greedy orders plus a BFS-layer sweep order (optimal on grid-like clusters
/// where greedy plateaus), keep the smallest complete width, then (on
/// clusters small enough to afford re-simulation) a local refinement pass
/// that tries adjacent swaps around peak-width positions and keeps strict
/// improvements. abort_width >= 0 makes the search a cheap probe: it returns
/// complete = false the moment every candidate exceeds the cap (the ladder
/// then skips the DP without having paid for a full decomposition of a wide
/// cluster).
inline TreeDecomposition tree_decomposition(const Graph& g,
                                            int abort_width = -1) {
  TreeDecomposition td;
  const int n = g.n();
  if (n == 0) {
    td.width = -1;
    td.complete = true;
    return td;
  }
  detail::ElimOrder fill = detail::greedy_elimination_order(g, 1, abort_width);
  detail::ElimOrder deg = detail::greedy_elimination_order(g, 0, abort_width);
  detail::ElimOrder sweep;
  sweep.order = detail::bfs_sweep_order(g);
  sweep.width =
      detail::elimination_order_width(g, sweep.order, nullptr, abort_width);
  sweep.complete = abort_width < 0 || sweep.width <= abort_width;
  detail::ElimOrder* best = nullptr;
  for (detail::ElimOrder* cand : {&fill, &deg, &sweep}) {
    if (!cand->complete) continue;
    if (best == nullptr || cand->width < best->width) best = cand;
  }
  if (best == nullptr) {
    td.width = n;  // sentinel: wider than any cap that asked for the probe
    td.complete = false;
    return td;
  }
  std::vector<int> order = std::move(best->order);
  int width = best->width;

  // Width-improving local refinement: re-simulation is O(n * w^2 * log n),
  // so only clusters small enough to afford a few dozen probes refine.
  if (n <= 512) {
    for (int pass = 0; pass < 2; ++pass) {
      std::vector<int> degs;
      width = detail::elimination_order_width(g, order, &degs);
      bool improved = false;
      int tried = 0;
      for (int i = 0; i < n && tried < 32; ++i) {
        if (degs[i] != width) continue;  // only attack peak positions
        for (const int j : {i - 1, i + 1}) {
          if (j < 0 || j >= n) continue;
          ++tried;
          std::swap(order[i], order[j]);
          const int w2 = detail::elimination_order_width(g, order);
          if (w2 < width) {
            width = w2;
            improved = true;
            break;
          }
          std::swap(order[i], order[j]);
        }
        if (improved) break;
      }
      if (!improved) break;
    }
  }

  // Build bags and the parent forest from the final order: bag i is the
  // closed neighborhood of order[i] at its elimination; its parent is the
  // bag of the earliest-eliminated other bag member.
  detail::EliminationGame game(g);
  std::vector<int> elim_pos(n, -1);
  td.bags.resize(n);
  for (int i = 0; i < n; ++i) {
    elim_pos[order[i]] = i;
    td.bags[i] = game.eliminate(order[i]);
  }
  td.parent.assign(n, -1);
  td.width = n == 0 ? -1 : 0;
  for (int i = 0; i < n; ++i) {
    td.width = std::max(td.width, static_cast<int>(td.bags[i].size()) - 1);
    int best_pos = n;
    for (int u : td.bags[i]) {
      if (u == order[i]) continue;
      best_pos = std::min(best_pos, elim_pos[u]);
    }
    td.parent[i] = best_pos < n ? best_pos : -1;
  }
  td.complete = true;
  return td;
}

/// Validity checker (the tests' oracle): every vertex in some bag, every
/// edge inside some bag, and for every vertex the bags containing it form a
/// connected subtree of the (forest-shaped) bag tree.
inline bool valid_tree_decomposition(const Graph& g,
                                     const TreeDecomposition& td) {
  const int n = g.n();
  const int k = static_cast<int>(td.bags.size());
  std::vector<char> seen(n, 0);
  for (const std::vector<int>& bag : td.bags) {
    for (int v : bag) {
      if (v < 0 || v >= n) return false;
      seen[v] = 1;
    }
    if (!std::is_sorted(bag.begin(), bag.end())) return false;
  }
  for (int v = 0; v < n; ++v) {
    if (!seen[v]) return false;
  }
  // Edge coverage: some bag contains both endpoints.
  for (int u = 0; u < n; ++u) {
    for (int v : g.neighbors(u)) {
      if (u > v) continue;
      bool covered = false;
      for (int b = 0; b < k && !covered; ++b) {
        covered = std::binary_search(td.bags[b].begin(), td.bags[b].end(), u) &&
                  std::binary_search(td.bags[b].begin(), td.bags[b].end(), v);
      }
      if (!covered) return false;
    }
  }
  // Connectivity: within the bag forest (acyclic by parent construction),
  // the bags containing v induce a connected subgraph iff their induced
  // edge count is exactly their count minus one per... they must form ONE
  // tree: nodes - edges == 1.
  for (int v = 0; v < n; ++v) {
    int nodes = 0, edges = 0;
    for (int b = 0; b < k; ++b) {
      if (!std::binary_search(td.bags[b].begin(), td.bags[b].end(), v)) continue;
      ++nodes;
      const int p = td.parent[b];
      if (p >= 0 &&
          std::binary_search(td.bags[p].begin(), td.bags[p].end(), v)) {
        ++edges;
      }
    }
    if (nodes == 0 || edges != nodes - 1) return false;
  }
  int width = -1;
  for (const std::vector<int>& bag : td.bags) {
    width = std::max(width, static_cast<int>(bag.size()) - 1);
  }
  return width == td.width;
}

/// Convert a (complete) tree decomposition to nice form. Children always
/// get smaller node ids than their parents, so `for (i = 0..nodes)` is the
/// DP order and no recursion is ever needed.
inline NiceTreeDecomposition nice_tree_decomposition(
    const TreeDecomposition& td) {
  NiceTreeDecomposition nd;
  nd.width = td.width;
  const int k = static_cast<int>(td.bags.size());
  if (k == 0) return nd;

  const auto add_node = [&nd](int kind, int vertex, int left, int right,
                              std::vector<int> bag) {
    NiceTreeDecomposition::Node node;
    node.kind = kind;
    node.vertex = vertex;
    node.left = left;
    node.right = right;
    node.bag = std::move(bag);
    nd.nodes.push_back(std::move(node));
    return static_cast<int>(nd.nodes.size()) - 1;
  };

  // Forget/introduce chain from one bag to another along a tree edge.
  const auto lift = [&](int nice_id, const std::vector<int>& from,
                        const std::vector<int>& to) {
    std::vector<int> bag = from;
    for (int v : from) {
      if (std::binary_search(to.begin(), to.end(), v)) continue;
      bag.erase(std::find(bag.begin(), bag.end(), v));
      nice_id = add_node(NiceTreeDecomposition::kForget, v, nice_id, -1, bag);
    }
    for (int v : to) {
      if (std::binary_search(from.begin(), from.end(), v)) continue;
      bag.insert(std::upper_bound(bag.begin(), bag.end(), v), v);
      nice_id = add_node(NiceTreeDecomposition::kIntroduce, v, nice_id, -1, bag);
    }
    return nice_id;
  };

  std::vector<std::vector<int>> children(k);
  std::vector<int> roots;
  for (int i = 0; i < k; ++i) {
    if (td.parent[i] >= 0) {
      children[td.parent[i]].push_back(i);
    } else {
      roots.push_back(i);
    }
  }
  // Ascending bag order is children-first (parent[i] > i by construction).
  std::vector<int> top(k, -1);
  for (int i = 0; i < k; ++i) {
    int acc = -1;
    for (int c : children[i]) {
      const int branch = lift(top[c], td.bags[c], td.bags[i]);
      acc = acc < 0 ? branch
                    : add_node(NiceTreeDecomposition::kJoin, -1, acc, branch,
                               td.bags[i]);
    }
    if (acc < 0) {  // leaf bag: build up from the empty bag
      acc = add_node(NiceTreeDecomposition::kLeaf, -1, -1, -1, {});
      acc = lift(acc, {}, td.bags[i]);
    }
    top[i] = acc;
  }
  // Forget every root bag down to the empty bag, then join the components.
  int acc = -1;
  for (int r : roots) {
    const int t = lift(top[r], td.bags[r], {});
    acc = acc < 0 ? t
                  : add_node(NiceTreeDecomposition::kJoin, -1, acc, t, {});
  }
  nd.root = acc;
  return nd;
}

/// The ladder's width gate: true iff the cluster is eligible (mode allows
/// the DP tier, n <= tw_max_n) and the capped decomposition search
/// certifies width <= the clamped tw_cap; fills `nd` with the nice
/// decomposition the kernels consume (nd.width is the certified width).
/// The probe passes abort_width = cap + 2 — slack for greedy suboptimality —
/// and re-checks the final width against the cap, so a wide cluster costs
/// only the aborted greedy, never a full decomposition.
inline bool ladder_tw_probe(const Graph& g, const LadderConfig& cfg,
                            NiceTreeDecomposition& nd) {
  if (cfg.mode != SolverMode::kAuto && cfg.mode != SolverMode::kTreewidth) {
    return false;
  }
  if (g.n() > cfg.tw_max_n) return false;
  const int cap = std::min(cfg.tw_cap, 13);  // see LadderConfig::tw_cap
  if (cap < 0) return false;
  const TreeDecomposition td = tree_decomposition(g, cap + 2);
  if (!td.complete || td.width > cap) return false;
  nd = nice_tree_decomposition(td);
  return true;
}

namespace detail {

inline int remove_bit(int s, int p) {
  return (s & ((1 << p) - 1)) | ((s >> (p + 1)) << p);
}
inline int insert_bit(int s, int p, int bit) {
  const int low = s & ((1 << p) - 1);
  return low | (bit << p) | ((s >> p) << (p + 1));
}

/// Position of v in a sorted bag (must be present).
inline int bag_pos(const std::vector<int>& bag, int v) {
  return static_cast<int>(
      std::lower_bound(bag.begin(), bag.end(), v) - bag.begin());
}

/// Bitmask (over bag positions) of g-neighbors of v inside the bag.
inline int bag_neighbor_mask(const Graph& g, const std::vector<int>& bag,
                             int v) {
  int mask = 0;
  for (int w : g.neighbors(v)) {
    const auto it = std::lower_bound(bag.begin(), bag.end(), w);
    if (it != bag.end() && *it == w) {
      mask |= 1 << static_cast<int>(it - bag.begin());
    }
  }
  return mask;
}

inline int popcount(unsigned x) {
  int c = 0;
  while (x != 0) {
    x &= x - 1;
    ++c;
  }
  return c;
}

}  // namespace detail

/// Maximum independent set via the 2^w subset DP over a nice decomposition.
/// Returns the witness set (sorted). Exact on every graph the decomposition
/// is valid for.
inline std::vector<int> tw_max_independent_set(
    const Graph& g, const NiceTreeDecomposition& nd) {
  if (g.n() == 0 || nd.root < 0) return {};
  using detail::bag_neighbor_mask;
  using detail::bag_pos;
  using detail::insert_bit;
  using detail::popcount;
  using detail::remove_bit;
  constexpr std::int32_t kNeg = std::numeric_limits<std::int32_t>::min() / 4;
  const int m = static_cast<int>(nd.nodes.size());
  std::vector<std::vector<std::int32_t>> table(m);
  std::vector<std::vector<std::uint64_t>> forget_take(m);  // bit: take v

  for (int i = 0; i < m; ++i) {
    const NiceTreeDecomposition::Node& x = nd.nodes[i];
    const int b = static_cast<int>(x.bag.size());
    switch (x.kind) {
      case NiceTreeDecomposition::kLeaf:
        table[i] = {0};
        break;
      case NiceTreeDecomposition::kIntroduce: {
        const int p = bag_pos(x.bag, x.vertex);
        const int nb = bag_neighbor_mask(g, x.bag, x.vertex) & ~(1 << p);
        const std::vector<std::int32_t>& child = table[x.left];
        table[i].assign(std::size_t{1} << b, kNeg);
        for (int s = 0; s < (1 << b); ++s) {
          const int cs = remove_bit(s, p);
          if (((s >> p) & 1) == 0) {
            table[i][s] = child[cs];
          } else if ((s & nb) == 0 && child[cs] != kNeg) {
            table[i][s] = child[cs] + 1;
          }
        }
        table[x.left].clear();
        table[x.left].shrink_to_fit();
        break;
      }
      case NiceTreeDecomposition::kForget: {
        const int p = bag_pos(nd.nodes[x.left].bag, x.vertex);
        const std::vector<std::int32_t>& child = table[x.left];
        table[i].assign(std::size_t{1} << b, kNeg);
        forget_take[i].assign(((std::size_t{1} << b) + 63) / 64, 0);
        for (int s = 0; s < (1 << b); ++s) {
          const int s0 = insert_bit(s, p, 0);
          const int s1 = insert_bit(s, p, 1);
          if (child[s1] != kNeg && child[s1] > child[s0]) {
            table[i][s] = child[s1];
            forget_take[i][static_cast<std::size_t>(s) / 64] |=
                std::uint64_t{1} << (s % 64);
          } else {
            table[i][s] = child[s0];
          }
        }
        table[x.left].clear();
        table[x.left].shrink_to_fit();
        break;
      }
      case NiceTreeDecomposition::kJoin: {
        const std::vector<std::int32_t>& a = table[x.left];
        const std::vector<std::int32_t>& c = table[x.right];
        table[i].assign(std::size_t{1} << b, kNeg);
        for (int s = 0; s < (1 << b); ++s) {
          if (a[s] != kNeg && c[s] != kNeg) {
            table[i][s] = a[s] + c[s] - popcount(static_cast<unsigned>(s));
          }
        }
        table[x.left].clear();
        table[x.left].shrink_to_fit();
        table[x.right].clear();
        table[x.right].shrink_to_fit();
        break;
      }
    }
  }

  // Top-down witness reconstruction from the root (empty bag, state 0).
  std::vector<char> in_set(g.n(), 0);
  std::vector<std::pair<int, int>> stack = {{nd.root, 0}};
  while (!stack.empty()) {
    const auto [i, s] = stack.back();
    stack.pop_back();
    const NiceTreeDecomposition::Node& x = nd.nodes[i];
    switch (x.kind) {
      case NiceTreeDecomposition::kLeaf:
        break;
      case NiceTreeDecomposition::kIntroduce: {
        const int p = bag_pos(x.bag, x.vertex);
        if ((s >> p) & 1) in_set[x.vertex] = 1;
        stack.emplace_back(x.left, remove_bit(s, p));
        break;
      }
      case NiceTreeDecomposition::kForget: {
        const int p = bag_pos(nd.nodes[x.left].bag, x.vertex);
        const int bit = static_cast<int>(
            (forget_take[i][static_cast<std::size_t>(s) / 64] >> (s % 64)) & 1);
        stack.emplace_back(x.left, insert_bit(s, p, bit));
        break;
      }
      case NiceTreeDecomposition::kJoin:
        stack.emplace_back(x.left, s);
        stack.emplace_back(x.right, s);
        break;
    }
  }
  std::vector<int> out;
  for (int v = 0; v < g.n(); ++v) {
    if (in_set[v]) out.push_back(v);
  }
  return out;
}

/// Minimum vertex cover: the complement of the MIS kernel's witness (exact
/// on every graph — |V| - alpha(G) is optimal and V \ I covers all edges).
inline std::vector<int> tw_min_vertex_cover(const Graph& g,
                                            const NiceTreeDecomposition& nd) {
  const std::vector<int> mis = tw_max_independent_set(g, nd);
  std::vector<char> in_set(g.n(), 0);
  for (int v : mis) in_set[v] = 1;
  std::vector<int> out;
  for (int v = 0; v < g.n(); ++v) {
    if (!in_set[v]) out.push_back(v);
  }
  return out;
}

/// Minimum dominating set via the covered/dominated 3-state encoding over a
/// nice decomposition (black = in set, white = must be dominated, gray = no
/// requirement; monotone tables, so the join splits white duties between
/// the branches — a 4^w enumeration). Reconstructs the witness from
/// per-forget choice bits and per-join white-split masks.
inline std::vector<int> tw_min_dominating_set(const Graph& g,
                                              const NiceTreeDecomposition& nd) {
  if (g.n() == 0 || nd.root < 0) return {};
  using detail::bag_pos;
  constexpr std::int32_t kInf = std::numeric_limits<std::int32_t>::max() / 4;
  // pow3 up to the widest bag (+1 slack for insertion arithmetic).
  std::vector<int> pow3 = {1};
  for (int i = 0; i < nd.width + 3; ++i) pow3.push_back(pow3.back() * 3);
  const auto digit = [&pow3](int s, int p) { return (s / pow3[p]) % 3; };
  const int m = static_cast<int>(nd.nodes.size());
  std::vector<std::vector<std::int32_t>> table(m);
  std::vector<std::vector<std::uint64_t>> forget_black(m);  // bit: v black
  std::vector<std::vector<std::uint16_t>> join_split(m);    // white-split mask

  // Neighbor POSITIONS of the introduced vertex within the introduce bag
  // (the MDS transitions need positions, not a bitmask, for digit edits).
  const auto neighbor_positions = [&](const NiceTreeDecomposition::Node& x) {
    std::vector<int> nbp;
    for (int w : g.neighbors(x.vertex)) {
      const auto it = std::lower_bound(x.bag.begin(), x.bag.end(), w);
      if (it != x.bag.end() && *it == w) {
        nbp.push_back(static_cast<int>(it - x.bag.begin()));
      }
    }
    return nbp;
  };

  for (int i = 0; i < m; ++i) {
    const NiceTreeDecomposition::Node& x = nd.nodes[i];
    const int b = static_cast<int>(x.bag.size());
    switch (x.kind) {
      case NiceTreeDecomposition::kLeaf:
        table[i] = {0};
        break;
      case NiceTreeDecomposition::kIntroduce: {
        const int p = bag_pos(x.bag, x.vertex);
        const std::vector<int> nbp = neighbor_positions(x);
        std::vector<int> nbq;  // bag neighbors of v, in CHILD-bag coordinates
        for (int q : nbp) {
          if (q != p) nbq.push_back(q < p ? q : q - 1);
        }
        const std::vector<std::int32_t>& child = table[x.left];
        table[i].assign(static_cast<std::size_t>(pow3[b]), kInf);
        // Division-free hot loop: enumerate CHILD states cs with a base-3
        // odometer (digs) and write the three parent states that re-insert
        // digit p. base = cs with a zero digit spliced in at p; the nested
        // high/low loops keep cs sequential so the odometer is O(1)/step.
        const int bc = b - 1;
        std::vector<int> digs(bc + 1, 0);
        int cs = 0;
        for (int high = 0; high < pow3[bc - p]; ++high) {
          const int base_hi = high * pow3[p + 1];
          for (int low = 0; low < pow3[p]; ++low, ++cs) {
            const int base = base_hi + low;
            const std::int32_t cv = child[cs];
            // Gray introduce: no requirement on v, child value carries over.
            table[i][base + 2 * pow3[p]] = cv;
            bool black_nb = false;
            int cs2 = cs;
            for (int qq : nbq) {
              if (digs[qq] == 0) black_nb = true;
              if (digs[qq] == 1) cs2 += pow3[qq];  // white -> gray
            }
            // White introduce: v must already have a black bag neighbor —
            // nothing below the bag can be adjacent to a fresh vertex.
            if (black_nb) table[i][base + pow3[p]] = cv;
            // Black introduce: v dominates its white bag neighbors, so the
            // child may leave them gray (monotone tables: gray <= white).
            if (child[cs2] < kInf) table[i][base] = child[cs2] + 1;
            for (int t = 0; ++digs[t] == 3; ++t) digs[t] = 0;
          }
        }
        table[x.left].clear();
        table[x.left].shrink_to_fit();
        break;
      }
      case NiceTreeDecomposition::kForget: {
        const int p = bag_pos(nd.nodes[x.left].bag, x.vertex);
        const std::vector<std::int32_t>& child = table[x.left];
        table[i].assign(static_cast<std::size_t>(pow3[b]), kInf);
        forget_black[i].assign((static_cast<std::size_t>(pow3[b]) + 63) / 64,
                               0);
        // Insert digit p: forgotten vertices must end black or white
        // (dominated) — gray would leave the requirement unchecked. Parent
        // states s stay sequential as high strides over digit p, so the
        // loop body is division-free.
        int s = 0;
        for (int high = 0; high < pow3[b - p]; ++high) {
          const int base_hi = high * pow3[p + 1];
          for (int low = 0; low < pow3[p]; ++low, ++s) {
            const int base = base_hi + low;
            const std::int32_t cb = child[base];            // v black
            const std::int32_t cw = child[base + pow3[p]];  // v white
            if (cb < cw) {
              table[i][s] = cb;
              forget_black[i][static_cast<std::size_t>(s) / 64] |=
                  std::uint64_t{1} << (s % 64);
            } else {
              table[i][s] = cw;
            }
          }
        }
        table[x.left].clear();
        table[x.left].shrink_to_fit();
        break;
      }
      case NiceTreeDecomposition::kJoin: {
        const std::vector<std::int32_t>& a = table[x.left];
        const std::vector<std::int32_t>& c = table[x.right];
        table[i].assign(static_cast<std::size_t>(pow3[b]), kInf);
        join_split[i].assign(static_cast<std::size_t>(pow3[b]), 0);
        std::vector<int> digs(b + 1, 0);  // base-3 odometer over s
        std::vector<int> wp;  // white positions of the current state
        for (int s = 0; s < pow3[b]; ++s) {
          int blacks = 0;
          wp.clear();
          for (int p = 0; p < b; ++p) {
            if (digs[p] == 0) ++blacks;
            if (digs[p] == 1) wp.push_back(p);
          }
          const int nw = static_cast<int>(wp.size());
          std::int32_t best = kInf;
          std::uint16_t best_mask = 0;
          for (int mask = 0; mask < (1 << nw); ++mask) {
            // mask bit j set: white wp[j] stays white in the LEFT child
            // (gray on the right); clear: white on the right, gray left.
            int f1 = s, f2 = s;
            for (int j = 0; j < nw; ++j) {
              if ((mask >> j) & 1) {
                f2 += pow3[wp[j]];  // white -> gray on the right
              } else {
                f1 += pow3[wp[j]];  // white -> gray on the left
              }
            }
            if (a[f1] >= kInf || c[f2] >= kInf) continue;
            const std::int32_t v = a[f1] + c[f2] - blacks;
            if (v < best) {
              best = v;
              best_mask = static_cast<std::uint16_t>(mask);
            }
          }
          table[i][s] = best;
          join_split[i][s] = best_mask;
          for (int t = 0; ++digs[t] == 3; ++t) digs[t] = 0;
        }
        table[x.left].clear();
        table[x.left].shrink_to_fit();
        table[x.right].clear();
        table[x.right].shrink_to_fit();
        break;
      }
    }
  }

  // Reconstruction: walk root -> leaves replaying the recorded choices.
  std::vector<char> in_set(g.n(), 0);
  std::vector<std::pair<int, int>> stack = {{nd.root, 0}};
  while (!stack.empty()) {
    const auto [i, s] = stack.back();
    stack.pop_back();
    const NiceTreeDecomposition::Node& x = nd.nodes[i];
    const int b = static_cast<int>(x.bag.size());
    switch (x.kind) {
      case NiceTreeDecomposition::kLeaf:
        break;
      case NiceTreeDecomposition::kIntroduce: {
        const int p = bag_pos(x.bag, x.vertex);
        const int dv = digit(s, p);
        int cs = s % pow3[p] + (s / pow3[p + 1]) * pow3[p];
        if (dv == 0) {
          in_set[x.vertex] = 1;
          const std::vector<int> nbp = neighbor_positions(x);
          for (int q : nbp) {
            if (q == p) continue;
            const int qq = q < p ? q : q - 1;
            if ((cs / pow3[qq]) % 3 == 1) cs += pow3[qq];
          }
        }
        stack.emplace_back(x.left, cs);
        break;
      }
      case NiceTreeDecomposition::kForget: {
        const int p = bag_pos(nd.nodes[x.left].bag, x.vertex);
        const int black = static_cast<int>(
            (forget_black[i][static_cast<std::size_t>(s) / 64] >> (s % 64)) &
            1);
        const int base = s % pow3[p] + (s / pow3[p]) * pow3[p + 1];
        stack.emplace_back(x.left, black ? base : base + pow3[p]);
        break;
      }
      case NiceTreeDecomposition::kJoin: {
        const int mask = join_split[i][s];
        int f1 = s, f2 = s, j = 0;
        for (int p = 0; p < b; ++p) {
          if (digit(s, p) != 1) continue;
          if ((mask >> j) & 1) {
            f2 += pow3[p];
          } else {
            f1 += pow3[p];
          }
          ++j;
        }
        stack.emplace_back(x.left, f1);
        stack.emplace_back(x.right, f2);
        break;
      }
    }
  }
  std::vector<int> out;
  for (int v = 0; v < g.n(); ++v) {
    if (in_set[v]) out.push_back(v);
  }
  return out;
}

/// Max-cut witness from the treewidth DP.
struct TwCut {
  std::int64_t cut_edges = 0;
  std::vector<char> side;
};

/// Maximum cut via the 2^w side-assignment DP. Every edge is counted at the
/// introduce of its later endpoint; joins subtract the bag-internal cut
/// that both branches counted once each.
inline TwCut tw_max_cut(const Graph& g, const NiceTreeDecomposition& nd) {
  TwCut out;
  out.side.assign(g.n(), 0);
  if (g.n() == 0 || nd.root < 0) return out;
  using detail::bag_neighbor_mask;
  using detail::bag_pos;
  using detail::insert_bit;
  using detail::popcount;
  using detail::remove_bit;
  const int m = static_cast<int>(nd.nodes.size());
  std::vector<std::vector<std::int64_t>> table(m);
  std::vector<std::vector<std::uint64_t>> forget_one(m);  // bit: v on side 1

  for (int i = 0; i < m; ++i) {
    const NiceTreeDecomposition::Node& x = nd.nodes[i];
    const int b = static_cast<int>(x.bag.size());
    switch (x.kind) {
      case NiceTreeDecomposition::kLeaf:
        table[i] = {0};
        break;
      case NiceTreeDecomposition::kIntroduce: {
        const int p = bag_pos(x.bag, x.vertex);
        const int nb = bag_neighbor_mask(g, x.bag, x.vertex) & ~(1 << p);
        const std::vector<std::int64_t>& child = table[x.left];
        table[i].assign(std::size_t{1} << b, 0);
        for (int s = 0; s < (1 << b); ++s) {
          const int cs = remove_bit(s, p);
          const int gain = ((s >> p) & 1)
                               ? popcount(static_cast<unsigned>(nb & ~s))
                               : popcount(static_cast<unsigned>(nb & s));
          table[i][s] = child[cs] + gain;
        }
        table[x.left].clear();
        table[x.left].shrink_to_fit();
        break;
      }
      case NiceTreeDecomposition::kForget: {
        const int p = bag_pos(nd.nodes[x.left].bag, x.vertex);
        const std::vector<std::int64_t>& child = table[x.left];
        table[i].assign(std::size_t{1} << b, 0);
        forget_one[i].assign(((std::size_t{1} << b) + 63) / 64, 0);
        for (int s = 0; s < (1 << b); ++s) {
          const std::int64_t c0 = child[insert_bit(s, p, 0)];
          const std::int64_t c1 = child[insert_bit(s, p, 1)];
          if (c1 > c0) {
            table[i][s] = c1;
            forget_one[i][static_cast<std::size_t>(s) / 64] |=
                std::uint64_t{1} << (s % 64);
          } else {
            table[i][s] = c0;
          }
        }
        table[x.left].clear();
        table[x.left].shrink_to_fit();
        break;
      }
      case NiceTreeDecomposition::kJoin: {
        // Bag-internal edges were counted once per branch — subtract one
        // copy of the bag cut under each state.
        std::vector<std::pair<int, int>> bag_edges;
        for (int pi = 0; pi < b; ++pi) {
          for (int w : g.neighbors(x.bag[pi])) {
            const auto it = std::lower_bound(x.bag.begin(), x.bag.end(), w);
            if (it != x.bag.end() && *it == w) {
              const int pj = static_cast<int>(it - x.bag.begin());
              if (pi < pj) bag_edges.emplace_back(pi, pj);
            }
          }
        }
        const std::vector<std::int64_t>& a = table[x.left];
        const std::vector<std::int64_t>& c = table[x.right];
        table[i].assign(std::size_t{1} << b, 0);
        for (int s = 0; s < (1 << b); ++s) {
          std::int64_t bag_cut = 0;
          for (const auto& [pi, pj] : bag_edges) {
            bag_cut += ((s >> pi) ^ (s >> pj)) & 1;
          }
          table[i][s] = a[s] + c[s] - bag_cut;
        }
        table[x.left].clear();
        table[x.left].shrink_to_fit();
        table[x.right].clear();
        table[x.right].shrink_to_fit();
        break;
      }
    }
  }
  out.cut_edges = table[nd.root][0];

  std::vector<std::pair<int, int>> stack = {{nd.root, 0}};
  while (!stack.empty()) {
    const auto [i, s] = stack.back();
    stack.pop_back();
    const NiceTreeDecomposition::Node& x = nd.nodes[i];
    switch (x.kind) {
      case NiceTreeDecomposition::kLeaf:
        break;
      case NiceTreeDecomposition::kIntroduce: {
        const int p = bag_pos(x.bag, x.vertex);
        out.side[x.vertex] = static_cast<char>((s >> p) & 1);
        stack.emplace_back(x.left, remove_bit(s, p));
        break;
      }
      case NiceTreeDecomposition::kForget: {
        const int p = bag_pos(nd.nodes[x.left].bag, x.vertex);
        const int bit = static_cast<int>(
            (forget_one[i][static_cast<std::size_t>(s) / 64] >> (s % 64)) & 1);
        stack.emplace_back(x.left, insert_bit(s, p, bit));
        break;
      }
      case NiceTreeDecomposition::kJoin:
        stack.emplace_back(x.left, s);
        stack.emplace_back(x.right, s);
        break;
    }
  }
  return out;
}

}  // namespace mfd::apps
