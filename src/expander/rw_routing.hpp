// Lemmas 2.5 / 2.6 — information gathering by derandomized lazy random walks.
//
// Same task as load_balance.hpp (one token per intra-part edge endpoint must
// reach the sink v*, target fraction 1 - f), but each token performs a lazy
// random walk inside its expander part and is absorbed on hitting v*. All
// walks draw their moves from one published pseudorandom seed via a counter
// hash, so the whole routing is determined by O(1) words of shared
// randomness: that is the Lemma 2.5 derandomization, simulated here as an
// explicit seed search — try seeds from a fixed deterministic sequence until
// one delivers the target fraction (doubling the walk length on alternate
// failures), then publish it. RwSchedule records the accepted seed, how many
// seeds were tried, and the schedule size in bits (shared seed + one walk
// descriptor each). Lemma 2.6 is gather_random_walks_shared: one seed must
// work for every disjoint subgraph simultaneously.
//
// Round accounting (units: simulated CONGEST rounds) is *measured*, not a
// formula: every walk round costs the worst per-edge congestion of that round
// (edges carry one token per direction per round, extra tokens queue), so
// rounds = sum over rounds of max(1, max directed-edge load). The split
// between ideal walk rounds and queueing surplus is recorded through the
// congest::Runtime substrate, along with the measured message count (edge
// traversals) and peak per-edge congestion.
//
// The default inner loop is the batched per-round engine (walks bucketed by
// current vertex, one adjacency-row touch per occupied vertex per round);
// RwSimEngine::kSerial keeps the original token-serial loop as the reference
// the equivalence test compares against — both are bit-identical in outcome.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "congest/runtime.hpp"
#include "congest/shard.hpp"
#include "decomp/clustering.hpp"
#include "expander/split.hpp"

namespace mfd::expander {

/// Which inner-loop the walk simulation runs. All three are bit-identical in
/// outcome (same per-walk counter hash, same congestion accounting — the
/// equivalence tests pin this); kBatched groups the walks by current vertex
/// so each round touches every adjacency row once instead of once per walk,
/// which is what lets the simulation scale past the token-serial regime the
/// ROADMAP flagged. kSharded additionally partitions the vertices across a
/// congest::ShardPool with double-buffered per-round message exchange
/// between shards and a per-shard congest::ShardedMeter — the multi-core
/// engine for the multi-million-vertex benches. kSerial is kept as the
/// reference implementation.
enum class RwSimEngine { kBatched, kSerial, kSharded };

struct RwParams {
  double laziness = 0.5;   // stay-put probability per round
  std::int64_t step_budget = 20'000'000;   // walk-steps per simulated seed
  std::int64_t search_budget = 80'000'000; // walk-steps across the seed search
  std::int64_t max_walks_total = 500'000;  // cap on the simulated population
  int max_seed_tries = 64;
  double phi_floor = 0.02;  // clamp for the certificate in the length formula
  std::uint64_t base_seed = 0x243F6A8885A308D3ULL;  // published search origin
  RwSimEngine sim_engine = RwSimEngine::kBatched;
  // kSharded engine only: worker count (0 = hardware_concurrency) and an
  // optional lent pool — one pool is created per gather call otherwise, and
  // reused across the whole seed search.
  int threads = 0;
  congest::ShardPool* pool = nullptr;
};

struct RwSchedule {
  std::uint64_t seed = 0;       // the accepted shared seed
  std::int64_t seed_tries = 0;  // seeds examined by the derandomized search
  int walks = 0;
  int domain_bits = 0;  // ceil(log2 n) of the routing domain

  /// Published-schedule size: the shared seed plus one start-vertex
  /// descriptor per walk — the O(k log n) bits of Lemma 2.5.
  std::int64_t schedule_bits() const {
    return 64 + static_cast<std::int64_t>(walks) * domain_bits;
  }
};

struct RwResult {
  double delivered_fraction = 0.0;
  std::int64_t rounds = 0;  // measured: walk rounds + congestion surplus
  RwSchedule schedule;
  // Per-walk final position as a *graph vertex id* (v_star when delivered).
  std::vector<int> route;
  int walk_length = 0;     // rounds of walking simulated for the chosen seed
  congest::Runtime ledger;
  // kSharded engine only: per-shard message totals of the accepted seed's
  // merged meter (sums to the "walk rounds" phase messages) — the merge
  // trail bench_scale publishes for offline re-derivation.
  std::vector<std::int64_t> shard_messages;
};

namespace detail {

inline std::uint64_t rw_mix(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  std::uint64_t z = a + 0x9e3779b97f4a7c15ULL * (b + 1) +
                    0xbf58476d1ce4e5b9ULL * (c + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline int ceil_log2(int x) {
  int bits = 0;
  while ((1LL << bits) < x) ++bits;
  return std::max(bits, 1);
}

/// The part-local walking arena: intra-part adjacency with directed slot ids
/// for per-round congestion counting, and the walk population (one walk per
/// intra-part edge endpoint, proportionally subsampled above the cap).
struct Arena {
  std::vector<int> start;                   // start vertex (local id) per walk
  std::vector<std::vector<int>> nbr;        // intra-part neighbors, local ids
  std::vector<std::vector<int>> slot;       // directed slot id per neighbor
  std::vector<int> parent;                  // local id -> graph vertex id
  int star = -1;
  int slots = 0;
  std::int64_t population = 0;  // token population the walks stand in for
  std::int64_t predelivered = 0;  // the sink's own tokens

  Arena(const ExpanderSplit& sp, int v_star) {
    const int pid = sp.part_of(v_star);
    const std::vector<int>& verts = sp.members[pid];
    parent = verts;
    std::vector<int> local(sp.g.n(), -1);
    for (std::size_t i = 0; i < verts.size(); ++i) {
      local[verts[i]] = static_cast<int>(i);
    }
    star = local[v_star];
    const int k = static_cast<int>(verts.size());
    nbr.resize(k);
    slot.resize(k);
    for (int i = 0; i < k; ++i) {
      for (int w : sp.g.neighbors(verts[i])) {
        if (sp.parts.cluster[w] == pid) {
          nbr[i].push_back(local[w]);
          slot[i].push_back(slots++);
        }
      }
    }
    for (int i = 0; i < k; ++i) population += sp.ideg[verts[i]];
    predelivered = sp.ideg[v_star];
  }

  void spawn_walks(std::int64_t cap) {
    start.clear();
    const std::int64_t active = population - predelivered;
    for (std::size_t i = 0; i < nbr.size(); ++i) {
      if (static_cast<int>(i) == star) continue;
      std::int64_t w = static_cast<std::int64_t>(nbr[i].size());
      if (active > cap && cap > 0) w = std::max<std::int64_t>(1, w * cap / active);
      for (std::int64_t j = 0; j < w; ++j) {
        start.push_back(static_cast<int>(i));
      }
    }
  }
};

struct SimOutcome {
  double delivered_fraction = 0.0;
  std::int64_t rounds = 0;
  std::int64_t walk_rounds = 0;
  std::int64_t steps = 0;
  std::int64_t moves = 0;      // edge traversals (messages actually sent)
  std::int64_t peak_load = 0;  // worst per-edge per-round congestion seen
  std::vector<int> route;
  std::vector<std::int64_t> shard_messages;  // kSharded: per-lane totals
};

/// Shared fixed-point bookkeeping of both simulation engines: the walk-count
/// delivery target, scaled when the population was subsampled.
struct SimTargets {
  double walk_target_scaled = 0.0;
  double scale = 1.0;

  SimTargets(const Arena& a, double target_fraction) {
    const std::int64_t walks = static_cast<std::int64_t>(a.start.size());
    const double walk_target =
        target_fraction * static_cast<double>(a.population) -
        static_cast<double>(a.predelivered);
    if (a.population - a.predelivered != 0) {
      scale = static_cast<double>(walks) /
              static_cast<double>(a.population - a.predelivered);
    }
    walk_target_scaled = walk_target * scale;
  }

  void finish(const Arena& a, std::int64_t delivered_walks,
              SimOutcome& out) const {
    const double delivered_tokens =
        static_cast<double>(a.predelivered) +
        (scale == 0.0 ? 0.0 : static_cast<double>(delivered_walks) / scale);
    out.delivered_fraction =
        a.population == 0
            ? 1.0
            : std::min(1.0,
                       delivered_tokens / static_cast<double>(a.population));
  }
};

/// Reference engine: run every walk for up to `T` rounds under seed `seed`,
/// one walk at a time, metering per-round directed-edge congestion through
/// congest::MessageMeter (every token move is one O(log n)-bit message over
/// its edge slot). Stops early once the target fraction is in.
inline SimOutcome simulate_serial(const Arena& a, std::uint64_t seed, int T,
                                  double laziness, double target_fraction) {
  SimOutcome out;
  std::vector<int> pos(a.start);
  std::vector<char> active(a.start.size(), 1);
  out.route.assign(a.start.size(), -1);
  std::int64_t delivered_walks = 0;
  const SimTargets targets(a, target_fraction);
  const auto lazy_cut =
      static_cast<std::uint32_t>(laziness * 4294967296.0);
  congest::MessageMeter meter(a.slots);
  for (int t = 1; t <= T; ++t) {
    if (static_cast<double>(delivered_walks) >= targets.walk_target_scaled) {
      break;
    }
    bool any_active = false;
    for (std::size_t w = 0; w < pos.size(); ++w) {
      if (!active[w]) continue;
      any_active = true;
      ++out.steps;
      const std::uint64_t z = rw_mix(seed, w, static_cast<std::uint64_t>(t));
      if (static_cast<std::uint32_t>(z >> 32) < lazy_cut) continue;
      const int u = pos[w];
      const int deg = static_cast<int>(a.nbr[u].size());
      if (deg == 0) continue;
      const int j = static_cast<int>((z & 0xffffffffULL) % deg);
      meter.send(a.slot[u][j]);
      pos[w] = a.nbr[u][j];
      if (pos[w] == a.star) {
        active[w] = 0;
        out.route[w] = a.star;
        ++delivered_walks;
      }
    }
    if (!any_active) break;
    ++out.walk_rounds;
    out.rounds += std::max<std::int64_t>(1, meter.round_peak());
    meter.end_round();
  }
  for (std::size_t w = 0; w < pos.size(); ++w) {
    if (out.route[w] < 0) out.route[w] = pos[w];
  }
  out.moves = meter.total_messages();
  out.peak_load = meter.peak_congestion();
  targets.finish(a, delivered_walks, out);
  return out;
}

/// Batched engine: walks are bucketed by current vertex, so each round
/// touches every occupied adjacency row once (and in vertex order) instead
/// of hopping rows once per walk. Every per-walk effect — the counter hash
/// rw_mix(seed, w, t), the slot congestion counts, delivery — is identical
/// to the serial engine, so the two produce bit-equal SimOutcomes; only the
/// memory access pattern changes.
inline SimOutcome simulate_batched(const Arena& a, std::uint64_t seed, int T,
                                   double laziness, double target_fraction) {
  SimOutcome out;
  const int k = static_cast<int>(a.nbr.size());
  std::vector<int> pos(a.start);
  out.route.assign(a.start.size(), -1);
  std::int64_t delivered_walks = 0;
  const SimTargets targets(a, target_fraction);
  const auto lazy_cut =
      static_cast<std::uint32_t>(laziness * 4294967296.0);
  std::vector<std::vector<int>> bucket(k), next_bucket(k);
  for (std::size_t w = 0; w < a.start.size(); ++w) {
    bucket[a.start[w]].push_back(static_cast<int>(w));
  }
  congest::MessageMeter meter(a.slots);
  for (int t = 1; t <= T; ++t) {
    if (static_cast<double>(delivered_walks) >= targets.walk_target_scaled) {
      break;
    }
    bool any_active = false;
    for (int u = 0; u < k; ++u) {
      if (bucket[u].empty()) continue;
      any_active = true;
      const int deg = static_cast<int>(a.nbr[u].size());
      const int* nbrs = a.nbr[u].data();
      const int* slots = a.slot[u].data();
      for (int w : bucket[u]) {
        ++out.steps;
        const std::uint64_t z = rw_mix(seed, w, static_cast<std::uint64_t>(t));
        if (static_cast<std::uint32_t>(z >> 32) < lazy_cut || deg == 0) {
          next_bucket[u].push_back(w);  // lazy stay (or stranded walk)
          continue;
        }
        const int j = static_cast<int>((z & 0xffffffffULL) % deg);
        meter.send(slots[j]);
        const int v = nbrs[j];
        pos[w] = v;
        if (v == a.star) {
          out.route[w] = a.star;
          ++delivered_walks;
        } else {
          next_bucket[v].push_back(w);
        }
      }
      bucket[u].clear();
    }
    if (!any_active) break;
    ++out.walk_rounds;
    out.rounds += std::max<std::int64_t>(1, meter.round_peak());
    meter.end_round();
    bucket.swap(next_bucket);
  }
  for (std::size_t w = 0; w < pos.size(); ++w) {
    if (out.route[w] < 0) out.route[w] = pos[w];
  }
  out.moves = meter.total_messages();
  out.peak_load = meter.peak_congestion();
  targets.finish(a, delivered_walks, out);
  return out;
}

/// Sharded engine: the batched round loop partitioned across a ShardPool.
/// Each shard owns a contiguous vertex slice (and, because slot ids are
/// assigned in vertex order, the matching ShardedMeter lane). A round is two
/// barriers: phase A walks every shard's occupied buckets — lazy stays and
/// intra-shard moves land directly in the shard's own next buckets, cross-
/// shard moves go to a double-buffered outbox — and phase B drains each
/// shard's inboxes in source-shard order. Every per-walk effect (the counter
/// hash, slot congestion, delivery) is identical to the serial engine, and
/// bucket order never influences outcomes (per-walk moves depend only on
/// (seed, w, t); per-round counters are order-free sums/maxes), so the
/// SimOutcome is bit-equal to kSerial/kBatched for every shard count.
inline SimOutcome simulate_sharded(const Arena& a, std::uint64_t seed, int T,
                                   double laziness, double target_fraction,
                                   congest::ShardPool& pool) {
  SimOutcome out;
  const int k = static_cast<int>(a.nbr.size());
  const int S = pool.threads();
  const congest::ShardPlan plan(k, S);
  std::vector<int> owner(k, 0);
  for (int s = 0; s < S; ++s) {
    for (int v = plan.begin(s); v < plan.end(s); ++v) owner[v] = s;
  }
  // Slot ids are assigned per source vertex in ascending order (Arena ctor),
  // so shard s owns the contiguous slot slice starting at its first vertex.
  std::vector<std::int64_t> slot_begin(static_cast<std::size_t>(S) + 1, 0);
  {
    std::vector<std::int64_t> pref(static_cast<std::size_t>(k) + 1, 0);
    for (int v = 0; v < k; ++v) {
      pref[v + 1] = pref[v] + static_cast<std::int64_t>(a.nbr[v].size());
    }
    for (int s = 0; s <= S; ++s) {
      slot_begin[static_cast<std::size_t>(s)] = pref[plan.begin(s)];
    }
  }
  congest::ShardedMeter meter(std::move(slot_begin));

  std::vector<int> pos(a.start);
  out.route.assign(a.start.size(), -1);
  const SimTargets targets(a, target_fraction);
  const auto lazy_cut =
      static_cast<std::uint32_t>(laziness * 4294967296.0);
  std::vector<std::vector<int>> bucket(k), next_bucket(k);
  for (std::size_t w = 0; w < a.start.size(); ++w) {
    bucket[a.start[w]].push_back(static_cast<int>(w));
  }
  struct alignas(64) LaneState {
    std::int64_t delivered = 0;
    std::int64_t steps = 0;
    char active = 0;
  };
  std::vector<LaneState> lanes(static_cast<std::size_t>(S));
  struct Move {
    int v;
    int w;
  };
  std::vector<std::vector<Move>> outbox(static_cast<std::size_t>(S) * S);

  std::int64_t delivered_walks = 0;
  for (int t = 1; t <= T; ++t) {
    if (static_cast<double>(delivered_walks) >= targets.walk_target_scaled) {
      break;
    }
    // Phase A: every shard advances the walks parked in its vertex slice.
    pool.run(S, [&](int s, int /*worker*/) {
      LaneState& lane = lanes[static_cast<std::size_t>(s)];
      for (int u = plan.begin(s); u < plan.end(s); ++u) {
        if (bucket[u].empty()) continue;
        lane.active = 1;
        const int deg = static_cast<int>(a.nbr[u].size());
        const int* nbrs = a.nbr[u].data();
        const int* slots = a.slot[u].data();
        for (int w : bucket[u]) {
          ++lane.steps;
          const std::uint64_t z =
              rw_mix(seed, static_cast<std::uint64_t>(w),
                     static_cast<std::uint64_t>(t));
          if (static_cast<std::uint32_t>(z >> 32) < lazy_cut || deg == 0) {
            next_bucket[u].push_back(w);  // lazy stay (or stranded walk)
            continue;
          }
          const int j = static_cast<int>((z & 0xffffffffULL) % deg);
          meter.send(s, slots[j]);
          const int v = nbrs[j];
          pos[w] = v;
          if (v == a.star) {
            out.route[w] = a.star;
            ++lane.delivered;
          } else if (owner[v] == s) {
            next_bucket[v].push_back(w);
          } else {
            outbox[static_cast<std::size_t>(s) * S + owner[v]].push_back({v, w});
          }
        }
        bucket[u].clear();
      }
    });
    // Phase B: each shard drains its inboxes (in source-shard order) into
    // its own next buckets — the double-buffered message exchange.
    pool.run(S, [&](int d, int /*worker*/) {
      for (int s = 0; s < S; ++s) {
        std::vector<Move>& box = outbox[static_cast<std::size_t>(s) * S + d];
        for (const Move& mv : box) next_bucket[mv.v].push_back(mv.w);
        box.clear();
      }
    });
    bool any_active = false;
    delivered_walks = 0;
    for (LaneState& lane : lanes) {
      any_active = any_active || lane.active != 0;
      lane.active = 0;
      delivered_walks += lane.delivered;
    }
    if (!any_active) break;
    ++out.walk_rounds;
    out.rounds += std::max<std::int64_t>(1, meter.round_peak());
    meter.end_round();
    bucket.swap(next_bucket);
  }
  for (std::size_t w = 0; w < pos.size(); ++w) {
    if (out.route[w] < 0) out.route[w] = pos[w];
  }
  delivered_walks = 0;
  for (const LaneState& lane : lanes) {
    out.steps += lane.steps;
    delivered_walks += lane.delivered;
  }
  out.moves = meter.total_messages();
  out.peak_load = meter.peak_congestion();
  out.shard_messages.resize(static_cast<std::size_t>(S));
  for (int s = 0; s < S; ++s) out.shard_messages[s] = meter.shard_messages(s);
  targets.finish(a, delivered_walks, out);
  return out;
}

inline SimOutcome simulate(const Arena& a, std::uint64_t seed, int T,
                           double laziness, double target_fraction,
                           RwSimEngine engine = RwSimEngine::kBatched,
                           congest::ShardPool* pool = nullptr) {
  if (engine == RwSimEngine::kSerial) {
    return simulate_serial(a, seed, T, laziness, target_fraction);
  }
  if (engine == RwSimEngine::kSharded && pool != nullptr) {
    return simulate_sharded(a, seed, T, laziness, target_fraction, *pool);
  }
  return simulate_batched(a, seed, T, laziness, target_fraction);
}

inline int walk_length(const Arena& a, double phi, double f,
                       const RwParams& p) {
  const double vol = static_cast<double>(std::max<std::int64_t>(a.population, 2));
  const double deg_star =
      a.star >= 0 ? std::max<double>(1.0, static_cast<double>(a.nbr[a.star].size()))
                  : 1.0;
  const double hitting = vol / deg_star + std::log(vol) / (phi * phi);
  double T = std::ceil(2.0 * hitting * (1.0 + std::log(1.0 / f)));
  const std::int64_t walks = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(a.start.size()));
  T = std::min(T, static_cast<double>(std::max<std::int64_t>(
                      1, p.step_budget / walks)));
  return static_cast<int>(std::max(1.0, T));
}

}  // namespace detail

inline RwResult gather_random_walks(const ExpanderSplit& sp, int v_star,
                                    double f, RwParams p = {}) {
  RwResult out;
  f = std::min(std::max(f, 1e-9), 1.0);
  const int pid = sp.part_of(v_star);
  const double phi = std::min(1.0, std::max(sp.phi_cert[pid], p.phi_floor));
  detail::Arena arena(sp, v_star);
  arena.spawn_walks(p.max_walks_total);
  out.schedule.walks = static_cast<int>(arena.start.size());
  out.schedule.domain_bits = detail::ceil_log2(sp.g.n());
  if (arena.population == 0 || arena.start.empty()) {
    out.delivered_fraction = 1.0;
    return out;
  }

  // kSharded: lend the caller's pool, or spin one up for the whole search.
  congest::ShardPool* pool = p.pool;
  std::unique_ptr<congest::ShardPool> owned_pool;
  if (p.sim_engine == RwSimEngine::kSharded && pool == nullptr) {
    owned_pool = std::make_unique<congest::ShardPool>(p.threads);
    pool = owned_pool.get();
  }

  int T = detail::walk_length(arena, phi, f, p);
  std::int64_t steps_spent = 0;
  detail::SimOutcome best;
  std::uint64_t best_seed = 0;
  int best_T = T;
  for (int attempt = 1; attempt <= p.max_seed_tries; ++attempt) {
    const std::uint64_t seed = detail::rw_mix(p.base_seed, attempt, 0);
    const detail::SimOutcome sim = detail::simulate(
        arena, seed, T, p.laziness, 1.0 - f, p.sim_engine, pool);
    steps_spent += sim.steps;
    out.schedule.seed_tries = attempt;
    if (sim.delivered_fraction > best.delivered_fraction ||
        attempt == 1) {
      best = sim;
      best_seed = seed;
      best_T = T;
    }
    if (best.delivered_fraction >= 1.0 - f) break;
    if (steps_spent >= p.search_budget) break;
    if (attempt % 2 == 0) {
      const std::int64_t cap = std::max<std::int64_t>(
          1, p.step_budget / static_cast<std::int64_t>(arena.start.size()));
      T = static_cast<int>(std::min<std::int64_t>(2LL * T, cap));
    }
  }

  out.delivered_fraction = best.delivered_fraction;
  out.rounds = best.rounds;
  out.schedule.seed = best_seed;
  out.route = std::move(best.route);
  for (int& r : out.route) r = arena.parent[r];  // local ids -> vertex ids
  out.walk_length = best_T;
  out.shard_messages = std::move(best.shard_messages);
  out.ledger.charge("walk rounds", best.walk_rounds, best.moves, best.peak_load);
  out.ledger.charge("congestion surplus", best.rounds - best.walk_rounds);
  return out;
}

/// Lemma 2.6: one published seed must serve several disjoint routing domains
/// at once. Tries common seeds until every subgraph reaches its 1 - f target
/// (or budgets run out) and returns the per-subgraph results, all carrying
/// the same accepted seed.
inline std::vector<RwResult> gather_random_walks_shared(
    const std::vector<const ExpanderSplit*>& sps, const std::vector<int>& stars,
    double f, RwParams p = {}) {
  f = std::min(std::max(f, 1e-9), 1.0);
  std::vector<detail::Arena> arenas;
  std::vector<double> phis;
  std::vector<int> lengths;
  arenas.reserve(sps.size());
  for (std::size_t i = 0; i < sps.size(); ++i) {
    arenas.emplace_back(*sps[i], stars[i]);
    arenas.back().spawn_walks(p.max_walks_total);
    const int pid = sps[i]->part_of(stars[i]);
    phis.push_back(
        std::min(1.0, std::max(sps[i]->phi_cert[pid], p.phi_floor)));
    lengths.push_back(detail::walk_length(arenas.back(), phis.back(), f, p));
  }

  // kSharded: lend the caller's pool, or spin one up for the whole search.
  congest::ShardPool* pool = p.pool;
  std::unique_ptr<congest::ShardPool> owned_pool;
  if (p.sim_engine == RwSimEngine::kSharded && pool == nullptr) {
    owned_pool = std::make_unique<congest::ShardPool>(p.threads);
    pool = owned_pool.get();
  }

  std::vector<RwResult> results(sps.size());
  std::vector<detail::SimOutcome> best(sps.size());
  std::uint64_t best_seed = 0;
  std::int64_t tries = 0, steps_spent = 0;
  double best_min_fraction = -1.0;
  for (int attempt = 1; attempt <= p.max_seed_tries; ++attempt) {
    const std::uint64_t seed = detail::rw_mix(p.base_seed, attempt, 1);
    std::vector<detail::SimOutcome> sims(sps.size());
    double min_fraction = 1.0;
    for (std::size_t i = 0; i < sps.size(); ++i) {
      sims[i] = detail::simulate(arenas[i], seed, lengths[i], p.laziness,
                                 1.0 - f, p.sim_engine, pool);
      steps_spent += sims[i].steps;
      min_fraction = std::min(min_fraction, sims[i].delivered_fraction);
    }
    tries = attempt;
    if (min_fraction > best_min_fraction) {
      best_min_fraction = min_fraction;
      best = std::move(sims);
      best_seed = seed;
    }
    if (best_min_fraction >= 1.0 - f || steps_spent >= p.search_budget) break;
  }

  for (std::size_t i = 0; i < sps.size(); ++i) {
    RwResult& r = results[i];
    r.delivered_fraction = best[i].delivered_fraction;
    r.rounds = best[i].rounds;
    r.route = std::move(best[i].route);
    for (int& v : r.route) v = arenas[i].parent[v];  // local -> vertex ids
    r.walk_length = lengths[i];
    r.schedule.seed = best_seed;
    r.schedule.seed_tries = tries;
    r.schedule.walks = static_cast<int>(arenas[i].start.size());
    r.schedule.domain_bits = detail::ceil_log2(sps[i]->g.n());
    r.shard_messages = std::move(best[i].shard_messages);
    r.ledger.charge("walk rounds", best[i].walk_rounds, best[i].moves,
                    best[i].peak_load);
    r.ledger.charge("congestion surplus", best[i].rounds - best[i].walk_rounds);
  }
  return results;
}

}  // namespace mfd::expander
