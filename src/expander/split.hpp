// Expander split — the §2 preprocessing step of the routing stack.
//
// Recursively bisects the input along approximate-Fiedler sweep cuts (the
// shared sweep_partition engine in graph/metrics.hpp) until no part admits a
// sweep cut of conductance below `phi_target`; connected components are
// peeled off as they appear, and recursion depth is capped at ceil(log2 n),
// so the recursion tree has O(log n) levels. Each surviving part carries a
// conductance certificate phi_cert: the sparsest sweep cut the search could
// still find inside it (>= phi_target unless the part was a forced leaf),
// which is exactly the "no sparse cut found, hence well-connected"
// certification used by practical expander decompositions in the
// Chang–Saranurak (arXiv:2007.14898) line. The routing engines in
// rw_routing.hpp / load_balance.hpp treat a part and its phi_cert as the
// routing domain and its expansion parameter.
#pragma once

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "decomp/clustering.hpp"
#include "graph/graph.hpp"
#include "graph/metrics.hpp"
#include "graph/ops.hpp"
#include "util/rng.hpp"

namespace mfd::expander {

struct SplitParams {
  double phi_target = 0.10;  // sweep-cut sparsity below which a part is split
  int power_iters = 40;      // lazy-walk power iterations per sweep
  int max_depth = 0;         // recursion cap; 0 means ceil(log2 n)
  int min_part = 3;          // parts at or below this size are never split
};

/// Result of expander_split: a partition of V into well-connected parts, the
/// per-part conductance certificate, and the (owned) routing-domain graph.
struct ExpanderSplit {
  Graph g;  // owned copy: callers may pass temporaries (benches do)
  decomp::Clustering parts;
  std::vector<std::vector<int>> members;   // members[p] = vertices of part p
  std::vector<double> phi_cert;            // certified sweep sparsity of part p
  std::vector<std::int64_t> part_volume;   // 2 * (edges induced by part p)
  std::vector<int> ideg;                   // degree of v inside its own part
  congest::Runtime ledger;                 // simulated construction rounds
  SplitParams params;

  int part_of(int v) const { return parts.cluster[v]; }

  double min_conductance() const {
    double phi = 1.0;
    for (double c : phi_cert) phi = std::min(phi, c);
    return phi;
  }
};

inline ExpanderSplit expander_split(const Graph& g, Rng& rng,
                                    SplitParams params = {}) {
  ExpanderSplit out;
  out.g = g;
  const int n = g.n();
  if (params.max_depth <= 0) {
    params.max_depth = static_cast<int>(std::ceil(std::log2(std::max(n, 2))));
  }
  out.params = params;

  SweepPartitionParams sp;
  sp.phi_target = params.phi_target;
  sp.power_iters = params.power_iters;
  sp.max_depth = params.max_depth;
  sp.min_part = params.min_part;
  SweepPartitionResult partition = sweep_partition(out.g, rng.next(), sp);

  out.parts.cluster.assign(n, 0);
  for (std::size_t p = 0; p < partition.parts.size(); ++p) {
    for (int v : partition.parts[p].verts) {
      out.parts.cluster[v] = static_cast<int>(p);
    }
    out.phi_cert.push_back(partition.parts[p].cert);
    out.members.push_back(std::move(partition.parts[p].verts));
  }
  out.parts.k = static_cast<int>(out.members.size());

  out.ideg.assign(n, 0);
  for (int v = 0; v < n; ++v) {
    for (int w : out.g.neighbors(v)) {
      if (out.parts.cluster[w] == out.parts.cluster[v]) ++out.ideg[v];
    }
  }
  out.part_volume.assign(out.parts.k, 0);
  for (int v = 0; v < n; ++v) out.part_volume[out.parts.cluster[v]] += out.ideg[v];

  // Each recursion level is one distributed sweep: power_iters rounds of
  // local averaging plus a prefix-selection aggregation. Every such round
  // moves one O(log n)-bit value per directed edge, so the phase is
  // envelope-billed at that per-round ceiling.
  out.ledger.charge_envelope(
      "fiedler sweeps",
      static_cast<std::int64_t>(std::max(partition.levels, 1)) *
          (params.power_iters +
           static_cast<std::int64_t>(std::ceil(
               std::log2(static_cast<double>(std::max(n, 2)))))),
      2 * g.m());
  return out;
}

}  // namespace mfd::expander
