// Certified conductance lower bounds via a deterministic cut-matching game —
// the KRV ("Graph partitioning using single commodity flows") potential
// game in the Chang–Saranurak deterministic expander-decomposition style
// (arXiv:2007.14898).
//
// Given a connected cluster G, the game plays O(log^2 n) rounds. Each round
//   * the CUT PLAYER proposes a bisection: project the current mixing matrix
//     F onto a seeded zero-sum vector and split the sorted projection at the
//     median (deterministic — the seed is a published constant);
//   * the MATCHING PLAYER routes a unit of flow from every S vertex to a
//     distinct S-bar vertex through G, with every edge capped at
//     ceil(1/phi_target) (Dinic max flow). If the flow saturates, its path
//     decomposition is a perfect matching across the bisection EMBEDDED in G
//     — the matched pairs average their rows of F. If it cannot, the
//     residual min cut is a sparse cut of G: the game stops and returns that
//     side, re-checked by direct conductance computation.
//
// Soundness of the certificate (verified by verify_cut_matching, which
// replays it from the recorded paths alone):
//   Let H be the multigraph union of the matchings, each edge carrying its
//   recorded path, c = max #paths over any edge of G, Delta = max degree.
//   The mixing matrix F (identity, then matched rows averaged) is doubly
//   stochastic, and every unit of commodity w held at u != w physically
//   crossed the matching edges between them, at most one unit per matching
//   edge per round. Hence for every cut (S, S-bar):
//       cut_H(S) >= sum of cross-held commodity >= alpha * min(|S|, |S-bar|)
//   where alpha = n * (min entry of F). Each H edge crossing the cut forces
//   its path across at least one G edge of the cut, so
//       cut_G(S) >= cut_H(S) / c,
//   and min(vol(S), vol(S-bar)) <= Delta * min(|S|, |S-bar|), giving
//       phi(G) >= alpha / (c * Delta)
//   for EVERY cut simultaneously — a certified lower bound, in contrast to
//   the Rayleigh-quotient Cheeger estimate (which approaches lambda2 from
//   above and certifies nothing). The certificate is the recorded matchings
//   with their paths plus (alpha, congestion, dilation): replaying the paths
//   re-derives every number, so a consumer never has to trust the game.
//
// certified_phi() stacks the three tiers for a cluster: exact enumeration at
// <= exact_cap vertices, this game's certified bound above it, and the
// Cheeger estimate when the game is inconclusive — with the verdict kind
// surfaced (metrics.hpp::PhiVerdict) and the game's CONGEST cost charged
// through the returned ledger.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "congest/runtime.hpp"
#include "graph/graph.hpp"
#include "graph/metrics.hpp"
#include "graph/ops.hpp"

namespace mfd::expander {

namespace detail_cm {

/// Dinic max flow on small integer-capacity networks. Undirected graph edges
/// are modeled as one arc pair sharing capacity in both directions, so
/// opposite flows cancel instead of stacking congestion.
class Dinic {
 public:
  explicit Dinic(int nodes) : adj_(nodes), level_(nodes), it_(nodes) {}

  struct Arc {
    int to;
    std::int64_t cap;
    std::int64_t cap0;  // initial capacity (flow = cap0 - cap when positive)
    int rev;            // index of the reverse arc in adj_[to]
  };

  void add_arc(int u, int v, std::int64_t cap, std::int64_t rev_cap = 0) {
    adj_[u].push_back({v, cap, cap, static_cast<int>(adj_[v].size())});
    adj_[v].push_back({u, rev_cap, rev_cap, static_cast<int>(adj_[u].size()) - 1});
  }

  std::int64_t max_flow(int s, int t) {
    std::int64_t flow = 0;
    while (bfs(s, t)) {
      std::fill(it_.begin(), it_.end(), 0);
      std::int64_t pushed;
      while ((pushed = dfs(s, t, INT64_C(1) << 60)) > 0) flow += pushed;
    }
    return flow;
  }

  /// Residual reachability from s after max_flow — the min-cut source side.
  std::vector<char> reachable(int s) const {
    std::vector<char> seen(adj_.size(), 0);
    std::vector<int> stack = {s};
    seen[s] = 1;
    while (!stack.empty()) {
      const int u = stack.back();
      stack.pop_back();
      for (const Arc& a : adj_[u]) {
        if (a.cap > 0 && !seen[a.to]) {
          seen[a.to] = 1;
          stack.push_back(a.to);
        }
      }
    }
    return seen;
  }

  std::vector<std::vector<Arc>>& adj() { return adj_; }

 private:
  bool bfs(int s, int t) {
    std::fill(level_.begin(), level_.end(), -1);
    std::vector<int> q = {s};
    level_[s] = 0;
    for (std::size_t head = 0; head < q.size(); ++head) {
      const int u = q[head];
      for (const Arc& a : adj_[u]) {
        if (a.cap > 0 && level_[a.to] < 0) {
          level_[a.to] = level_[u] + 1;
          q.push_back(a.to);
        }
      }
    }
    return level_[t] >= 0;
  }

  std::int64_t dfs(int u, int t, std::int64_t limit) {
    if (u == t) return limit;
    for (int& i = it_[u]; i < static_cast<int>(adj_[u].size()); ++i) {
      Arc& a = adj_[u][i];
      if (a.cap <= 0 || level_[a.to] != level_[u] + 1) continue;
      const std::int64_t pushed = dfs(a.to, t, std::min(limit, a.cap));
      if (pushed > 0) {
        a.cap -= pushed;
        adj_[a.to][a.rev].cap += pushed;
        return pushed;
      }
    }
    return 0;
  }

  std::vector<std::vector<Arc>> adj_;
  std::vector<int> level_;
  std::vector<int> it_;
};

/// splitmix64-derived value in (-1, 1) — same recipe as approx_fiedler so
/// the cut player's projection vector is a pure function of (seed, v).
inline double hash_unit(std::uint64_t seed, int v) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(v) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53 * 2.0 - 1.0;
}

}  // namespace detail_cm

struct CutMatchingParams {
  double phi_target = 0.0;  // flow capacity = ceil(1/phi_target); 0 derives
                            // max(Cheeger estimate, 1/n) from the input
  int max_rounds = 0;       // 0 derives 2 * ceil_log2(n)^2
  double mix_alpha = 0.5;   // stop early once n * min entry of F reaches this
  int power_iters = 60;     // Cheeger probe used when phi_target is derived
  std::uint64_t seed = 0x243f6a8885a308d3ULL;  // published cut-player seed
};

/// One embedded matching edge: `path` walks from u to v through adjacent
/// vertices of the cluster (path.front() == u, path.back() == v).
struct MatchedPair {
  int u = -1, v = -1;
  std::vector<int> path;
};

/// The replayable certificate: the per-round matchings with their embedding
/// paths, plus the three derived numbers a replay must reproduce. The
/// certified bound is phi_lower = alpha / (congestion * max_degree); see the
/// header comment for the proof.
struct CutMatchingCertificate {
  std::vector<std::vector<MatchedPair>> matchings;  // one list per round
  std::int64_t congestion = 0;  // max #paths across any undirected edge
  int dilation = 0;             // max path length in edges
  double alpha = 0.0;           // n * min entry of the replayed mixing matrix
  double phi_lower = 0.0;       // alpha / (congestion * max_degree)
};

enum class CutMatchingVerdict {
  kCertified,     // cert holds a positive, replay-verifiable lower bound
  kSparseCut,     // cut_side is a re-checked cut of conductance < phi_target
  kInconclusive,  // no mixing achieved (e.g. n < 2); nothing certified
};

struct CutMatchingOutcome {
  CutMatchingVerdict verdict = CutMatchingVerdict::kInconclusive;
  CutMatchingCertificate cert;
  std::vector<char> cut_side;  // kSparseCut: the witnessed side (1 = in S)
  double cut_phi = 2.0;        // kSparseCut: directly recomputed phi(cut_side)
  int rounds_played = 0;
  double phi_target = 0.0;     // the target the matching player actually used
  congest::Runtime ledger;     // CONGEST charges of the whole game
};

/// Replay audit of a certificate against the graph it claims to embed in:
/// every path must walk adjacent vertices between its endpoints, matchings
/// must be vertex-disjoint per round, and congestion / dilation / alpha /
/// phi_lower are recomputed from scratch and compared. `ok` means the
/// recorded bound is sound; recomputed_phi_lower is the replayed value.
struct EmbeddingAudit {
  bool ok = true;
  std::string violation;
  std::int64_t congestion = 0;
  int dilation = 0;
  double alpha = 0.0;
  double recomputed_phi_lower = 0.0;
};

inline EmbeddingAudit verify_cut_matching(const Graph& g,
                                          const CutMatchingCertificate& cert) {
  EmbeddingAudit audit;
  const auto fail = [&audit](const std::string& why) {
    audit.ok = false;
    if (audit.violation.empty()) audit.violation = why;
  };
  const int n = g.n();
  if (n == 0) {
    fail("empty graph cannot carry a certificate");
    return audit;
  }
  std::unordered_map<std::int64_t, std::int64_t> usage;
  std::vector<double> mix(static_cast<std::size_t>(n) * n, 0.0);
  for (int v = 0; v < n; ++v) mix[static_cast<std::size_t>(v) * n + v] = 1.0;
  std::vector<char> matched(n, 0);
  std::vector<double> row(n);
  for (const std::vector<MatchedPair>& round : cert.matchings) {
    std::fill(matched.begin(), matched.end(), 0);
    for (const MatchedPair& p : round) {
      if (p.u < 0 || p.u >= n || p.v < 0 || p.v >= n || p.u == p.v) {
        fail("matched pair endpoints out of range or equal");
        return audit;
      }
      if (matched[p.u] || matched[p.v]) {
        fail("matching not vertex-disjoint within a round");
        return audit;
      }
      matched[p.u] = matched[p.v] = 1;
      if (p.path.empty() || p.path.front() != p.u || p.path.back() != p.v) {
        fail("path does not connect its matched endpoints");
        return audit;
      }
      for (std::size_t i = 0; i + 1 < p.path.size(); ++i) {
        const int a = p.path[i], b = p.path[i + 1];
        if (a < 0 || a >= n || b < 0 || b >= n || !g.has_edge(a, b)) {
          fail("path step is not an edge of the graph");
          return audit;
        }
        const std::int64_t key =
            static_cast<std::int64_t>(std::min(a, b)) * n + std::max(a, b);
        audit.congestion = std::max(audit.congestion, ++usage[key]);
      }
      audit.dilation =
          std::max(audit.dilation, static_cast<int>(p.path.size()) - 1);
      // Average the two mixing rows — the doubly-stochastic KRV update.
      double* ru = mix.data() + static_cast<std::size_t>(p.u) * n;
      double* rv = mix.data() + static_cast<std::size_t>(p.v) * n;
      for (int w = 0; w < n; ++w) {
        const double avg = 0.5 * (ru[w] + rv[w]);
        ru[w] = rv[w] = avg;
      }
    }
  }
  double min_entry = 1.0;
  for (double e : mix) min_entry = std::min(min_entry, e);
  audit.alpha = static_cast<double>(n) * min_entry;
  const int delta = g.max_degree();
  audit.recomputed_phi_lower =
      (audit.congestion > 0 && delta > 0)
          ? audit.alpha / (static_cast<double>(audit.congestion) * delta)
          : 0.0;
  if (audit.congestion != cert.congestion) fail("recorded congestion mismatch");
  if (audit.dilation != cert.dilation) fail("recorded dilation mismatch");
  if (std::abs(audit.alpha - cert.alpha) > 1e-9) fail("recorded alpha mismatch");
  if (cert.phi_lower > audit.recomputed_phi_lower + 1e-12) {
    fail("recorded phi_lower exceeds the replayed bound");
  }
  return audit;
}

/// Play the deterministic cut-matching game on a CONNECTED graph. Returns
///   * kSparseCut with a re-checked witnessed cut of conductance below
///     phi_target (the residual min cut of a failed matching flow), or
///   * kCertified with a replayable phi lower-bound certificate (the prefix
///     of rounds maximizing alpha / congestion — later matchings that only
///     add congestion are dropped), or
///   * kInconclusive when no mixing was achieved (n < 2, or partial
///     matchings left some mixing entry at zero for every prefix).
/// The ledger charges the game's CONGEST cost: the cut player's projection
/// replays are envelope-billed, the matching embeddings are measured (one
/// message per path edge, peak per-edge path count as congestion).
inline CutMatchingOutcome cut_matching_game(const Graph& g,
                                            CutMatchingParams params = {}) {
  CutMatchingOutcome out;
  const int n = g.n();
  if (n < 2 || g.m() == 0) return out;

  // Derive the flow target when the caller did not pin one: the Cheeger
  // estimate is the natural scale ("can the game certify what the spectral
  // heuristic believes?"), floored at 1/n so capacities stay bounded.
  double target = params.phi_target;
  if (target <= 0.0) {
    const PhiCertificate est = phi_certificate(g, 0, params.power_iters);
    target = std::max({est.phi, 1.0 / n, 1e-6});
  }
  out.phi_target = target;
  const std::int64_t cap = std::min<std::int64_t>(
      static_cast<std::int64_t>(std::ceil(1.0 / target)), 4 * g.m() + 1);

  const int log_n = congest::ceil_log2(n);
  const int max_rounds =
      params.max_rounds > 0 ? params.max_rounds : 2 * log_n * log_n;

  // Undirected edge ids for congestion counting.
  std::unordered_map<std::int64_t, int> edge_id;
  {
    int next = 0;
    for (const auto& [u, v] : g.edges()) {
      edge_id[static_cast<std::int64_t>(u) * n + v] = next++;
    }
  }
  std::vector<std::int64_t> edge_usage(g.m(), 0);

  // Mixing matrix F: row u = where u's unit of commodity currently sits.
  std::vector<double> mix(static_cast<std::size_t>(n) * n, 0.0);
  for (int v = 0; v < n; ++v) mix[static_cast<std::size_t>(v) * n + v] = 1.0;

  // Per-round trail for the best-prefix selection: after round t the
  // certificate could stop, paying congestion c_t for mixing alpha_t.
  std::vector<double> alpha_hist;
  std::vector<std::int64_t> cong_hist;
  std::vector<int> dil_hist;

  std::int64_t cut_player_rounds = 0;
  std::int64_t embed_rounds = 0, embed_messages = 0, embed_peak = 0;
  int dilation_so_far = 0;

  std::vector<double> proj(n);
  std::vector<int> order(n);
  std::vector<int> side(n, 0);  // 1 = S (flow sources) this round

  for (int round = 0; round < max_rounds; ++round) {
    // --- Cut player: median split of the projected mixing matrix. A
    // distributed implementation replays the matchings so far on a scalar
    // (one averaging exchange per matching, routed along its paths) and
    // median-selects — envelope-billed below at that cost.
    for (int v = 0; v < n; ++v) proj[v] = detail_cm::hash_unit(params.seed + round, v);
    const double mean = std::accumulate(proj.begin(), proj.end(), 0.0) / n;
    for (int v = 0; v < n; ++v) proj[v] -= mean;
    std::vector<double> p(n, 0.0);
    for (int u = 0; u < n; ++u) {
      const double* row = mix.data() + static_cast<std::size_t>(u) * n;
      double acc = 0.0;
      for (int w = 0; w < n; ++w) acc += row[w] * proj[w];
      p[u] = acc;
    }
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&p](int a, int b) {
      return p[a] != p[b] ? p[a] < p[b] : a < b;
    });
    const int half = n / 2;
    std::fill(side.begin(), side.end(), 0);
    for (int i = 0; i < half; ++i) side[order[i]] = 1;
    cut_player_rounds +=
        static_cast<std::int64_t>(round + 1) * (dilation_so_far + 1) + log_n;

    // --- Matching player: route one unit from every S vertex to a distinct
    // S-bar vertex, every graph edge capped at ceil(1/phi_target).
    const int src = n, snk = n + 1;
    detail_cm::Dinic dinic(n + 2);
    for (int v = 0; v < n; ++v) {
      if (side[v]) {
        dinic.add_arc(src, v, 1);
      } else {
        dinic.add_arc(v, snk, 1);
      }
    }
    for (const auto& [a, b] : g.edges()) dinic.add_arc(a, b, cap, cap);
    const std::int64_t flow = dinic.max_flow(src, snk);

    if (flow < half) {
      // The matching player is stuck: the residual min cut is a sparse cut
      // of G. Re-check it directly — the witness stands on recomputation,
      // not on flow theory.
      const std::vector<char> reach = dinic.reachable(src);
      std::vector<char> cut(n, 0);
      int cut_size = 0;
      for (int v = 0; v < n; ++v) {
        cut[v] = reach[v];
        cut_size += cut[v];
      }
      if (cut_size > 0 && cut_size < n) {
        const double phi = cut_conductance(g, cut);
        if (phi < out.phi_target) {
          out.verdict = CutMatchingVerdict::kSparseCut;
          out.cut_side = std::move(cut);
          out.cut_phi = phi;
          out.rounds_played = round + 1;
          break;
        }
      }
      if (flow == 0) {
        ++out.rounds_played;
        continue;  // nothing matched and no sparse cut: try the next split
      }
    }

    // --- Path decomposition: walk the flow units from each saturated
    // source, erase revisit loops, record the matching with its embedding.
    std::vector<std::vector<std::int64_t>> arc_flow(n + 2);
    for (int u = 0; u < n + 2; ++u) {
      auto& arcs = dinic.adj()[u];
      arc_flow[u].assign(arcs.size(), 0);
      for (std::size_t i = 0; i < arcs.size(); ++i) {
        arc_flow[u][i] = std::max<std::int64_t>(0, arcs[i].cap0 - arcs[i].cap);
      }
    }
    std::vector<MatchedPair> matching;
    std::vector<std::int64_t> round_usage(g.m(), 0);
    std::int64_t round_peak = 0;
    int round_dil = 0;
    for (std::size_t i = 0; i < dinic.adj()[src].size(); ++i) {
      if (arc_flow[src][i] <= 0) continue;
      arc_flow[src][i] = 0;
      std::vector<int> walk = {dinic.adj()[src][i].to};
      while (true) {
        const int u = walk.back();
        bool advanced = false;
        auto& arcs = dinic.adj()[u];
        for (std::size_t j = 0; j < arcs.size(); ++j) {
          if (arc_flow[u][j] <= 0) continue;
          --arc_flow[u][j];
          if (arcs[j].to == snk) break;  // arrived; outer loop re-checks
          walk.push_back(arcs[j].to);
          advanced = true;
          break;
        }
        if (!advanced) break;  // consumed the sink arc (or flow exhausted)
      }
      // Loop-erase: keep the first visit of every vertex; congestion and
      // dilation are recounted from the final simple path only.
      std::vector<int> last(n, -1);
      std::vector<int> path;
      for (int v : walk) {
        if (last[v] >= 0) {
          while (static_cast<int>(path.size()) > last[v] + 1) {
            last[path.back()] = -1;
            path.pop_back();
          }
        } else {
          last[v] = static_cast<int>(path.size());
          path.push_back(v);
        }
      }
      if (path.size() < 2) continue;  // degenerate unit: skip it
      MatchedPair pair;
      pair.u = path.front();
      pair.v = path.back();
      pair.path = std::move(path);
      for (std::size_t s = 0; s + 1 < pair.path.size(); ++s) {
        const int a = std::min(pair.path[s], pair.path[s + 1]);
        const int b = std::max(pair.path[s], pair.path[s + 1]);
        const int id = edge_id.at(static_cast<std::int64_t>(a) * n + b);
        round_peak = std::max(round_peak, ++round_usage[id]);
        edge_usage[id] = std::max<std::int64_t>(edge_usage[id] + 1, 0);
      }
      round_dil = std::max(round_dil,
                           static_cast<int>(pair.path.size()) - 1);
      embed_messages += static_cast<std::int64_t>(pair.path.size()) - 1;
      matching.push_back(std::move(pair));
    }
    if (matching.empty()) {
      ++out.rounds_played;
      continue;
    }
    for (const MatchedPair& pr : matching) {
      double* ru = mix.data() + static_cast<std::size_t>(pr.u) * n;
      double* rv = mix.data() + static_cast<std::size_t>(pr.v) * n;
      for (int w = 0; w < n; ++w) {
        const double avg = 0.5 * (ru[w] + rv[w]);
        ru[w] = rv[w] = avg;
      }
    }
    out.cert.matchings.push_back(std::move(matching));
    dilation_so_far = std::max(dilation_so_far, round_dil);
    // The round's flow is routed in O(congestion + dilation) rounds by the
    // classic scheduling bound, plus a matching-announcement aggregation.
    embed_rounds += round_peak + round_dil + log_n;
    embed_peak = std::max(embed_peak, round_peak);
    ++out.rounds_played;

    double min_entry = 1.0;
    for (double e : mix) min_entry = std::min(min_entry, e);
    alpha_hist.push_back(static_cast<double>(n) * min_entry);
    cong_hist.push_back(*std::max_element(edge_usage.begin(), edge_usage.end()));
    dil_hist.push_back(dilation_so_far);
    if (alpha_hist.back() >= params.mix_alpha) break;
  }

  out.ledger.charge_envelope("cut player: projection replays",
                             cut_player_rounds, 2 * g.m());
  out.ledger.charge("matching player: flow embeddings", embed_rounds,
                    embed_messages, embed_messages > 0 ? embed_peak : 0);

  if (out.verdict == CutMatchingVerdict::kSparseCut) return out;

  // Best-prefix certificate: stop after the round maximizing alpha_t / c_t —
  // matchings beyond it only added congestion faster than mixing.
  const int delta = g.max_degree();
  int best = -1;
  double best_bound = 0.0;
  for (std::size_t t = 0; t < alpha_hist.size(); ++t) {
    if (cong_hist[t] <= 0 || delta <= 0) continue;
    const double bound =
        alpha_hist[t] / (static_cast<double>(cong_hist[t]) * delta);
    if (bound > best_bound) {
      best_bound = bound;
      best = static_cast<int>(t);
    }
  }
  if (best < 0) return out;  // alpha never left zero: inconclusive
  out.cert.matchings.resize(best + 1);
  out.cert.alpha = alpha_hist[best];
  out.cert.congestion = cong_hist[best];
  out.cert.dilation = dil_hist[best];
  out.cert.phi_lower = best_bound;
  out.verdict = CutMatchingVerdict::kCertified;
  return out;
}

// ---------------------------------------------------------------------------
// The three-tier certification entry point.

struct PhiCertParams {
  int exact_cap = 12;           // brute force at or below this many vertices
  int power_iters = 60;         // Fiedler iterations (sweep upper + Cheeger)
  bool cut_matching = true;     // play the game above exact_cap
  int cut_matching_cap = 1024;  // skip the game above this size (O(n^2) state)
  CutMatchingParams game;
};

/// What certified_phi reports for one cluster. `cert` is the headline
/// (verdict + value; see PhiVerdict for which verdicts are sound bounds);
/// `estimate` always carries the spectral/exact value the old two-tier
/// phi_certificate would have returned, and `upper` a WITNESSED upper bound
/// (an actual cut: the best Fiedler sweep cut, the game's sparse cut, or the
/// exact minimizer) — so certified lower <= exact <= upper is a checkable
/// bracket. The ledger carries the game's CONGEST charges (empty when no
/// game ran).
struct PhiReport {
  PhiCertificate cert;
  double estimate = 1.0;
  double upper = 1.0;
  CutMatchingVerdict game_verdict = CutMatchingVerdict::kInconclusive;
  congest::Runtime ledger;
};

/// Three-tier conductance certification:
///   tier 1 — exact enumeration (n <= exact_cap): verdict kExact;
///   tier 2 — cut-matching game: verdict kCutMatching, phi is the replayed
///            certificate bound (verify_cut_matching runs internally; a
///            certificate that fails its own replay is discarded);
///   tier 3 — Cheeger estimate: verdict kCheeger, phi is NOT a bound.
/// Degenerate inputs resolve in metrics.hpp::phi_certificate (kTrivial /
/// kDisconnected) before any tier runs.
inline PhiReport certified_phi(const Graph& g, PhiCertParams params = {}) {
  PhiReport report;
  report.cert = phi_certificate(g, params.exact_cap, params.power_iters);
  report.estimate = report.cert.phi;
  if (report.cert.verdict != PhiVerdict::kCheeger) {
    report.upper = report.cert.phi;  // exact value, or the 1/0 conventions
    return report;
  }
  // The certification core: isolated vertices carry no volume (see
  // metrics.hpp) and the game needs connectivity.
  const InducedSubgraph core = induced_subgraph(g, non_isolated_vertices(g));
  const SweepCut sweep = sweep_min_cut(
      core.graph,
      approx_fiedler(core.graph, 0x517cc1b727220a95ULL, params.power_iters));
  report.upper = std::min(1.0, sweep.conductance);
  if (!params.cut_matching || core.graph.n() > params.cut_matching_cap) {
    return report;
  }
  CutMatchingOutcome game = cut_matching_game(core.graph, params.game);
  report.game_verdict = game.verdict;
  report.ledger.absorb(game.ledger, "cut-matching: ");
  if (game.verdict == CutMatchingVerdict::kSparseCut) {
    report.upper = std::min(report.upper, game.cut_phi);
  } else if (game.verdict == CutMatchingVerdict::kCertified) {
    const EmbeddingAudit audit = verify_cut_matching(core.graph, game.cert);
    if (audit.ok) {
      report.cert.phi = game.cert.phi_lower;
      report.cert.exact = false;
      report.cert.verdict = PhiVerdict::kCutMatching;
    }
  }
  return report;
}

}  // namespace mfd::expander
