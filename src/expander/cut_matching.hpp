// Certified conductance lower bounds via a deterministic cut-matching game —
// the KRV ("Graph partitioning using single commodity flows") potential
// game in the Chang–Saranurak deterministic expander-decomposition style
// (arXiv:2007.14898).
//
// Given a connected cluster G, the game plays O(log^2 n) rounds. Each round
//   * the CUT PLAYER proposes a bisection: split the sorted values of a
//     probe vector y = F * proj at the median, where F is the (implicit)
//     mixing matrix and proj a seeded zero-sum vector (deterministic — the
//     seed is a published constant);
//   * the MATCHING PLAYER routes a unit of flow from every S vertex to a
//     distinct S-bar vertex through G, with every edge capped at
//     ceil(1/phi_target) (Dinic max flow). If the flow saturates, its path
//     decomposition is a perfect matching across the bisection EMBEDDED in G
//     — the matched pairs average their rows of F. If it cannot, the
//     residual min cut is a sparse cut of G: the game stops and returns that
//     side, re-checked by direct conductance computation.
//
// THE IMPLICIT-MATRIX ENGINES. The distributed formulation never holds F
// explicitly — the certificate is the matching sequence, which is all the
// game keeps. Two mechanisms replace the resident n x n matrix:
//
//   * Streaming cut player (exact, not approximate): a bank of k seeded
//     probe vectors y_j is maintained incrementally — initialising
//     y_j = proj_j establishes y_j = F * proj_j at F = I, and every applied
//     matching averages the matched pairs' probe entries, which IS the KRV
//     row-averaging applied to F * proj_j. Round r cuts on probe r mod k.
//     Cost per round: O(k * |matching|) instead of O(n^2).
//   * Blocked column replay for alpha: alpha = n * min entry of F is only
//     needed at candidate certificate prefixes (powers of two of the
//     appended-matching count, plus the final prefix — a geometric schedule
//     that bounds total replay work at ~2x one full-prefix replay). Each
//     evaluation replays the stored matchings against identity column
//     blocks of B basis vectors: O(n * B) memory, embarrassingly parallel
//     over blocks via congest::ShardPool. Every matrix entry receives the
//     identical sequence of 0.5*(a+b) averagings either way (pairs within a
//     round are vertex-disjoint, the round order is fixed) and min over
//     doubles is order-free, so the replayed alpha is BIT-IDENTICAL to a
//     resident-matrix scan for any block size and thread count.
//
// Engine selection: kAuto keeps the dense resident-matrix engine below
// `dense_crossover` vertices (it is faster there and serves as the
// equivalence-gated reference — tests/test_fuzz.cpp pins dense == implicit
// across all generator families) and switches to the implicit engine above
// it, which is what lets certified_phi's cut_matching_cap sit at 65536
// instead of 1024.
//
// Soundness of the certificate (verified by verify_cut_matching, which
// replays it from the recorded paths alone):
//   Let H be the multigraph union of the matchings, each edge carrying its
//   recorded path, c = max #paths over any edge of G, Delta = max degree.
//   The mixing matrix F (identity, then matched rows averaged) is doubly
//   stochastic, and every unit of commodity w held at u != w physically
//   crossed the matching edges between them, at most one unit per matching
//   edge per round. Hence for every cut (S, S-bar):
//       cut_H(S) >= sum of cross-held commodity >= alpha * min(|S|, |S-bar|)
//   where alpha = n * (min entry of F). Each H edge crossing the cut forces
//   its path across at least one G edge of the cut, so
//       cut_G(S) >= cut_H(S) / c,
//   and min(vol(S), vol(S-bar)) <= Delta * min(|S|, |S-bar|), giving
//       phi(G) >= alpha / (c * Delta)
//   for EVERY cut simultaneously — a certified lower bound, in contrast to
//   the Rayleigh-quotient Cheeger estimate (which approaches lambda2 from
//   above and certifies nothing). The certificate is the recorded matchings
//   with their paths plus (alpha, congestion, dilation): replaying the paths
//   re-derives every number, so a consumer never has to trust the game.
//
// certified_phi() stacks the three tiers for a cluster: exact enumeration at
// <= exact_cap vertices, this game's certified bound above it, and the
// Cheeger estimate when the game is inconclusive — with the verdict kind
// surfaced (metrics.hpp::PhiVerdict) and the game's CONGEST cost charged
// through the returned ledger.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "congest/runtime.hpp"
#include "congest/shard.hpp"
#include "graph/graph.hpp"
#include "graph/metrics.hpp"
#include "graph/ops.hpp"

namespace mfd::expander {

namespace detail_cm {

/// Dinic max flow on small integer-capacity networks. Undirected graph edges
/// are modeled as one arc pair sharing capacity in both directions, so
/// opposite flows cancel instead of stacking congestion.
class Dinic {
 public:
  explicit Dinic(int nodes) : adj_(nodes), level_(nodes), it_(nodes) {}

  struct Arc {
    int to;
    std::int64_t cap;
    std::int64_t cap0;  // initial capacity (flow = cap0 - cap when positive)
    int rev;            // index of the reverse arc in adj_[to]
  };

  void add_arc(int u, int v, std::int64_t cap, std::int64_t rev_cap = 0) {
    adj_[u].push_back({v, cap, cap, static_cast<int>(adj_[v].size())});
    adj_[v].push_back({u, rev_cap, rev_cap, static_cast<int>(adj_[u].size()) - 1});
  }

  std::int64_t max_flow(int s, int t) {
    std::int64_t flow = 0;
    while (bfs(s, t)) {
      std::fill(it_.begin(), it_.end(), 0);
      std::int64_t pushed;
      while ((pushed = dfs(s, t, INT64_C(1) << 60)) > 0) flow += pushed;
    }
    return flow;
  }

  /// Residual reachability from s after max_flow — the min-cut source side.
  std::vector<char> reachable(int s) const {
    std::vector<char> seen(adj_.size(), 0);
    std::vector<int> stack = {s};
    seen[s] = 1;
    while (!stack.empty()) {
      const int u = stack.back();
      stack.pop_back();
      for (const Arc& a : adj_[u]) {
        if (a.cap > 0 && !seen[a.to]) {
          seen[a.to] = 1;
          stack.push_back(a.to);
        }
      }
    }
    return seen;
  }

  std::vector<std::vector<Arc>>& adj() { return adj_; }

 private:
  bool bfs(int s, int t) {
    std::fill(level_.begin(), level_.end(), -1);
    std::vector<int> q = {s};
    level_[s] = 0;
    for (std::size_t head = 0; head < q.size(); ++head) {
      const int u = q[head];
      for (const Arc& a : adj_[u]) {
        if (a.cap > 0 && level_[a.to] < 0) {
          level_[a.to] = level_[u] + 1;
          q.push_back(a.to);
        }
      }
    }
    return level_[t] >= 0;
  }

  std::int64_t dfs(int u, int t, std::int64_t limit) {
    if (u == t) return limit;
    for (int& i = it_[u]; i < static_cast<int>(adj_[u].size()); ++i) {
      Arc& a = adj_[u][i];
      if (a.cap <= 0 || level_[a.to] != level_[u] + 1) continue;
      const std::int64_t pushed = dfs(a.to, t, std::min(limit, a.cap));
      if (pushed > 0) {
        a.cap -= pushed;
        adj_[a.to][a.rev].cap += pushed;
        return pushed;
      }
    }
    return 0;
  }

  std::vector<std::vector<Arc>> adj_;
  std::vector<int> level_;
  std::vector<int> it_;
};

/// splitmix64-derived value in (-1, 1) — same recipe as approx_fiedler so
/// the cut player's projection vector is a pure function of (seed, v).
inline double hash_unit(std::uint64_t seed, int v) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(v) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53 * 2.0 - 1.0;
}

/// The doubly-stochastic KRV update on two length-`len` state rows. Every
/// engine (dense matrix, probe bank, blocked replay, verifier) funnels
/// through this one body so each state entry sees a syntactically identical
/// floating-point op sequence — the root of the bit-identity contract.
inline void average_rows(double* ru, double* rv, int len) {
  for (int j = 0; j < len; ++j) {
    const double avg = 0.5 * (ru[j] + rv[j]);
    ru[j] = rv[j] = avg;
  }
}

/// Column block width for the alpha replay: `block <= 0` derives a width
/// keeping one resident buffer of n * block doubles near 8 MiB, capped at
/// n/4 columns so the implicit engine's state stays strictly below the
/// dense matrix at every size. Total replay work is block-size-invariant
/// (sum of block widths is n), so the cap costs nothing serially.
inline int derive_replay_block(int n, int block) {
  if (block <= 0) {
    block = static_cast<int>((std::int64_t{1} << 20) / std::max(n, 1));
    block = std::min(block, (n + 3) / 4);
  }
  return std::max(1, std::min(block, std::max(n, 1)));
}

}  // namespace detail_cm

/// Which mixing-state engine the game runs.
enum class CutMatchingEngine {
  kAuto,      // dense at n <= dense_crossover, implicit above
  kDense,     // resident n x n matrix (the equivalence reference)
  kImplicit,  // probe bank + blocked column replay, O(n + B*n) state
};

struct CutMatchingParams {
  double phi_target = 0.0;  // flow capacity = ceil(1/phi_target); 0 derives
                            // max(Cheeger estimate, 1/n) from the input
  int max_rounds = 0;       // 0 derives 2 * ceil_log2(n)^2
  double mix_alpha = 0.5;   // stop early once n * min entry of F reaches this
  int power_iters = 60;     // Cheeger probe used when phi_target is derived
  std::uint64_t seed = 0x243f6a8885a308d3ULL;  // published cut-player seed
  int probes = 8;           // cut-player probe bank size k (round-robin)
  CutMatchingEngine engine = CutMatchingEngine::kAuto;
  int dense_crossover = 512;  // kAuto: resident matrix at or below this n
  int replay_block = 0;       // alpha replay column width B; 0 derives ~8 MiB
  congest::ShardPool* pool = nullptr;  // replay blocks fan out here
};

/// One embedded matching edge: `path` walks from u to v through adjacent
/// vertices of the cluster (path.front() == u, path.back() == v).
struct MatchedPair {
  int u = -1, v = -1;
  std::vector<int> path;
};

/// The replayable certificate: the per-round matchings with their embedding
/// paths, plus the three derived numbers a replay must reproduce. The
/// certified bound is phi_lower = alpha / (congestion * max_degree); see the
/// header comment for the proof.
struct CutMatchingCertificate {
  std::vector<std::vector<MatchedPair>> matchings;  // one list per round
  std::int64_t congestion = 0;  // max #paths across any undirected edge
  int dilation = 0;             // max path length in edges
  double alpha = 0.0;           // n * min entry of the replayed mixing matrix
  double phi_lower = 0.0;       // alpha / (congestion * max_degree)
};

namespace detail_cm {

/// Exact min entry of the mixing matrix after the first `prefix` matchings,
/// computed without a resident matrix: identity columns are replayed in
/// blocks of `block` basis vectors (O(n * block) memory per buffer), blocks
/// fanned over `pool` when provided. Entry (u, w) receives the identical
/// averaging sequence whether held in a full matrix or a column block —
/// within a round the pairs are vertex-disjoint, and min over doubles is
/// order-free — so the result is bit-identical to a dense scan for ANY
/// block size and thread count. Endpoints must be pre-validated in [0, n).
inline double replay_min_entry(
    int n, const std::vector<std::vector<MatchedPair>>& matchings,
    std::size_t prefix, int block, congest::ShardPool* pool) {
  if (n <= 0) return 0.0;
  block = derive_replay_block(n, block);
  prefix = std::min(prefix, matchings.size());
  const int nblocks = (n + block - 1) / block;
  std::vector<double> block_min(nblocks, 1.0);
  const auto run_block = [&](int b) {
    const int w0 = b * block;
    const int bw = std::min(n, w0 + block) - w0;
    std::vector<double> col(static_cast<std::size_t>(n) * bw, 0.0);
    for (int j = 0; j < bw; ++j) {
      col[static_cast<std::size_t>(w0 + j) * bw + j] = 1.0;
    }
    for (std::size_t r = 0; r < prefix; ++r) {
      for (const MatchedPair& p : matchings[r]) {
        average_rows(col.data() + static_cast<std::size_t>(p.u) * bw,
                     col.data() + static_cast<std::size_t>(p.v) * bw, bw);
      }
    }
    double mn = 1.0;
    for (double e : col) mn = std::min(mn, e);
    block_min[b] = mn;
  };
  if (pool != nullptr && pool->threads() > 1 && nblocks > 1) {
    pool->run(nblocks, [&](int b, int /*worker*/) { run_block(b); });
  } else {
    for (int b = 0; b < nblocks; ++b) run_block(b);
  }
  double mn = 1.0;
  for (double e : block_min) mn = std::min(mn, e);
  return mn;
}

}  // namespace detail_cm

enum class CutMatchingVerdict {
  kCertified,     // cert holds a positive, replay-verifiable lower bound
  kSparseCut,     // cut_side is a re-checked cut of conductance < phi_target
  kInconclusive,  // no mixing achieved (e.g. n < 2); nothing certified
};

struct CutMatchingOutcome {
  CutMatchingVerdict verdict = CutMatchingVerdict::kInconclusive;
  CutMatchingCertificate cert;
  std::vector<char> cut_side;  // kSparseCut: the witnessed side (1 = in S)
  double cut_phi = 2.0;        // kSparseCut: directly recomputed phi(cut_side)
  int rounds_played = 0;
  double phi_target = 0.0;     // the target the matching player actually used
  CutMatchingEngine engine_used = CutMatchingEngine::kDense;
  int alpha_evals = 0;         // checkpoint evaluations of alpha performed
  // Analytic high-water of the mixing state in bytes: probe bank plus either
  // the resident matrix (dense) or ONE replay block buffer (implicit; a
  // pool multiplies resident buffers by its thread count, but the reported
  // figure stays thread-invariant so outcomes are bit-comparable).
  std::int64_t state_bytes_peak = 0;
  congest::Runtime ledger;     // CONGEST charges of the whole game
};

/// Replay audit of a certificate against the graph it claims to embed in:
/// every path must walk adjacent vertices between its endpoints, matchings
/// must be vertex-disjoint per round, and congestion / dilation / alpha /
/// phi_lower are recomputed from scratch and compared. `ok` means the
/// recorded bound is sound; recomputed_phi_lower is the replayed value.
struct EmbeddingAudit {
  bool ok = true;
  std::string violation;
  std::int64_t congestion = 0;
  int dilation = 0;
  double alpha = 0.0;
  double recomputed_phi_lower = 0.0;
};

/// Knobs for verify_cut_matching's alpha replay — same semantics as the
/// game's: any block size / pool gives bit-identical results, the knobs only
/// trade memory for parallelism.
struct VerifyParams {
  int replay_block = 0;                // column width B; 0 derives ~8 MiB
  congest::ShardPool* pool = nullptr;  // replay blocks fan out here
};

inline EmbeddingAudit verify_cut_matching(const Graph& g,
                                          const CutMatchingCertificate& cert,
                                          const VerifyParams& vp = {}) {
  EmbeddingAudit audit;
  const auto fail = [&audit](const std::string& why) {
    audit.ok = false;
    if (audit.violation.empty()) audit.violation = why;
  };
  const int n = g.n();
  if (n == 0) {
    fail("empty graph cannot carry a certificate");
    return audit;
  }
  // Structural pass: path validity, per-round disjointness, congestion and
  // dilation recounted on flat per-arc-slot counters (no hashing).
  std::vector<std::int64_t> usage(2 * g.m(), 0);
  std::vector<char> matched(n, 0);
  for (const std::vector<MatchedPair>& round : cert.matchings) {
    std::fill(matched.begin(), matched.end(), 0);
    for (const MatchedPair& p : round) {
      if (p.u < 0 || p.u >= n || p.v < 0 || p.v >= n || p.u == p.v) {
        fail("matched pair endpoints out of range or equal");
        return audit;
      }
      if (matched[p.u] || matched[p.v]) {
        fail("matching not vertex-disjoint within a round");
        return audit;
      }
      matched[p.u] = matched[p.v] = 1;
      if (p.path.empty() || p.path.front() != p.u || p.path.back() != p.v) {
        fail("path does not connect its matched endpoints");
        return audit;
      }
      for (std::size_t i = 0; i + 1 < p.path.size(); ++i) {
        const int a = p.path[i], b = p.path[i + 1];
        if (a < 0 || a >= n || b < 0 || b >= n) {
          fail("path step is not an edge of the graph");
          return audit;
        }
        const std::int64_t slot = g.arc_index(std::min(a, b), std::max(a, b));
        if (slot < 0) {
          fail("path step is not an edge of the graph");
          return audit;
        }
        audit.congestion = std::max(audit.congestion, ++usage[slot]);
      }
      audit.dilation =
          std::max(audit.dilation, static_cast<int>(p.path.size()) - 1);
    }
  }
  // Alpha via the same blocked column replay the implicit engine runs — the
  // verifier scales to exactly the certificates the game can now produce.
  audit.alpha =
      static_cast<double>(n) *
      detail_cm::replay_min_entry(n, cert.matchings, cert.matchings.size(),
                                  vp.replay_block, vp.pool);
  const int delta = g.max_degree();
  audit.recomputed_phi_lower =
      (audit.congestion > 0 && delta > 0)
          ? audit.alpha / (static_cast<double>(audit.congestion) * delta)
          : 0.0;
  if (audit.congestion != cert.congestion) fail("recorded congestion mismatch");
  if (audit.dilation != cert.dilation) fail("recorded dilation mismatch");
  if (std::abs(audit.alpha - cert.alpha) > 1e-9) fail("recorded alpha mismatch");
  if (cert.phi_lower > audit.recomputed_phi_lower + 1e-12) {
    fail("recorded phi_lower exceeds the replayed bound");
  }
  return audit;
}

/// Play the deterministic cut-matching game on a CONNECTED graph. Returns
///   * kSparseCut with a re-checked witnessed cut of conductance below
///     phi_target (the residual min cut of a failed matching flow), or
///   * kCertified with a replayable phi lower-bound certificate (the
///     checkpoint prefix maximizing alpha / congestion — later matchings
///     that only add congestion are dropped), or
///   * kInconclusive when no mixing was achieved (n < 2, or partial
///     matchings left some mixing entry at zero for every prefix).
/// The ledger charges the game's CONGEST cost: the cut player's probe
/// exchanges and the checkpoint alpha replays are envelope-billed, the
/// matching embeddings are measured (one message per path edge, peak
/// per-edge path count as congestion). Dense and implicit engines share
/// every decision path, so the outcome — certificate, cut, ledger — is
/// bit-identical across engines, block sizes, and thread counts.
inline CutMatchingOutcome cut_matching_game(const Graph& g,
                                            CutMatchingParams params = {}) {
  CutMatchingOutcome out;
  const int n = g.n();
  if (n < 2 || g.m() == 0) return out;

  // Derive the flow target when the caller did not pin one: the Cheeger
  // estimate is the natural scale ("can the game certify what the spectral
  // heuristic believes?"), floored at 1/n so capacities stay bounded.
  double target = params.phi_target;
  if (target <= 0.0) {
    const PhiCertificate est = phi_certificate(g, 0, params.power_iters);
    target = std::max({est.phi, 1.0 / n, 1e-6});
  }
  out.phi_target = target;
  const std::int64_t cap = std::min<std::int64_t>(
      static_cast<std::int64_t>(std::ceil(1.0 / target)), 4 * g.m() + 1);

  const int log_n = congest::ceil_log2(n);
  const int max_rounds =
      params.max_rounds > 0 ? params.max_rounds : 2 * log_n * log_n;

  const bool dense =
      params.engine == CutMatchingEngine::kDense ||
      (params.engine == CutMatchingEngine::kAuto && n <= params.dense_crossover);
  out.engine_used =
      dense ? CutMatchingEngine::kDense : CutMatchingEngine::kImplicit;
  const int block = detail_cm::derive_replay_block(n, params.replay_block);
  const int k = std::max(1, params.probes);

  // Probe bank: row v holds (F * proj_j)[v] for the k seeded projections,
  // column-major per vertex so one average_rows call updates every probe of
  // a matched pair. Initialised to the mean-centered projections (F = I).
  std::vector<double> probes(static_cast<std::size_t>(n) * k);
  for (int j = 0; j < k; ++j) {
    double mean = 0.0;
    for (int v = 0; v < n; ++v) mean += detail_cm::hash_unit(params.seed + j, v);
    mean /= n;
    for (int v = 0; v < n; ++v) {
      probes[static_cast<std::size_t>(v) * k + j] =
          detail_cm::hash_unit(params.seed + j, v) - mean;
    }
  }

  // Dense reference engine only: the resident mixing matrix.
  std::vector<double> mix;
  if (dense) {
    mix.assign(static_cast<std::size_t>(n) * n, 0.0);
    for (int v = 0; v < n; ++v) mix[static_cast<std::size_t>(v) * n + v] = 1.0;
  }
  out.state_bytes_peak =
      8 * (static_cast<std::int64_t>(n) * k +
           (dense ? static_cast<std::int64_t>(n) * n
                  : static_cast<std::int64_t>(n) * block));

  // Per-edge path counts on canonical (min -> max) CSR arc slots; the
  // running max IS the congestion at every prefix because usage only grows.
  std::vector<std::int64_t> edge_usage(2 * g.m(), 0);
  std::int64_t cong_so_far = 0;
  int dilation_so_far = 0;

  // Checkpoint trail: alpha is evaluated only at prefixes that are powers
  // of two of the appended-matching count (plus the final prefix), with the
  // congestion/dilation snapshot the certificate would pay at that prefix.
  std::vector<std::size_t> ck_prefix;
  std::vector<double> ck_alpha;
  std::vector<std::int64_t> ck_cong;
  std::vector<int> ck_dil;

  std::int64_t cut_player_rounds = 0;
  std::int64_t embed_rounds = 0, embed_messages = 0, embed_peak = 0;

  std::vector<int> order(n);
  std::vector<int> side(n, 0);  // 1 = S (flow sources) this round

  // One alpha evaluation at the current prefix. A distributed run replays
  // the prefix's matchings on a scalar (one averaging exchange per matching,
  // routed along its paths) — billed below at that cost for BOTH engines so
  // the ledger stays engine-invariant.
  const auto alpha_at = [&](std::size_t prefix) -> double {
    ++out.alpha_evals;
    cut_player_rounds +=
        static_cast<std::int64_t>(prefix) * (dilation_so_far + 1);
    double mn = 1.0;
    if (dense) {
      for (double e : mix) mn = std::min(mn, e);
    } else {
      mn = detail_cm::replay_min_entry(n, out.cert.matchings, prefix, block,
                                       params.pool);
    }
    return static_cast<double>(n) * mn;
  };

  for (int round = 0; round < max_rounds; ++round) {
    // --- Cut player: median split of the round-robin probe. The probe bank
    // already holds F * proj exactly, so the split costs a sort — the old
    // dense engine's O(n^2) F * proj product is gone. A distributed round
    // pays one probe exchange along the latest matching plus a median
    // selection, envelope-billed below.
    const int j = round % k;
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&probes, j, k](int a, int b) {
      const double pa = probes[static_cast<std::size_t>(a) * k + j];
      const double pb = probes[static_cast<std::size_t>(b) * k + j];
      return pa != pb ? pa < pb : a < b;
    });
    const int half = n / 2;
    std::fill(side.begin(), side.end(), 0);
    for (int i = 0; i < half; ++i) side[order[i]] = 1;
    cut_player_rounds += (dilation_so_far + 1) + log_n;

    // --- Matching player: route one unit from every S vertex to a distinct
    // S-bar vertex, every graph edge capped at ceil(1/phi_target).
    const int src = n, snk = n + 1;
    detail_cm::Dinic dinic(n + 2);
    for (int v = 0; v < n; ++v) {
      if (side[v]) {
        dinic.add_arc(src, v, 1);
      } else {
        dinic.add_arc(v, snk, 1);
      }
    }
    for (const auto& [a, b] : g.edges()) dinic.add_arc(a, b, cap, cap);
    const std::int64_t flow = dinic.max_flow(src, snk);

    if (flow < half) {
      // The matching player is stuck: the residual min cut is a sparse cut
      // of G. Re-check it directly — the witness stands on recomputation,
      // not on flow theory.
      const std::vector<char> reach = dinic.reachable(src);
      std::vector<char> cut(n, 0);
      int cut_size = 0;
      for (int v = 0; v < n; ++v) {
        cut[v] = reach[v];
        cut_size += cut[v];
      }
      if (cut_size > 0 && cut_size < n) {
        const double phi = cut_conductance(g, cut);
        if (phi < out.phi_target) {
          out.verdict = CutMatchingVerdict::kSparseCut;
          out.cut_side = std::move(cut);
          out.cut_phi = phi;
          out.rounds_played = round + 1;
          break;
        }
      }
      if (flow == 0) {
        ++out.rounds_played;
        continue;  // nothing matched and no sparse cut: try the next split
      }
    }

    // --- Path decomposition: walk the flow units from each saturated
    // source, erase revisit loops, record the matching with its embedding.
    std::vector<std::vector<std::int64_t>> arc_flow(n + 2);
    for (int u = 0; u < n + 2; ++u) {
      auto& arcs = dinic.adj()[u];
      arc_flow[u].assign(arcs.size(), 0);
      for (std::size_t i = 0; i < arcs.size(); ++i) {
        arc_flow[u][i] = std::max<std::int64_t>(0, arcs[i].cap0 - arcs[i].cap);
      }
    }
    std::vector<MatchedPair> matching;
    std::vector<std::int64_t> round_usage(2 * g.m(), 0);
    std::int64_t round_peak = 0;
    int round_dil = 0;
    for (std::size_t i = 0; i < dinic.adj()[src].size(); ++i) {
      if (arc_flow[src][i] <= 0) continue;
      arc_flow[src][i] = 0;
      std::vector<int> walk = {dinic.adj()[src][i].to};
      while (true) {
        const int u = walk.back();
        bool advanced = false;
        auto& arcs = dinic.adj()[u];
        for (std::size_t jj = 0; jj < arcs.size(); ++jj) {
          if (arc_flow[u][jj] <= 0) continue;
          --arc_flow[u][jj];
          if (arcs[jj].to == snk) break;  // arrived; outer loop re-checks
          walk.push_back(arcs[jj].to);
          advanced = true;
          break;
        }
        if (!advanced) break;  // consumed the sink arc (or flow exhausted)
      }
      // Loop-erase: keep the first visit of every vertex; congestion and
      // dilation are recounted from the final simple path only.
      std::vector<int> last(n, -1);
      std::vector<int> path;
      for (int v : walk) {
        if (last[v] >= 0) {
          while (static_cast<int>(path.size()) > last[v] + 1) {
            last[path.back()] = -1;
            path.pop_back();
          }
        } else {
          last[v] = static_cast<int>(path.size());
          path.push_back(v);
        }
      }
      if (path.size() < 2) continue;  // degenerate unit: skip it
      MatchedPair pair;
      pair.u = path.front();
      pair.v = path.back();
      pair.path = std::move(path);
      for (std::size_t s = 0; s + 1 < pair.path.size(); ++s) {
        const int a = std::min(pair.path[s], pair.path[s + 1]);
        const int b = std::max(pair.path[s], pair.path[s + 1]);
        const std::int64_t slot = g.arc_index(a, b);
        round_peak = std::max(round_peak, ++round_usage[slot]);
        cong_so_far = std::max(cong_so_far, ++edge_usage[slot]);
      }
      round_dil = std::max(round_dil,
                           static_cast<int>(pair.path.size()) - 1);
      embed_messages += static_cast<std::int64_t>(pair.path.size()) - 1;
      matching.push_back(std::move(pair));
    }
    if (matching.empty()) {
      ++out.rounds_played;
      continue;
    }
    // Apply the matching: the probe bank always, the resident matrix only
    // under the dense engine — the implicit engine's matrix lives solely in
    // the recorded matchings.
    for (const MatchedPair& pr : matching) {
      detail_cm::average_rows(probes.data() + static_cast<std::size_t>(pr.u) * k,
                              probes.data() + static_cast<std::size_t>(pr.v) * k,
                              k);
      if (dense) {
        detail_cm::average_rows(mix.data() + static_cast<std::size_t>(pr.u) * n,
                                mix.data() + static_cast<std::size_t>(pr.v) * n,
                                n);
      }
    }
    out.cert.matchings.push_back(std::move(matching));
    dilation_so_far = std::max(dilation_so_far, round_dil);
    // The round's flow is routed in O(congestion + dilation) rounds by the
    // classic scheduling bound, plus a matching-announcement aggregation.
    embed_rounds += round_peak + round_dil + log_n;
    embed_peak = std::max(embed_peak, round_peak);
    ++out.rounds_played;

    const std::size_t s = out.cert.matchings.size();
    if ((s & (s - 1)) == 0) {  // geometric checkpoint: 1, 2, 4, 8, ...
      const double a = alpha_at(s);
      ck_prefix.push_back(s);
      ck_alpha.push_back(a);
      ck_cong.push_back(cong_so_far);
      ck_dil.push_back(dilation_so_far);
      if (a >= params.mix_alpha) break;
    }
  }

  // The final prefix is always a candidate, whether or not it is a power of
  // two — a run cut short by max_rounds still certifies what it mixed.
  if (out.verdict != CutMatchingVerdict::kSparseCut) {
    const std::size_t s = out.cert.matchings.size();
    if (s > 0 && (ck_prefix.empty() || ck_prefix.back() != s)) {
      const double a = alpha_at(s);
      ck_prefix.push_back(s);
      ck_alpha.push_back(a);
      ck_cong.push_back(cong_so_far);
      ck_dil.push_back(dilation_so_far);
    }
  }

  out.ledger.charge_envelope("cut player: probes + alpha replays",
                             cut_player_rounds, 2 * g.m());
  out.ledger.charge("matching player: flow embeddings", embed_rounds,
                    embed_messages, embed_messages > 0 ? embed_peak : 0);

  if (out.verdict == CutMatchingVerdict::kSparseCut) return out;

  // Best-checkpoint certificate: stop after the prefix maximizing
  // alpha_t / c_t — matchings beyond it added congestion faster than mixing.
  const int delta = g.max_degree();
  int best = -1;
  double best_bound = 0.0;
  for (std::size_t t = 0; t < ck_prefix.size(); ++t) {
    if (ck_cong[t] <= 0 || delta <= 0) continue;
    const double bound =
        ck_alpha[t] / (static_cast<double>(ck_cong[t]) * delta);
    if (bound > best_bound) {
      best_bound = bound;
      best = static_cast<int>(t);
    }
  }
  if (best < 0) return out;  // alpha never left zero: inconclusive
  out.cert.matchings.resize(ck_prefix[best]);
  out.cert.alpha = ck_alpha[best];
  out.cert.congestion = ck_cong[best];
  out.cert.dilation = ck_dil[best];
  out.cert.phi_lower = best_bound;
  out.verdict = CutMatchingVerdict::kCertified;
  return out;
}

// ---------------------------------------------------------------------------
// The three-tier certification entry point.

struct PhiCertParams {
  int exact_cap = 12;        // brute force at or below this many vertices
  int power_iters = 60;      // Fiedler iterations (sweep upper + Cheeger)
  bool cut_matching = true;  // play the game above exact_cap
  // Skip the game above this size. The implicit engine's state is
  // O(n + m + B*n) — no resident matrix — so the cap is a wall-clock knob
  // (each alpha replay is O(#matching-edges * n)), not a memory wall.
  int cut_matching_cap = 65536;
  CutMatchingParams game;
  congest::ShardPool* pool = nullptr;  // forwarded to game + verify replays
};

/// What certified_phi reports for one cluster. `cert` is the headline
/// (verdict + value; see PhiVerdict for which verdicts are sound bounds);
/// `estimate` always carries the spectral/exact value the old two-tier
/// phi_certificate would have returned, and `upper` a WITNESSED upper bound
/// (an actual cut: the best Fiedler sweep cut, the game's sparse cut, or the
/// exact minimizer) — so certified lower <= exact <= upper is a checkable
/// bracket. The ledger carries the game's CONGEST charges (empty when no
/// game ran); game_state_bytes the game's mixing-state high-water.
struct PhiReport {
  PhiCertificate cert;
  double estimate = 1.0;
  double upper = 1.0;
  CutMatchingVerdict game_verdict = CutMatchingVerdict::kInconclusive;
  std::int64_t game_state_bytes = 0;
  congest::Runtime ledger;
};

/// Three-tier conductance certification:
///   tier 1 — exact enumeration (n <= exact_cap): verdict kExact;
///   tier 2 — cut-matching game: verdict kCutMatching, phi is the replayed
///            certificate bound (verify_cut_matching runs internally; a
///            certificate that fails its own replay is discarded);
///   tier 3 — Cheeger estimate: verdict kCheeger, phi is NOT a bound.
/// Degenerate inputs resolve in metrics.hpp::phi_certificate (kTrivial /
/// kDisconnected) before any tier runs.
inline PhiReport certified_phi(const Graph& g, PhiCertParams params = {}) {
  PhiReport report;
  report.cert = phi_certificate(g, params.exact_cap, params.power_iters);
  report.estimate = report.cert.phi;
  if (report.cert.verdict != PhiVerdict::kCheeger) {
    report.upper = report.cert.phi;  // exact value, or the 1/0 conventions
    return report;
  }
  // The certification core: isolated vertices carry no volume (see
  // metrics.hpp) and the game needs connectivity.
  const InducedSubgraph core = induced_subgraph(g, non_isolated_vertices(g));
  const SweepCut sweep = sweep_min_cut(
      core.graph,
      approx_fiedler(core.graph, 0x517cc1b727220a95ULL, params.power_iters));
  report.upper = std::min(1.0, sweep.conductance);
  if (!params.cut_matching || core.graph.n() > params.cut_matching_cap) {
    return report;
  }
  CutMatchingParams gp = params.game;
  if (gp.pool == nullptr) gp.pool = params.pool;
  CutMatchingOutcome game = cut_matching_game(core.graph, gp);
  report.game_verdict = game.verdict;
  report.game_state_bytes = game.state_bytes_peak;
  report.ledger.absorb(game.ledger, "cut-matching: ");
  if (game.verdict == CutMatchingVerdict::kSparseCut) {
    report.upper = std::min(report.upper, game.cut_phi);
  } else if (game.verdict == CutMatchingVerdict::kCertified) {
    VerifyParams vp;
    vp.replay_block = gp.replay_block;
    vp.pool = gp.pool;
    const EmbeddingAudit audit = verify_cut_matching(core.graph, game.cert, vp);
    if (audit.ok) {
      report.cert.phi = game.cert.phi_lower;
      report.cert.exact = false;
      report.cert.verdict = PhiVerdict::kCutMatching;
    }
  }
  return report;
}

}  // namespace mfd::expander
