// Lemma 2.2 — information gathering by load balancing (token diffusion).
//
// Routing domain: the expander part containing the sink v*. Every vertex
// starts with one token per incident intra-part edge (so the token population
// is the part volume ~ 2|E|, the regime the paper's bounds are stated in) and
// the sink must collect a (1 - f) fraction of them.
//
// Mechanics are the uniform-spreading diffusion dual to the lazy random walk:
// each round every non-sink vertex pushes floor(load / (deg+1)) mass — capped
// at one token per edge per round — to each intra-part neighbor, and mass
// arriving at v* counts as delivered. Integer flows floor to zero once the
// per-vertex remainder drops below deg+1 tokens; that is the small-remainder
// regime Lemma 2.2 fixes by *token splitting*: when a whole block of rounds
// makes no progress, every token is split in two (all masses double, the
// delivery target scales with them) so the diffusion regains granularity.
// LoadBalanceParams::max_splits = 0 disables the fix — the ablation bench
// shows the gather then stalls below its target.
//
// Round accounting (LoadBalanceResult::rounds, units: simulated CONGEST
// rounds) follows the repo's Ledger convention of charging the *schedule* the
// oblivious algorithm commits to, not the adaptive simulation length: the
// Lemma 2.2 bound O(phi^-2 (|E|/deg v*) log|E| log^2 f^-1) evaluated with
// unit constants on the measured part parameters, plus any simulated rounds
// beyond it. A run that stalls reports the full outer budget — the
// distributed algorithm has no cheap way to detect global non-progress.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "decomp/clustering.hpp"
#include "expander/split.hpp"

namespace mfd::expander {

struct LoadBalanceParams {
  int max_outer = 200;     // outer blocks (one block = ~1/phi diffusion rounds)
  int max_splits = 20;     // token-splitting doublings; 0 disables the fix
  double phi_floor = 0.02; // clamp for the certificate in the schedule formula
  std::int64_t round_cap = 200000;  // simulation safety cap
};

struct LoadBalanceResult {
  double delivered_fraction = 0.0;
  std::int64_t rounds = 0;   // charged schedule rounds (see header comment)
  int outer_iterations = 0;  // diffusion blocks executed (budget if stalled)
  std::int64_t max_load = 0; // peak per-vertex load, in whole-token units
  int splits_used = 0;
  bool stalled = false;
  congest::Runtime ledger;
};

inline LoadBalanceResult gather_load_balance(const ExpanderSplit& sp,
                                             int v_star, double f,
                                             LoadBalanceParams p = {}) {
  LoadBalanceResult out;
  const int pid = sp.part_of(v_star);
  const std::vector<int>& verts = sp.members[pid];
  const double phi =
      std::min(1.0, std::max(sp.phi_cert[pid], p.phi_floor));
  f = std::min(std::max(f, 1e-9), 1.0);

  // Local state: one slot per part vertex; v* mass counts as delivered.
  std::vector<int> local(sp.g.n(), -1);
  for (std::size_t i = 0; i < verts.size(); ++i) {
    local[verts[i]] = static_cast<int>(i);
  }
  const int k = static_cast<int>(verts.size());
  const int star = local[v_star];
  std::vector<std::int64_t> load(k, 0), inbox(k, 0);
  std::int64_t unit = 1;  // mass units per original token (doubles on split)
  std::int64_t total = 0, delivered = 0;
  for (int i = 0; i < k; ++i) {
    const std::int64_t tokens = sp.ideg[verts[i]];
    total += tokens;
    if (i == star) {
      delivered = tokens;  // the sink's own tokens are delivered at round 0
    } else {
      load[i] = tokens;
    }
  }
  if (total == 0) {
    out.delivered_fraction = 1.0;
    out.outer_iterations = 0;
    return out;
  }

  const int block_rounds = std::max(4, static_cast<int>(std::ceil(1.0 / phi)));
  std::int64_t sim_rounds = 0, messages = 0;
  bool done = false;
  while (!done && out.outer_iterations < p.max_outer &&
         sim_rounds < p.round_cap) {
    ++out.outer_iterations;
    std::int64_t moved_in_block = 0;
    for (int r = 0; r < block_rounds && !done; ++r) {
      ++sim_rounds;
      std::fill(inbox.begin(), inbox.end(), 0);
      for (int i = 0; i < k; ++i) {
        if (i == star || load[i] == 0) continue;
        // Peak load in whole tokens at observation time (unit grows later).
        out.max_load = std::max(out.max_load, (load[i] + unit - 1) / unit);
        const int v = verts[i];
        const int deg = sp.ideg[v];
        if (deg == 0) continue;
        // Uniform spread, one-token-per-edge-per-round capacity.
        const std::int64_t q = std::min(load[i] / (deg + 1), unit);
        if (q == 0) continue;
        for (int w : sp.g.neighbors(v)) {
          const int j = local[w];
          if (j < 0 || sp.parts.cluster[w] != pid) continue;
          inbox[j] += q;
          load[i] -= q;
          moved_in_block += q;
          ++messages;
        }
      }
      for (int i = 0; i < k; ++i) {
        if (i == star) {
          delivered += inbox[i];
        } else {
          load[i] += inbox[i];
        }
      }
      if (static_cast<double>(delivered) >=
          (1.0 - f) * static_cast<double>(total)) {
        done = true;
      }
    }
    if (!done && moved_in_block == 0) {
      if (out.splits_used < p.max_splits) {
        // Token splitting: double every mass (and the target with it).
        for (std::int64_t& x : load) x *= 2;
        delivered *= 2;
        total *= 2;
        unit *= 2;
        ++out.splits_used;
      } else {
        // Frozen integer state: the oblivious algorithm would burn the rest
        // of its round budget without progress.
        out.stalled = true;
        out.outer_iterations = p.max_outer;
        break;
      }
    }
  }

  out.delivered_fraction =
      static_cast<double>(delivered) / static_cast<double>(total);

  const double edges = static_cast<double>(sp.part_volume[pid]) / 2.0;
  const double deg_star = std::max(1, sp.ideg[v_star]);
  const double log_f = 1.0 + std::log(1.0 / f);
  const std::int64_t schedule = static_cast<std::int64_t>(std::ceil(
      (1.0 / (phi * phi)) * std::max(edges, 1.0) / deg_star *
      std::log(edges + 2.0) * log_f * log_f));
  // Diffusion caps flows at one token per edge per round, so the measured
  // peak congestion is 1 by construction; messages counts the actual sends.
  out.ledger.charge("lemma 2.2 schedule", schedule, messages, 1);
  if (sim_rounds > schedule) {
    out.ledger.charge("extra simulated rounds", sim_rounds - schedule);
  }
  out.rounds = out.ledger.total();
  return out;
}

}  // namespace mfd::expander
