// (ε, φ) expander decomposition for minor-free graphs — Observation 3.1 /
// Corollary 6.2.
//
// The pipeline composes the two engines the paper composes: first the
// Theorem 1.1 (ε, D, T)-decomposition caps every cluster's strong diameter
// at O(1/ε) while spending at most half the ε cut budget, then each cluster
// is run through the expander/ sweep-split machinery at
// φ = Ω(ε / (log 1/ε + log Δ)) — low-diameter minor-free clusters are
// already expanders at that scale, so the split stage rarely cuts anything
// and the total cut stays near ε/2·m. Every final cluster carries a
// conductance certificate from graph/metrics.hpp::phi_certificate (exact
// for tiny clusters, Cheeger-estimate otherwise).
//
// Determinism: the split stage seeds its Fiedler probes from a fixed
// published constant hashed with the cluster id — no Rng flows in, so the
// decomposition is a pure function of (g, eps).
//
// Layering note: this header (and overlap_decomp.hpp) is the decomposition
// *engine* tier — it sits above expander/ even though it lives in decomp/;
// see the layer diagram in docs/ARCHITECTURE.md.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "congest/shard.hpp"
#include "decomp/clustering.hpp"
#include "decomp/edt.hpp"
#include "expander/cut_matching.hpp"
#include "graph/graph.hpp"
#include "graph/metrics.hpp"
#include "graph/ops.hpp"

namespace mfd::decomp {

struct ExpanderDecompParams {
  double edt_eps_share = 0.5;  // fraction of eps spent by the EDT stage
  int power_iters = 40;        // Fiedler iterations per split probe
  int exact_phi_cap = 12;      // exact conductance at or below this size
  int edt_exact_diameter_cap = 64;  // forwarded to the EDT quality pass
  // Audit mode: re-certify every emitted cluster through the three-tier
  // expander/cut_matching.hpp::certified_phi (exact / cut-matching game /
  // Cheeger), fail loudly on an inconsistent certificate, and charge the
  // games' CONGEST cost into the ledger. Off by default — the games cost
  // real wall time per cluster, so this is a bench/test gate, not a
  // construction cost.
  bool certify = false;
  expander::PhiCertParams certify_params;
  // Optional pool for the certify audit: clusters fan out as independent
  // tasks (result fold stays in cluster order, so the report is bit-identical
  // to the serial loop at every thread count).
  congest::ShardPool* certify_pool = nullptr;
};

struct ExpanderDecomp {
  Clustering clustering;
  double phi_target = 0.0;        // Ω(eps / (log 1/eps + log Δ))
  double min_certified_phi = 1.0; // min per-cluster certificate
  congest::Runtime ledger;        // phase-attributed simulated CONGEST rounds
  int clusters_split = 0;         // EDT clusters the split stage had to cut
  // Honest certified-vs-estimated split of the per-cluster conductance
  // evidence. A cluster is "certified" when its verdict is a sound lower
  // bound (exact enumeration, trivial/disconnected convention, or a replayed
  // cut-matching certificate under params.certify) and "estimated" when only
  // the Cheeger heuristic spoke. min_phi_lower is the worst certified bound
  // (1.0 when no cluster certified); min_phi_estimate the worst estimate
  // across ALL clusters. certify_ok is the params.certify audit verdict —
  // always true when the audit did not run.
  int clusters_certified = 0;
  int clusters_estimated = 0;
  double min_phi_lower = 1.0;
  double min_phi_estimate = 1.0;
  bool certify_ok = true;
};

/// Re-certify a family of vertex sets (the emitted clusters of either
/// decomposition engine) through the three-tier certified_phi, checking each
/// certificate against its own witnessed upper bound. A certified lower
/// bound exceeding the witnessed cut is impossible for a sound certificate,
/// so it fails loudly (stderr + ok = false) — this is the `certify` audit
/// mode of both engines and the bench gate. The ledger aggregates the games'
/// CONGEST cost into one measured phase (rounds summed — the clusters are
/// disjoint in the partition case but may overlap for the overlap object, so
/// summing is the conservative schedule; congestion is the per-game peak).
struct PartCertifyReport {
  bool ok = true;
  std::string violation;  // first failure, empty when ok
  int clusters_certified = 0;
  int clusters_estimated = 0;
  double min_phi_lower = 1.0;
  double min_phi_estimate = 1.0;
  int max_certified_cluster = 0;       // largest cluster with a sound bound
  std::int64_t state_bytes_peak = 0;   // largest per-game mixing-state figure
  congest::Runtime ledger;
};

inline PartCertifyReport certify_parts(
    const Graph& g, const std::vector<std::vector<int>>& parts,
    expander::PhiCertParams pc = {}, congest::ShardPool* pool = nullptr) {
  PartCertifyReport rep;
  // Per-cluster games are independent pure functions of their induced
  // subgraph, so they fan out over the pool as whole-cluster tasks; results
  // land in a cluster-indexed vector and the fold below runs serially in
  // cluster order — every accumulation (sums, mins, maxes, first-violation
  // pick, ledger charge) sees the exact serial order, so the report is
  // bit-identical to the serial loop at every thread count. An inner game
  // handed the same pool re-enters ShardPool::run and executes inline.
  if (pc.pool == nullptr) pc.pool = pool;
  const int nparts = static_cast<int>(parts.size());
  std::vector<expander::PhiReport> reports(nparts);
  std::vector<int> sizes(nparts, 0);
  const auto run_cluster = [&](int c) {
    const InducedSubgraph sub = induced_subgraph(g, parts[c]);
    sizes[c] = sub.graph.n();
    reports[c] = expander::certified_phi(sub.graph, pc);
  };
  if (pool != nullptr && pool->threads() > 1 && nparts > 1) {
    pool->run(nparts, [&](int c, int /*worker*/) { run_cluster(c); });
  } else {
    for (int c = 0; c < nparts; ++c) run_cluster(c);
  }
  std::int64_t rounds = 0, messages = 0, peak = 0;
  for (int c = 0; c < nparts; ++c) {
    const expander::PhiReport& pr = reports[c];
    rounds += pr.ledger.total();
    messages += pr.ledger.total_messages();
    peak = std::max(peak, pr.ledger.peak_congestion());
    rep.min_phi_estimate = std::min(rep.min_phi_estimate, pr.estimate);
    rep.state_bytes_peak = std::max(rep.state_bytes_peak, pr.game_state_bytes);
    if (pr.cert.certified_lower()) {
      ++rep.clusters_certified;
      rep.min_phi_lower = std::min(rep.min_phi_lower, pr.cert.phi);
      rep.max_certified_cluster = std::max(rep.max_certified_cluster, sizes[c]);
      if (pr.cert.phi > pr.upper + 1e-9) {
        rep.ok = false;
        if (rep.violation.empty()) {
          rep.violation = "cluster " + std::to_string(c) +
                          ": certified lower bound " +
                          std::to_string(pr.cert.phi) +
                          " exceeds witnessed upper bound " +
                          std::to_string(pr.upper);
        }
        std::fprintf(stderr, "certify_parts: %s\n", rep.violation.c_str());
      }
    } else {
      ++rep.clusters_estimated;
    }
  }
  rep.ledger.charge("certify: cut-matching games", rounds, messages,
                    messages > 0 ? std::max<std::int64_t>(peak, 1) : 0);
  return rep;
}

/// The Corollary 6.2 conductance target for the (ε, φ) object.
inline double minor_free_phi_target(double eps, int max_degree) {
  return eps /
         (4.0 * (std::log2(1.0 / eps) + std::log2(max_degree + 2.0) + 1.0));
}

inline ExpanderDecomp expander_decomposition_minor_free(
    const Graph& g, double eps, ExpanderDecompParams params = {}) {
  ExpanderDecomp out;
  out.phi_target = minor_free_phi_target(eps, g.max_degree());

  EdtParams ep;
  ep.exact_diameter_cap = params.edt_exact_diameter_cap;
  EdtDecomposition edt =
      build_edt_decomposition(g, eps * params.edt_eps_share, ep);
  {
    congest::ChargeScope edt_scope(out.ledger, "edt");
    edt_scope.absorb(edt.ledger);
  }

  // Split every EDT cluster at phi_target; parts become final clusters.
  std::vector<std::vector<int>> members(edt.clustering.k);
  for (int v = 0; v < g.n(); ++v) {
    members[edt.clustering.cluster[v]].push_back(v);
  }
  out.clustering.cluster.assign(g.n(), 0);
  int next_id = 0;
  std::int64_t max_split_rounds = 0;
  std::int64_t split_msgs = 0;
  std::vector<std::vector<int>> final_members;  // global ids, certify input
  SweepPartitionParams sp;
  sp.phi_target = out.phi_target;
  sp.power_iters = params.power_iters;
  for (int c = 0; c < edt.clustering.k; ++c) {
    const InducedSubgraph sub = induced_subgraph(g, members[c]);
    const SweepPartitionResult parts = sweep_partition(
        sub.graph, 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(c) + 1),
        sp);
    if (parts.parts.size() > 1) ++out.clusters_split;
    for (const auto& part : parts.parts) {
      // Exact certification overrides the sweep bound on tiny parts; on the
      // rest the sweep certificate and the Cheeger estimate cross-check.
      const InducedSubgraph psub = induced_subgraph(sub.graph, part.verts);
      const PhiCertificate cert =
          phi_certificate(psub.graph, params.exact_phi_cap, params.power_iters);
      const double phi = cert.exact ? cert.phi : std::min(part.cert, cert.phi);
      if (phi < out.min_certified_phi) out.min_certified_phi = phi;
      out.min_phi_estimate = std::min(out.min_phi_estimate, cert.phi);
      if (cert.certified_lower()) {
        ++out.clusters_certified;
        out.min_phi_lower = std::min(out.min_phi_lower, cert.phi);
      } else {
        ++out.clusters_estimated;
      }
      std::vector<int> global;
      global.reserve(part.verts.size());
      for (int local : part.verts) {
        out.clustering.cluster[sub.to_parent[local]] = next_id;
        global.push_back(sub.to_parent[local]);
      }
      if (params.certify) final_members.push_back(std::move(global));
      ++next_id;
    }
    // Each split level costs power_iters averaging rounds + an aggregation;
    // clusters run in parallel, so charge the max, not the sum. Every
    // averaging/aggregation round moves one O(log n)-bit value per directed
    // intra-cluster edge, so messages sum the per-cluster round * edge
    // products while congestion stays 1 (clusters are vertex-disjoint).
    const std::int64_t cluster_rounds =
        static_cast<std::int64_t>(std::max(parts.levels, 1)) *
        (params.power_iters +
         static_cast<std::int64_t>(std::ceil(std::log2(
             std::max<double>(static_cast<double>(members[c].size()), 2.0)))));
    max_split_rounds = std::max(max_split_rounds, cluster_rounds);
    split_msgs += cluster_rounds * 2 * sub.graph.m();
  }
  out.clustering.k = next_id;
  out.ledger.charge("split: fiedler sweeps (max over clusters)",
                    max_split_rounds, split_msgs, split_msgs > 0 ? 1 : 0);
  if (params.certify) {
    // Re-certify every emitted cluster with the cut-matching tier engaged;
    // the game-backed tallies REPLACE the cheap default tallies above (the
    // audit mode's whole point is upgrading estimated clusters to certified
    // ones), and its CONGEST cost lands in the ledger like any other phase.
    const PartCertifyReport rep = certify_parts(
        g, final_members, params.certify_params, params.certify_pool);
    out.clusters_certified = rep.clusters_certified;
    out.clusters_estimated = rep.clusters_estimated;
    out.min_phi_lower = rep.min_phi_lower;
    out.min_phi_estimate = rep.min_phi_estimate;
    out.certify_ok = rep.ok;
    out.ledger.absorb(rep.ledger);
  }
  return out;
}

}  // namespace mfd::decomp
