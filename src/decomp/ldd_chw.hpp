// CHW08 LOCAL-model deterministic clustering baseline
// (Czygrinow–Hańćkowiak–Wawrzyniak style ball growing).
//
// Deterministic region growing on the remaining graph: grow a BFS ball from
// the lowest-id unassigned vertex until its boundary is ε-small relative to
// its internal edges. While the ball violates the stopping rule its internal
// edge count grows by a (1+ε) factor per layer, so radii are bounded by
// log_{1+ε} m, and charging each ball's boundary to its (disjoint) internal
// edges gives a deterministic cut fraction ≤ ε. The LOCAL model allows
// unbounded messages, which is what makes the per-ball topology collection
// free; `round_factor` is the per-radius LOCAL round charge (collect
// topology, decide, announce).
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "decomp/clustering.hpp"
#include "decomp/edt.hpp"  // log_star
#include "graph/graph.hpp"

namespace mfd::decomp {

/// Output of the CHW08 ball-growing baseline. Invariants: clustering is a
/// connected partition with cut fraction <= eps (deterministic);
/// max_radius is in BFS hops (<= log_{1+eps} m by the stopping rule) while
/// the ledger totals simulated LOCAL-model rounds (round_factor per radius).
struct ChwLdd {
  Clustering clustering;
  Quality quality;
  congest::Runtime ledger;
  int max_radius = 0;  // deepest ball radius, BFS hops
};

inline ChwLdd ldd_chw_local_model(const Graph& g, double eps,
                                  int round_factor = 3) {
  ChwLdd out;
  const int n = g.n();
  std::vector<int> assigned(n, -1);
  std::vector<char> in_ball(n, 0);
  std::vector<int> ord(n, -1);  // insertion order within the current ball
  std::vector<int> ball, layer, next_layer;
  int k = 0;

  for (int s = 0; s < n; ++s) {
    if (assigned[s] >= 0) continue;
    // Grow B_r(s) in the graph induced by unassigned vertices.
    ball.assign(1, s);
    layer.assign(1, s);
    in_ball[s] = 1;
    ord[s] = 0;
    int ord_counter = 1;
    // cut = (sum of remaining-degrees over the ball) - 2 * internal edges.
    std::int64_t deg_sum = 0, internal = 0;
    for (int w : g.neighbors(s)) {
      if (assigned[w] < 0) ++deg_sum;
    }
    int radius = 0;
    while (true) {
      const std::int64_t cut = deg_sum - 2 * internal;
      if (static_cast<double>(cut) <= eps * static_cast<double>(std::max<std::int64_t>(internal, 1))) {
        break;
      }
      next_layer.clear();
      for (int u : layer) {
        for (int w : g.neighbors(u)) {
          if (assigned[w] < 0 && !in_ball[w]) {
            in_ball[w] = 1;
            ord[w] = ord_counter++;
            next_layer.push_back(w);
          }
        }
      }
      if (next_layer.empty()) break;  // ball swallowed its component
      for (int w : next_layer) {
        for (int x : g.neighbors(w)) {
          if (assigned[x] < 0) {
            ++deg_sum;
            // Count each internal edge once: at its later-inserted endpoint.
            if (in_ball[x] && ord[x] < ord[w]) ++internal;
          }
        }
      }
      ball.insert(ball.end(), next_layer.begin(), next_layer.end());
      layer.swap(next_layer);
      ++radius;
    }
    for (int v : ball) {
      assigned[v] = k;
      in_ball[v] = 0;
      ord[v] = -1;
    }
    out.max_radius = std::max(out.max_radius, radius);
    ++k;
  }

  out.clustering.cluster = std::move(assigned);
  out.clustering.k = k;
  out.quality = measure_quality(g, out.clustering);
  out.ledger.charge("symmetry breaking (log* n)", log_star(n));
  out.ledger.charge("ball growing",
                    static_cast<std::int64_t>(round_factor) *
                        std::max(out.max_radius, 1));
  return out;
}

}  // namespace mfd::decomp
