// CS22-style top-down baseline: expander decomposition, then route inside
// each expander cluster.
//
// The comparison bench_ablation (e) draws: instead of the paper's bottom-up
// Theorem 1.1 construction (diameter O(1/eps) clusters, routing time ~ the
// diameter), the top-down route recursively removes sweep cuts sparser than
// phi = eps / ceil(log2 m) (the shared sweep_partition engine in
// graph/metrics.hpp) until every cluster is a certified phi-expander. The
// standard charging argument (each cut is paid for by the smaller side's
// volume, every vertex lands on the smaller side <= log2 n times) keeps the
// total cut fraction O(eps), but routing inside an expander cluster costs
// the mixing-time factor O(log(vol)/phi) — the log-factor diameter/routing
// overhead Theorem 1.1's whole design avoids.
//
// The construction itself is centralized here (the paper's distributed
// version is poly(1/eps, log n) randomized rounds); the bench prints that
// caveat in its construction column, so the Ledger carries only a symbolic
// charge. Units: T_measured is simulated CONGEST rounds, diameters are BFS
// hops.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "decomp/clustering.hpp"
#include "graph/graph.hpp"
#include "graph/metrics.hpp"
#include "util/rng.hpp"

namespace mfd::decomp {

struct Cs22Params {
  // Slow-mixing graphs (grids) need deep power iteration before the sweep
  // vector resolves their sparse cuts; several probes hedge the start vector.
  int power_iters = 256;
  int probes = 3;
  double phi_floor = 0.01;  // clamp for the routing-time estimate
  int depth_slack = 2;      // recursion cap = depth_slack * ceil(log2 n)
};

struct Cs22Result {
  Clustering clustering;
  Quality quality;
  congest::Runtime ledger;
  int T_measured = 0;   // expander-routing time: max ceil(log2 vol / phi)
  double phi_target = 0.0;
  double phi_certified = 1.0;  // weakest per-cluster certificate
};

inline Cs22Result cs22_decompose_and_route(const Graph& g, double eps,
                                           Rng& rng, Cs22Params params = {}) {
  Cs22Result out;
  const int n = g.n();
  const double logm =
      std::ceil(std::log2(static_cast<double>(std::max<std::int64_t>(g.m(), 4))));
  out.phi_target = eps / logm;

  SweepPartitionParams sp;
  sp.phi_target = out.phi_target;
  sp.power_iters = params.power_iters;
  sp.probes = params.probes;
  sp.min_part = 2;
  sp.max_depth = params.depth_slack *
                 static_cast<int>(std::ceil(std::log2(std::max(n, 2))));
  const SweepPartitionResult partition = sweep_partition(g, rng.next(), sp);

  out.clustering.cluster.assign(n, 0);
  out.clustering.k = static_cast<int>(partition.parts.size());
  double worst_route = 1.0;
  for (std::size_t p = 0; p < partition.parts.size(); ++p) {
    std::int64_t vol = 0;
    for (int v : partition.parts[p].verts) {
      out.clustering.cluster[v] = static_cast<int>(p);
      vol += g.degree(v);
    }
    const double cert = partition.parts[p].cert;
    out.phi_certified = std::min(out.phi_certified, cert);
    // Finalized expander cluster: routing costs the mixing-time factor.
    const double phi_route = std::max(cert, params.phi_floor);
    worst_route = std::max(
        worst_route,
        std::ceil(std::log2(static_cast<double>(vol) + 2.0) / phi_route));
  }
  out.quality = measure_quality(g, out.clustering);
  out.T_measured = static_cast<int>(worst_route);
  out.ledger.charge_envelope("centralized decomposition (symbolic)", 1,
                             2 * g.m());
  out.ledger.charge_envelope("expander routing (+T)", out.T_measured,
                             2 * g.m());
  return out;
}

}  // namespace mfd::decomp
