// Heavy-stars contraction — Lemma 4.2 / 4.3, derandomized via Cole–Vishkin.
//
// On a weighted cluster graph of arboricity <= α the algorithm marks
// vertex-disjoint low-depth trees ("stars") whose edges carry at least a
// 1/(8α) fraction of the total edge weight:
//
//   1. Every vertex points across its heaviest incident edge (ties broken
//      toward the smaller neighbor id, which makes every pointer cycle a
//      2-cycle). Summed over the α forests of an arboricity decomposition,
//      the pointed edge set keeps >= W/(2α) of the weight.
//   2. The pointer graph's components each contain exactly one 2-cycle; its
//      larger endpoint becomes the root, giving a rooted forest whose
//      parent-edge weights are non-decreasing toward the root.
//   3. congest::cole_vishkin_3color breaks symmetry in O(log* n) rounds; of
//      the six leaf/center bipartitions of the 3 color classes the algorithm
//      keeps the heaviest (>= 1/3 of the forest weight since every forest
//      edge is captured by exactly 2 of the 6 bipartitions), plus every
//      2-cycle edge — the heaviest edge of its component — unconditionally.
//
// Marked trees therefore have depth <= 2 (root, its 2-cycle partner, and one
// layer of leaf-colored children on each), well inside the Lemma 4.3 depth-4
// budget, and the captured weight is >= W/(6α) >= W/(8α). Everything is
// deterministic: rerunning on the same WeightedGraph reproduces the stars
// bit for bit.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "congest/cole_vishkin.hpp"
#include "congest/runtime.hpp"
#include "congest/shard.hpp"
#include "graph/weighted.hpp"

namespace mfd::decomp {

struct HeavyStarsResult {
  // star[v] = id of the marked tree v belongs to (the root vertex's id);
  // vertices outside every marked tree are singleton stars of themselves.
  std::vector<int> star;
  // kept_parent[v] = parent of v inside its marked tree, -1 for roots and
  // singletons. Consumers (ldd_local) walk this to merge under diameter
  // guards.
  std::vector<int> kept_parent;
  int stars = 0;                     // number of distinct stars (incl. singletons)
  std::int64_t captured_weight = 0;  // weight of marked-tree edges
  std::int64_t total_weight = 0;     // weight of all edges
  int cv_rounds = 0;                 // Cole–Vishkin rounds (O(log* n))
  int rounds = 0;                    // total simulated rounds incl. cv_rounds
  int max_marked_depth = 0;          // deepest marked tree (Lemma 4.3: <= 4)
  // Measured bandwidth per phase (ledger.total() == rounds):
  //   pointing          1 round, 1 pointer id per directed edge;
  //   cole-vishkin      cv rounds, 1 color per pointer-forest edge per round;
  //   bipartition vote  1 round, the six class sums per forest edge;
  //   star formation    1 round, 1 bit-decision per kept edge.
  congest::Runtime ledger;
  std::int64_t messages = 0;        // == ledger.total_messages()
  std::int64_t max_congestion = 0;  // == ledger.peak_congestion()
};

/// Sharded when given a pool: the per-vertex phases (pointing, rooting,
/// class sums, star formation, labeling) partition vertices across the pool
/// with a barrier between phases — exactly the synchronous-round structure a
/// CONGEST implementation has anyway. All reductions are integer sums/maxes,
/// so the result is bit-identical to the serial run for every thread count
/// (tests/test_shard.cpp sweeps {1, 2, 7, hardware}).
inline HeavyStarsResult heavy_stars(const WeightedGraph& g,
                                    congest::ShardPool* pool = nullptr) {
  HeavyStarsResult out;
  const int n = g.n();
  out.total_weight = g.total_weight();
  out.star.assign(n, 0);
  out.kept_parent.assign(n, -1);
  const int tasks = pool != nullptr ? pool->threads() : 1;
  // Each phase below runs fn(lo, hi, task) over an even contiguous vertex
  // partition — inline when serial, across the pool when sharded.
  const auto for_ranges = [&](const std::function<void(int, int, int)>& fn) {
    if (pool == nullptr || pool->threads() == 1) {
      if (n > 0) fn(0, n, 0);
    } else {
      congest::parallel_ranges(*pool, n, tasks, fn);
    }
  };

  // 1. Point across the heaviest incident edge (tie: smaller neighbor id).
  std::vector<int> pick(n, -1);
  std::vector<std::int64_t> pick_w(n, 0);
  for_ranges([&](int lo, int hi, int) {
    for (int v = lo; v < hi; ++v) {
      std::int64_t best_w = -1;
      int best_to = -1;
      for (const auto& a : g.arcs(v)) {
        if (a.w > best_w || (a.w == best_w && a.to < best_to)) {
          best_w = a.w;
          best_to = a.to;
        }
      }
      pick[v] = best_to;
      if (best_to >= 0) pick_w[v] = best_w;
    }
  });

  // 2. Root each pointer component at the larger endpoint of its 2-cycle.
  std::vector<int> parent(n, -1);
  for_ranges([&](int lo, int hi, int) {
    for (int v = lo; v < hi; ++v) {
      const int u = pick[v];
      if (u < 0) continue;                 // isolated vertex
      if (pick[u] == v && u < v) continue; // v is the root of its 2-cycle
      parent[v] = u;
    }
  });

  // 3. Cole–Vishkin 3-coloring of the pointer forest.
  const congest::ColeVishkinResult cv =
      congest::cole_vishkin_3color_forest(n, parent);
  out.cv_rounds = cv.rounds;

  // Weight of each (child color, parent color) class, 2-cycle edges apart.
  // A vertex's parent edge IS its pick, so its weight is pick_w[v].
  // Sharded: per-task 3x3 partials folded in task order (integer sums, so
  // the fold equals the serial accumulation exactly).
  std::int64_t class_w[3][3] = {};
  {
    std::vector<std::array<std::int64_t, 9>> partial(
        static_cast<std::size_t>(tasks), std::array<std::int64_t, 9>{});
    for_ranges([&](int lo, int hi, int task) {
      auto& acc = partial[static_cast<std::size_t>(task)];
      for (int v = lo; v < hi; ++v) {
        const int p = parent[v];
        if (p < 0) continue;
        if (pick[p] == v && parent[p] < 0) continue;  // 2-cycle edge, kept
        acc[static_cast<std::size_t>(3 * cv.color[v] + cv.color[p])] +=
            pick_w[v];
      }
    });
    for (const auto& acc : partial) {
      for (int a = 0; a < 3; ++a) {
        for (int b = 0; b < 3; ++b) {
          class_w[a][b] += acc[static_cast<std::size_t>(3 * a + b)];
        }
      }
    }
  }
  // Best of the six leaf/center bipartitions of {0, 1, 2}: captured classes
  // are (a in L, b not in L); every class lands in exactly 2 of the 6 masks.
  int best_mask = 1;
  std::int64_t best_cap = -1;
  for (int mask = 1; mask <= 6; ++mask) {  // proper nonempty subsets of 3 bits
    std::int64_t cap = 0;
    for (int a = 0; a < 3; ++a) {
      for (int b = 0; b < 3; ++b) {
        if ((mask >> a & 1) && !(mask >> b & 1)) cap += class_w[a][b];
      }
    }
    if (cap > best_cap) {
      best_cap = cap;
      best_mask = mask;
    }
  }

  // Keep: 2-cycle edges + parent edges with leaf-colored child and
  // center-colored parent. kept_parent records the marked-tree structure.
  {
    std::vector<std::int64_t> captured(static_cast<std::size_t>(tasks), 0);
    for_ranges([&](int lo, int hi, int task) {
      std::int64_t cap = 0;
      for (int v = lo; v < hi; ++v) {
        const int p = parent[v];
        if (p < 0) continue;
        const bool two_cycle = pick[p] == v && parent[p] < 0;
        const bool leaf_center = (best_mask >> cv.color[v] & 1) &&
                                 !(best_mask >> cv.color[p] & 1);
        if (two_cycle || leaf_center) {
          out.kept_parent[v] = p;
          cap += pick_w[v];
        }
      }
      captured[static_cast<std::size_t>(task)] = cap;
    });
    for (std::int64_t cap : captured) out.captured_weight += cap;
  }

  // Stars = components of the kept forest; label by the top vertex and
  // measure depth (kept_parent chains are <= 2 long by construction).
  const auto top_of = [&out](int v) {
    int depth = 0;
    while (out.kept_parent[v] >= 0) {
      v = out.kept_parent[v];
      ++depth;
    }
    return std::pair<int, int>{v, depth};
  };
  {
    std::vector<int> tops(static_cast<std::size_t>(tasks), 0);
    std::vector<int> depth_max(static_cast<std::size_t>(tasks), 0);
    for_ranges([&](int lo, int hi, int task) {
      int local_tops = 0, local_depth = 0;
      for (int v = lo; v < hi; ++v) {
        const auto [top, depth] = top_of(v);
        out.star[v] = top;
        if (depth == 0) ++local_tops;
        if (depth > local_depth) local_depth = depth;
      }
      tops[static_cast<std::size_t>(task)] = local_tops;
      depth_max[static_cast<std::size_t>(task)] = local_depth;
    });
    for (int t = 0; t < tasks; ++t) {
      out.stars += tops[static_cast<std::size_t>(t)];
      out.max_marked_depth =
          std::max(out.max_marked_depth, depth_max[static_cast<std::size_t>(t)]);
    }
  }

  // Rounds: 1 pointing round, the Cole–Vishkin phase, 1 round to agree on
  // the best bipartition (a constant-size aggregate), 1 star-formation round.
  // Messages are measured per phase: the pointing round sends one pointer id
  // per directed edge; each Cole–Vishkin round sends one color per
  // pointer-forest edge; the vote converges the six candidate class sums
  // over the forest (six O(log n)-bit values per forest edge in one round);
  // star formation sends one keep/drop decision per kept edge.
  std::int64_t forest_edges = 0;
  for (int v = 0; v < n; ++v) forest_edges += parent[v] >= 0 ? 1 : 0;
  std::int64_t kept_edges = 0;
  for (int v = 0; v < n; ++v) kept_edges += out.kept_parent[v] >= 0 ? 1 : 0;
  const std::int64_t directed = 2 * g.m();
  out.ledger.charge("pointing", 1, directed, directed > 0 ? 1 : 0);
  out.ledger.charge("cole-vishkin", cv.rounds, cv.messages, cv.max_congestion);
  out.ledger.charge("bipartition vote", 1, 6 * forest_edges,
                    forest_edges > 0 ? 6 : 0);
  out.ledger.charge("star formation", 1, kept_edges, kept_edges > 0 ? 1 : 0);
  out.rounds = 1 + out.cv_rounds + 2;
  out.messages = out.ledger.total_messages();
  out.max_congestion = out.ledger.peak_congestion();
  return out;
}

}  // namespace mfd::decomp
