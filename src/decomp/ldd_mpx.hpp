// MPX13 randomized low-diameter decomposition (Miller–Peng–Xu).
//
// Every vertex v draws an exponential shift δ_v ~ Exp(β) and joins the
// cluster of the center u minimizing dist(u, v) - δ_u. Implemented as one
// shifted multi-source BFS (Dijkstra over fractional start times). With
// β = ε/2 each edge is cut with probability O(β), so the measured cut
// fraction is below ε in expectation, while cluster radii carry the extra
// O(log n / β) factor the paper's Corollary 6.1 removes.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <queue>
#include <vector>

#include "decomp/clustering.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace mfd::decomp {

/// Output of one randomized MPX13 run. Invariants: clustering is a connected
/// partition; the cut fraction is <= eps only *in expectation* (tests average
/// over seeds), and cluster radii are O(log n / eps) BFS hops w.h.p.;
/// `rounds` counts simulated CONGEST rounds, which here exceed BFS hops by
/// the start-time offset of the shifted multi-source BFS.
struct MpxLdd {
  Clustering clustering;
  Quality quality;
  congest::Runtime ledger;
  int rounds = 0;  // simulated CONGEST rounds: max shift + deepest BFS arm
};

inline MpxLdd ldd_mpx(const Graph& g, double eps, Rng& rng) {
  MpxLdd out;
  const int n = g.n();
  const double beta = eps / 2.0;
  // Clamp shifts at 2 ln n / β (exceeded with probability n^-2) so a single
  // unlucky draw cannot make the simulated round count unbounded.
  const double shift_cap = 2.0 * std::log(std::max(n, 2)) / beta;

  std::vector<double> shift(n);
  double max_shift = 0.0;
  for (int v = 0; v < n; ++v) {
    shift[v] = std::min(rng.exponential(beta), shift_cap);
    max_shift = std::max(max_shift, shift[v]);
  }

  std::vector<double> key(n);
  std::vector<int> center(n), hops(n, 0);
  std::vector<char> done(n, 0);
  using Entry = std::pair<double, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq;
  for (int v = 0; v < n; ++v) {
    key[v] = -shift[v];
    center[v] = v;
    pq.push({key[v], v});
  }
  int max_hops = 0;
  while (!pq.empty()) {
    const auto [k, u] = pq.top();
    pq.pop();
    if (done[u] || k > key[u]) continue;
    done[u] = 1;
    max_hops = std::max(max_hops, hops[u]);
    for (int w : g.neighbors(u)) {
      if (!done[w] && key[u] + 1.0 < key[w]) {
        key[w] = key[u] + 1.0;
        center[w] = center[u];
        hops[w] = hops[u] + 1;
        pq.push({key[w], w});
      }
    }
  }

  out.clustering.cluster = std::move(center);
  out.clustering.k = n;  // placeholder; compact() densifies below
  out.clustering.compact();
  out.quality = measure_quality(g, out.clustering);
  out.rounds = static_cast<int>(std::ceil(max_shift)) + max_hops;
  // The shifted-BFS wave carries one O(log n)-bit (center, key) message per
  // directed edge per round at most — envelope-billed.
  out.ledger.charge_envelope("shifted BFS", out.rounds, 2 * g.m());
  return out;
}

}  // namespace mfd::decomp
