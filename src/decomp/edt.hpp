// Deterministic (ε, D, T)-decomposition — Theorem 1.1 / Corollary 6.1.
//
// Two interchangeable engines build the decomposition:
//
//   * kLocalContraction (default) — the Section-4 pipeline in
//     decomp/ldd_local.hpp: iterated heavy-stars contraction under a
//     diameter guard, O(log* n)-type rounds per iteration and no global
//     BFS anywhere. This is the fidelity-faithful engine: construction
//     rounds do not grow with the graph diameter.
//   * kGlobalBfs — the original centralized simulation: iterated BFS-band
//     chopping in the style of Klein–Plotkin–Rao. Each pass BFS-layers
//     every remaining cluster and cuts between bands of width
//     w = ceil(passes/ε) at the offset minimizing cut edges; by averaging
//     the best offset cuts at most m_C/w edges per cluster, so `passes`
//     budgeted passes cut at most ε·m edges in total. Charges real BFS
//     depth per pass (Θ(√n) on a grid) — kept selectable for the ablation
//     bench, which grades exactly that gap.
//
// Both engines meet the hard ε cut budget deterministically. The Ledger
// charges simulated rounds: the O(log* n / ε) preprocessing term, per-pass
// work (BFS depth + offset aggregation, or heavy-stars + Cole–Vishkin), and
// the +T routing-structure setup. T_measured distinguishes the paper's two
// tradeoffs (Theorem 1.1): the overlap variant pays a log Δ factor on
// cluster diameter; the polylog variant pays an additive polylog(Δ, 1/ε)
// term.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "congest/shard.hpp"
#include "decomp/clustering.hpp"
#include "decomp/ldd_local.hpp"
#include "graph/graph.hpp"

namespace mfd::decomp {

/// Theorem 1.1 offers two T tradeoffs: kOverlapRouting multiplies the cluster
/// diameter by a log Δ factor, kPolylogRouting pays an additive
/// polylog(Δ, 1/ε) term instead.
enum class EdtVariant { kPolylogRouting, kOverlapRouting };

/// Which engine performs the ε-budgeted clustering (see the header comment).
enum class EdtChop { kLocalContraction, kGlobalBfs };

/// Knobs of build_edt_decomposition. All "rounds" counts are simulated
/// CONGEST rounds; all widths/diameters are BFS hops.
struct EdtParams {
  EdtVariant variant = EdtVariant::kPolylogRouting;
  EdtChop chop = EdtChop::kLocalContraction;
  int passes = 3;          // chopping passes budgeted against the ε allowance
  int max_iterations = 8;  // hard cap including refinement passes (kGlobalBfs)
  int exact_diameter_cap = 64;  // cluster size above which diameter is swept
  // Light-link filter of the merge refinement (Lemma 5.3 Step 3), applied
  // after the kGlobalBfs chop only (the contraction engine merges as it
  // goes): adjacent clusters are merged across a link of w(A,B) edges iff
  // w(A,B) >= (eps / (merge_filter_c * alpha)) * m, where alpha = 2m/n is the
  // measured average degree (the minor-free density proxy) — lighter links
  // stay removed (cut). Larger c lowers the threshold and admits weaker
  // merges; 0 disables merging. Merges are always rejected if they could
  // push a cluster diameter past 6 * band width, so D = O(1/ε) survives the
  // refinement.
  double merge_filter_c = 32.0;
  int max_merge_passes = 4;  // merge sweeps over the link list
  // Sharded round engine: forwarded to LocalLddParams::threads under
  // kLocalContraction; under kGlobalBfs the per-cluster BFS-wave sweep of
  // each chop pass fans out over the same pool (clusters are
  // vertex-disjoint, so concurrent cluster BFSes share the level array
  // without racing). 1 = serial reference; results are bit-identical for
  // every value (see congest/shard.hpp; gated by tests/test_shard.cpp).
  int threads = 1;
  congest::ShardPool* pool = nullptr;  // optional lent pool (benches reuse one)
};

/// Output of build_edt_decomposition (Theorem 1.1 / Corollary 6.1).
/// Invariants the tests pin down: clustering partitions V into connected
/// clusters, quality.eps_fraction <= eps (hard budget, deterministic),
/// quality.max_diameter = O(1/eps) in BFS hops, ledger totals simulated
/// CONGEST rounds, and the whole construction is deterministic.
struct EdtDecomposition {
  Clustering clustering;
  Quality quality;
  congest::Runtime ledger;  // phase-attributed simulated CONGEST rounds
  int T_measured = 0;  // measured routing time (rounds) of the chosen variant
  int iterations = 0;  // chop passes (kGlobalBfs) or contraction iterations
  int merges = 0;      // light-link merges (kGlobalBfs) or star merges (local)
};

/// Historical spelling: the log* helper now lives with the runtime substrate.
using congest::log_star;

namespace detail {

/// Routing time of the chosen T tradeoff on a built clustering (simulation
/// proxies for the two Theorem 1.1 variants).
inline int edt_routing_time(const Graph& g, double eps, EdtVariant variant,
                            int max_diameter) {
  const int log_delta =
      static_cast<int>(std::ceil(std::log2(g.max_degree() + 2)));
  const int log_inv_eps = static_cast<int>(std::ceil(std::log2(1.0 / eps) + 1));
  if (variant == EdtVariant::kOverlapRouting) {
    return max_diameter * log_delta + 1;
  }
  return max_diameter + log_delta * log_inv_eps;
}

}  // namespace detail

inline EdtDecomposition build_edt_decomposition(const Graph& g, double eps,
                                                EdtParams params = {}) {
  EdtDecomposition out;
  const int n = g.n();
  const int w = std::max(2, static_cast<int>(std::ceil(params.passes / eps)));
  const std::int64_t cut_allowance =
      static_cast<std::int64_t>(eps * static_cast<double>(g.m()));

  // O(log* n / ε) preprocessing (symbolic charge for the paper's
  // ruling-set / degree-reduction machinery we simulate centrally) —
  // envelope-billed at the CONGEST ceiling of 1 message/directed edge/round.
  out.ledger.charge_envelope(
      "preprocess(log* n / eps)",
      log_star(n) * static_cast<std::int64_t>(std::ceil(1.0 / eps)),
      2 * g.m());

  if (params.chop == EdtChop::kLocalContraction) {
    // Section-4 engine: iterated heavy-stars contraction, no global BFS.
    // The eccentricity guard 2*w keeps the strong diameter <= 4*w, matching
    // the chop engine's D = O(1/eps) constant regime.
    LocalLddParams lp;
    lp.ecc_cap = 2 * w;
    lp.eval.exact_cap = params.exact_diameter_cap;
    lp.threads = params.threads;
    lp.pool = params.pool;
    LocalLdd local = ldd_minor_free_local(g, eps, lp);
    out.ledger.absorb(local.ledger);
    out.clustering = std::move(local.clustering);
    out.quality = local.quality;
    out.iterations = local.iterations;
    out.merges = local.merges;
    out.T_measured =
        detail::edt_routing_time(g, eps, params.variant, out.quality.max_diameter);
    out.ledger.charge_envelope("routing setup (+T)", out.T_measured, 2 * g.m());
    return out;
  }

  auto [label, k] = connected_components(g);
  std::vector<int> lev(n, 0), band(n, 0);
  std::vector<int> root_of;       // per-cluster BFS root
  std::vector<int> frontier, next;
  std::int64_t cut_spent = 0;

  // Sharded BFS-wave engine (ldd_local's idiom): threads == 1 and no lent
  // pool runs every sweep inline — the serial reference path.
  std::unique_ptr<congest::ShardPool> owned_pool;
  congest::ShardPool* pool = params.pool;
  if (pool == nullptr && params.threads != 1) {
    owned_pool = std::make_unique<congest::ShardPool>(params.threads);
    pool = owned_pool.get();
  }
  const int workers = pool != nullptr ? pool->threads() : 1;
  struct BfsScratch {
    std::vector<int> frontier, next;
  };
  std::vector<BfsScratch> scratch(static_cast<std::size_t>(workers));

  for (int iter = 0; iter < params.max_iterations; ++iter) {
    // Roots: minimum-id vertex of each cluster.
    root_of.assign(k, -1);
    for (int v = 0; v < n; ++v) {
      if (root_of[label[v]] < 0) root_of[label[v]] = v;
    }
    // Cluster-local BFS levels (one simulated parallel BFS over all
    // clusters). Measured traffic: the BFS wave crosses each intra-cluster
    // directed edge once. One pool task per cluster: clusters are
    // vertex-disjoint, so concurrent cluster BFSes share `lev` without
    // racing (a BFS only touches vertices of its own label); per-cluster
    // message counts and depths fold in cluster order, so the sweep is
    // bit-identical to the serial reference for every thread count.
    std::fill(lev.begin(), lev.end(), -1);
    int max_depth = 0;
    std::int64_t pass_msgs = 0;
    {
      std::vector<std::int64_t> bfs_msgs(static_cast<std::size_t>(k), 0);
      std::vector<int> depth_of(static_cast<std::size_t>(k), 0);
      const auto bfs_cluster = [&](int c, BfsScratch& sc) {
        const int src = root_of[c];
        lev[src] = 0;
        sc.frontier.assign(1, src);
        int depth = 0;
        std::int64_t msgs = 0;
        while (!sc.frontier.empty()) {
          sc.next.clear();
          for (int u : sc.frontier) {
            for (int nb : g.neighbors(u)) {
              if (label[nb] != label[u]) continue;
              ++msgs;  // BFS wave over directed edge (u, nb)
              if (lev[nb] < 0) {
                lev[nb] = lev[u] + 1;
                depth = std::max(depth, lev[nb]);
                sc.next.push_back(nb);
              }
            }
          }
          std::swap(sc.frontier, sc.next);
        }
        bfs_msgs[static_cast<std::size_t>(c)] = msgs;
        depth_of[static_cast<std::size_t>(c)] = depth;
      };
      if (pool == nullptr || pool->threads() == 1) {
        for (int c = 0; c < k; ++c) bfs_cluster(c, scratch[0]);
      } else {
        pool->run(k, [&](int c, int worker) {
          bfs_cluster(c, scratch[static_cast<std::size_t>(worker)]);
        });
      }
      for (int c = 0; c < k; ++c) {
        pass_msgs += bfs_msgs[static_cast<std::size_t>(c)];
        max_depth = std::max(max_depth, depth_of[static_cast<std::size_t>(c)]);
      }
    }

    // Per-cluster: does it still need chopping, and at which offset?
    std::vector<std::vector<int>> members(k);
    for (int v = 0; v < n; ++v) members[label[v]].push_back(v);
    bool chopped_any = false;
    std::fill(band.begin(), band.end(), 0);
    // Count level-crossing edges per (cluster, offset); offsets in [0, w).
    std::vector<std::int64_t> offset_cut(w);
    for (int c = 0; c < k; ++c) {
      bool deep = false;
      for (int v : members[c]) {
        if (lev[v] >= w) {
          deep = true;
          break;
        }
      }
      if (!deep) continue;
      // Distributed cost of the offset choice: every vertex of a deep
      // cluster learns its neighbors' levels (1 message per intra directed
      // edge) and convergecasts its w-entry crossing histogram, pipelined
      // one O(log n)-bit counter per tree edge per round over the w
      // aggregation rounds charged below.
      pass_msgs += static_cast<std::int64_t>(w) *
                   static_cast<std::int64_t>(members[c].size());
      std::fill(offset_cut.begin(), offset_cut.end(), 0);
      for (int u : members[c]) {
        for (int vtx : g.neighbors(u)) {
          if (label[vtx] != c) continue;
          ++pass_msgs;  // level exchange over directed edge (u, vtx)
          if (u < vtx && lev[u] != lev[vtx]) {
            const int boundary = (std::min(lev[u], lev[vtx]) + 1) % w;
            ++offset_cut[boundary];
          }
        }
      }
      int best = 0;
      for (int o = 1; o < w; ++o) {
        if (offset_cut[o] < offset_cut[best]) best = o;
      }
      if (cut_spent + offset_cut[best] > cut_allowance) continue;  // budget
      cut_spent += offset_cut[best];
      chopped_any = true;
      for (int v : members[c]) band[v] = (lev[v] + w - best) / w;
    }
    {
      // The pass that discovers nothing is choppable still ran its full
      // BFS/offset verification — a distributed execution pays it, so the
      // ledger must too (audit() can catch overcounts, never undercounts).
      const std::int64_t rounds = max_depth + w;
      const std::string name =
          chopped_any ? "chop pass " + std::to_string(out.iterations + 1)
                      : "chop pass (no-op verification)";
      if (chopped_any || pass_msgs > 0) {
        out.ledger.charge(name, rounds, pass_msgs,
                          congest::congestion_floor(pass_msgs, rounds, 2 * g.m()));
      }
    }
    if (!chopped_any) break;
    ++out.iterations;

    // New clusters: connected components of (same label, same band).
    std::vector<int> fresh(n, -1);
    int fk = 0;
    for (int s = 0; s < n; ++s) {
      if (fresh[s] >= 0) continue;
      fresh[s] = fk;
      frontier.assign(1, s);
      while (!frontier.empty()) {
        const int u = frontier.back();
        frontier.pop_back();
        for (int nb : g.neighbors(u)) {
          if (fresh[nb] < 0 && label[nb] == label[u] && band[nb] == band[u]) {
            fresh[nb] = fk;
            frontier.push_back(nb);
          }
        }
      }
      ++fk;
    }
    label = std::move(fresh);
    k = fk;
  }

  // Light-link merge refinement (Lemma 5.3 Step 3): reclaim cut edges by
  // merging clusters across heavy links. A link lighter than the filter
  // threshold stays cut (its removal is what the lemma calls light-link
  // removal); a merge is accepted only if a double-sweep eccentricity check
  // keeps the union within 3w hops of some vertex, which guarantees the
  // merged diameter stays <= 6w = O(1/eps).
  if (params.merge_filter_c > 0 && k > 2) {
    const double alpha =
        std::max(1.0, 2.0 * static_cast<double>(g.m()) / std::max(n, 1));
    const int ecc_cap = 3 * w;
    std::vector<int> parent(k);
    for (int c = 0; c < k; ++c) parent[c] = c;
    const auto find = [&parent](int c) {
      while (parent[c] != c) c = parent[c] = parent[parent[c]];
      return c;
    };
    std::vector<int> dist(n, -1);
    std::vector<std::vector<int>> rmembers;  // members per current root
    std::int64_t merge_msgs = 0;  // measured per pass: exchanges + sweeps
    const auto union_ecc_ok = [&](int ra, int rb) {
      std::vector<int> mem(rmembers[ra]);
      mem.insert(mem.end(), rmembers[rb].begin(), rmembers[rb].end());
      int src = mem.front(), ecc = 0;
      for (int sweep = 0; sweep < 2; ++sweep) {
        ecc = 0;
        int far = src;
        dist[src] = 0;
        frontier.assign(1, src);
        while (!frontier.empty()) {
          next.clear();
          for (int u : frontier) {
            for (int nb : g.neighbors(u)) {
              const int r = find(label[nb]);
              if (r != ra && r != rb) continue;
              ++merge_msgs;  // double-sweep wave over directed edge (u, nb)
              if (dist[nb] >= 0) continue;
              dist[nb] = dist[u] + 1;
              ecc = dist[nb];
              far = nb;
              next.push_back(nb);
            }
          }
          std::swap(frontier, next);
        }
        for (int v : mem) dist[v] = -1;
        src = far;
        if (ecc > ecc_cap) return false;  // first sweep already too deep
      }
      return ecc <= ecc_cap;
    };
    int k_cur = k;
    for (int pass = 0; pass < params.max_merge_passes && k_cur > 2; ++pass) {
      std::map<std::pair<int, int>, std::int64_t> weight;
      rmembers.assign(k, {});
      merge_msgs = 0;
      for (int u = 0; u < n; ++u) {
        const int ru = find(label[u]);
        rmembers[ru].push_back(u);
        for (int vtx : g.neighbors(u)) {
          if (u >= vtx) continue;
          const int rv = find(label[vtx]);
          if (ru != rv) {
            ++weight[{std::min(ru, rv), std::max(ru, rv)}];
            merge_msgs += 2;  // both endpoints exchange root ids
          }
        }
      }
      std::vector<std::pair<std::int64_t, std::pair<int, int>>> links;
      links.reserve(weight.size());
      for (const auto& [ab, wt] : weight) links.push_back({wt, ab});
      std::sort(links.begin(), links.end(), [](const auto& x, const auto& y) {
        return x.first != y.first ? x.first > y.first : x.second < y.second;
      });
      bool merged_any = false;
      std::vector<char> touched(k, 0);  // weights go stale once a side merges
      for (const auto& [wt, ab] : links) {
        if (k_cur <= 2) break;
        const int ra = find(ab.first), rb = find(ab.second);
        if (ra == rb || touched[ra] || touched[rb]) continue;
        const double thr = eps * static_cast<double>(g.m()) /
                           (params.merge_filter_c * alpha);
        if (static_cast<double>(wt) < thr) continue;
        if (!union_ecc_ok(ra, rb)) continue;
        parent[ra] = rb;
        touched[ra] = touched[rb] = 1;
        --k_cur;
        ++out.merges;
        merged_any = true;
      }
      // Candidate double-sweeps overlap (failed tests share clusters), so
      // the peak congestion is the bandwidth floor over the 4w-round budget,
      // not 1. A pass that merges nothing still paid its weight exchange
      // and sweeps — charge it before breaking.
      if (merge_msgs > 0 || merged_any) {
        out.ledger.charge(
            merged_any ? "light-link merge pass " + std::to_string(pass + 1)
                       : "light-link merge pass (no-op verification)",
            4 * w, merge_msgs,
            congest::congestion_floor(merge_msgs, 4 * w, 2 * g.m()));
      }
      if (!merged_any) break;
    }
    if (out.merges > 0) {
      for (int v = 0; v < n; ++v) label[v] = find(label[v]);
    }
  }

  out.clustering.cluster = std::move(label);
  out.clustering.k = k;
  out.clustering.compact();
  out.quality = measure_quality(g, out.clustering, params.exact_diameter_cap);

  out.T_measured =
      detail::edt_routing_time(g, eps, params.variant, out.quality.max_diameter);
  out.ledger.charge_envelope("routing setup (+T)", out.T_measured, 2 * g.m());
  return out;
}

}  // namespace mfd::decomp
