// Deterministic (ε, D, T)-decomposition — Theorem 1.1 / Corollary 6.1.
//
// Centralized simulation of the paper's deterministic CONGEST decomposition
// for H-minor-free graphs: iterated BFS-band chopping in the style of
// Klein–Plotkin–Rao. Each pass BFS-layers every remaining cluster and cuts
// between bands of width w = ceil(passes/ε) at the offset minimizing cut
// edges; by averaging the best offset cuts at most m_C/w edges per cluster,
// so `passes` budgeted passes cut at most ε·m edges in total — the ε-fraction
// guarantee is deterministic, not probabilistic. Refinement passes beyond the
// budget only run while the remaining cut allowance permits them.
//
// The Ledger charges simulated rounds: the O(log* n / ε) preprocessing term,
// per-pass BFS depth + offset aggregation, and the +T routing-structure
// setup. T_measured distinguishes the paper's two tradeoffs (Theorem 1.1):
// the overlap variant pays a log Δ factor on cluster diameter; the polylog
// variant pays an additive polylog(Δ, 1/ε) term.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "decomp/clustering.hpp"
#include "graph/graph.hpp"

namespace mfd::decomp {

enum class EdtVariant { kPolylogRouting, kOverlapRouting };

struct EdtParams {
  EdtVariant variant = EdtVariant::kPolylogRouting;
  int passes = 3;          // chopping passes budgeted against the ε allowance
  int max_iterations = 8;  // hard cap including refinement passes
  int exact_diameter_cap = 1024;  // cluster size above which diameter is swept
};

struct EdtDecomposition {
  Clustering clustering;
  Quality quality;
  Ledger ledger;
  int T_measured = 0;  // measured routing time of the chosen variant
  int iterations = 0;  // chopping passes actually executed
};

inline int log_star(double x) {
  int r = 0;
  while (x > 1.0) {
    x = std::log2(x);
    ++r;
  }
  return r;
}

inline EdtDecomposition build_edt_decomposition(const Graph& g, double eps,
                                                EdtParams params = {}) {
  EdtDecomposition out;
  const int n = g.n();
  const int w = std::max(2, static_cast<int>(std::ceil(params.passes / eps)));
  const std::int64_t cut_allowance =
      static_cast<std::int64_t>(eps * static_cast<double>(g.m()));

  // O(log* n / ε) preprocessing (symbolic charge for the paper's
  // ruling-set / degree-reduction machinery we simulate centrally).
  out.ledger.charge("preprocess(log* n / eps)",
                    log_star(n) * static_cast<std::int64_t>(std::ceil(1.0 / eps)));

  auto [label, k] = connected_components(g);
  std::vector<int> lev(n, 0), band(n, 0);
  std::vector<int> root_of;       // per-cluster BFS root
  std::vector<int> frontier, next;
  std::int64_t cut_spent = 0;

  for (int iter = 0; iter < params.max_iterations; ++iter) {
    // Roots: minimum-id vertex of each cluster.
    root_of.assign(k, -1);
    for (int v = 0; v < n; ++v) {
      if (root_of[label[v]] < 0) root_of[label[v]] = v;
    }
    // Cluster-local BFS levels (one simulated parallel BFS over all clusters).
    std::fill(lev.begin(), lev.end(), -1);
    int max_depth = 0;
    for (int c = 0; c < k; ++c) {
      const int src = root_of[c];
      lev[src] = 0;
      frontier.assign(1, src);
      while (!frontier.empty()) {
        next.clear();
        for (int u : frontier) {
          for (int nb : g.neighbors(u)) {
            if (label[nb] == label[u] && lev[nb] < 0) {
              lev[nb] = lev[u] + 1;
              max_depth = std::max(max_depth, lev[nb]);
              next.push_back(nb);
            }
          }
        }
        std::swap(frontier, next);
      }
    }

    // Per-cluster: does it still need chopping, and at which offset?
    std::vector<std::vector<int>> members(k);
    for (int v = 0; v < n; ++v) members[label[v]].push_back(v);
    bool chopped_any = false;
    std::fill(band.begin(), band.end(), 0);
    // Count level-crossing edges per (cluster, offset); offsets in [0, w).
    std::vector<std::int64_t> offset_cut(w);
    for (int c = 0; c < k; ++c) {
      bool deep = false;
      for (int v : members[c]) {
        if (lev[v] >= w) {
          deep = true;
          break;
        }
      }
      if (!deep) continue;
      std::fill(offset_cut.begin(), offset_cut.end(), 0);
      for (int u : members[c]) {
        for (int vtx : g.neighbors(u)) {
          if (label[vtx] == c && u < vtx && lev[u] != lev[vtx]) {
            const int boundary = (std::min(lev[u], lev[vtx]) + 1) % w;
            ++offset_cut[boundary];
          }
        }
      }
      int best = 0;
      for (int o = 1; o < w; ++o) {
        if (offset_cut[o] < offset_cut[best]) best = o;
      }
      if (cut_spent + offset_cut[best] > cut_allowance) continue;  // budget
      cut_spent += offset_cut[best];
      chopped_any = true;
      for (int v : members[c]) band[v] = (lev[v] + w - best) / w;
    }
    if (!chopped_any) break;
    ++out.iterations;
    out.ledger.charge("chop pass " + std::to_string(out.iterations),
                      max_depth + w);

    // New clusters: connected components of (same label, same band).
    std::vector<int> fresh(n, -1);
    int fk = 0;
    for (int s = 0; s < n; ++s) {
      if (fresh[s] >= 0) continue;
      fresh[s] = fk;
      frontier.assign(1, s);
      while (!frontier.empty()) {
        const int u = frontier.back();
        frontier.pop_back();
        for (int nb : g.neighbors(u)) {
          if (fresh[nb] < 0 && label[nb] == label[u] && band[nb] == band[u]) {
            fresh[nb] = fk;
            frontier.push_back(nb);
          }
        }
      }
      ++fk;
    }
    label = std::move(fresh);
    k = fk;
  }

  out.clustering.cluster = std::move(label);
  out.clustering.k = k;
  out.quality = measure_quality(g, out.clustering, params.exact_diameter_cap);

  // Routing time of the chosen T tradeoff, measured on the built clustering
  // (simulation proxies for the two Theorem 1.1 variants).
  const int log_delta =
      static_cast<int>(std::ceil(std::log2(g.max_degree() + 2)));
  const int log_inv_eps = static_cast<int>(std::ceil(std::log2(1.0 / eps) + 1));
  if (params.variant == EdtVariant::kOverlapRouting) {
    out.T_measured = out.quality.max_diameter * log_delta + 1;
  } else {
    out.T_measured = out.quality.max_diameter + log_delta * log_inv_eps;
  }
  out.ledger.charge("routing setup (+T)", out.T_measured);
  return out;
}

}  // namespace mfd::decomp
