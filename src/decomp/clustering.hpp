// Shared clustering type + quality measurement for every LDD variant.
//
// A decomposition is a partition of V into clusters; its quality is the
// fraction of inter-cluster ("cut") edges and the maximum strong (induced)
// diameter over clusters. Round accounting lives in congest/runtime.hpp;
// decomp::Ledger survives as an alias of congest::Runtime so the historical
// spelling keeps working.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "congest/runtime.hpp"
#include "graph/graph.hpp"

namespace mfd::decomp {

/// A partition of V into clusters.
///
/// Invariants (checked by is_valid_partition and the decomposition tests):
/// cluster.size() == n, every id lies in [0, k), and every decomposition
/// algorithm in decomp/ additionally guarantees that each cluster induces a
/// connected subgraph. Cluster ids carry no geometric meaning; expander/
/// consumers (split, routing) only compare them for equality.
struct Clustering {
  int k = 0;                 // number of clusters
  std::vector<int> cluster;  // cluster[v] in [0, k)

  /// Relabel arbitrary non-negative ids to a dense [0, k) range.
  void compact() {
    std::vector<int> remap;
    std::vector<int> sorted(cluster);
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    for (int& c : cluster) {
      c = static_cast<int>(std::lower_bound(sorted.begin(), sorted.end(), c) -
                           sorted.begin());
    }
    k = static_cast<int>(sorted.size());
  }
};

/// Measured quality of a Clustering, as produced by evaluate_clustering.
///
/// Units: eps_fraction is dimensionless (cut edges / m); max_diameter is in
/// BFS hops of the *induced* (strong) cluster subgraph — never simulated
/// rounds; max_cluster_size is in vertices. For clusters above the caller's
/// exact cap the diameter is a sampled-eccentricity estimate (iterated
/// double sweep plus spread sources — a lower bound within 2x, exact on
/// trees), so max_diameter is exact on small-cluster decompositions and
/// conservative on large ones; EvalParams::force_exact disables sampling.
struct ClusterQuality {
  double eps_fraction = 0.0;  // cut edges / m
  int max_diameter = 0;       // max induced diameter over clusters (BFS hops)
  std::int64_t cut_edges = 0;
  bool clusters_connected = true;
  int max_cluster_size = 0;
};

/// Historical name; EDT and the LDD baselines expose this spelling.
using Quality = ClusterQuality;

/// Knobs of evaluate_clustering. Clusters of at most exact_cap vertices get
/// the exact all-pairs-BFS diameter; larger ones are estimated from
/// 2*sweeps alternating-double-sweep BFSes plus sample_sources evenly spread
/// extra sources. force_exact disables the sampling path entirely (tests use
/// it to pin the estimator against ground truth).
struct EvalParams {
  int exact_cap = 64;
  int sweeps = 4;
  int sample_sources = 8;
  bool force_exact = false;
};

/// Historical name for the shared round-accounting substrate. New code
/// should spell it congest::Runtime; the alias keeps the long-standing
/// `Ledger ledger;` result fields (and their `.total()` / `.charge()` call
/// sites) source-compatible.
using Ledger = congest::Runtime;

namespace detail {

/// Eccentricity of `src` within its cluster (BFS restricted to vertices whose
/// cluster id matches). Also reports how many cluster vertices were reached.
inline std::pair<int, int> cluster_ecc(const Graph& g,
                                       const std::vector<int>& cluster, int src,
                                       std::vector<int>& dist,
                                       std::vector<int>& frontier,
                                       std::vector<int>& next,
                                       int* farthest = nullptr) {
  const int cid = cluster[src];
  dist[src] = 0;
  frontier.clear();
  frontier.push_back(src);
  int ecc = 0, reached = 1, far = src;
  while (!frontier.empty()) {
    next.clear();
    for (int u : frontier) {
      for (int w : g.neighbors(u)) {
        if (cluster[w] == cid && dist[w] < 0) {
          dist[w] = dist[u] + 1;
          ecc = dist[w];
          far = w;
          ++reached;
          next.push_back(w);
        }
      }
    }
    std::swap(frontier, next);
  }
  if (farthest != nullptr) *farthest = far;
  return {ecc, reached};
}

}  // namespace detail

/// Measure cut fraction and per-cluster strong diameter.
///
/// Diameter is exact (all-pairs BFS inside the cluster) for clusters up to
/// EvalParams::exact_cap vertices; larger clusters use sampled eccentricity
/// — an iterated double sweep plus evenly spread extra sources (a lower
/// bound within 2x, exact on trees) — so the measurement stays near-linear
/// even when clusters are large. force_exact runs all-pairs BFS everywhere.
inline ClusterQuality evaluate_clustering(const Graph& g, const Clustering& c,
                                          const EvalParams& params = {}) {
  ClusterQuality q;
  for (int u = 0; u < g.n(); ++u) {
    for (int v : g.neighbors(u)) {
      if (u < v && c.cluster[u] != c.cluster[v]) ++q.cut_edges;
    }
  }
  q.eps_fraction = g.m() == 0 ? 0.0
                              : static_cast<double>(q.cut_edges) /
                                    static_cast<double>(g.m());

  std::vector<std::vector<int>> members(c.k);
  for (int v = 0; v < g.n(); ++v) members[c.cluster[v]].push_back(v);

  std::vector<int> dist(g.n(), -1), frontier, next;
  const auto reset = [&dist](const std::vector<int>& touched) {
    for (int v : touched) dist[v] = -1;
  };
  for (const auto& verts : members) {
    if (verts.empty()) continue;
    const int size = static_cast<int>(verts.size());
    q.max_cluster_size = std::max(q.max_cluster_size, size);
    int diam = 0;
    const auto probe = [&](int src, int* far) {
      const auto [ecc, reached] =
          detail::cluster_ecc(g, c.cluster, src, dist, frontier, next, far);
      diam = std::max(diam, ecc);
      if (reached != size) q.clusters_connected = false;
      reset(verts);
    };
    if (params.force_exact || size <= params.exact_cap) {
      for (int src : verts) probe(src, nullptr);
    } else {
      // Alternating double sweep: hop to the farthest vertex found so far.
      int src = verts.front();
      for (int sweep = 0; sweep < params.sweeps; ++sweep) {
        int far = src;
        probe(src, &far);
        src = far;
      }
      // Evenly spread extra sources guard against sweeps stuck on one limb.
      const int stride = std::max(1, size / std::max(params.sample_sources, 1));
      for (int i = stride / 2; i < size; i += stride) probe(verts[i], nullptr);
    }
    q.max_diameter = std::max(q.max_diameter, diam);
  }
  return q;
}

/// Historical entry point: exact diameters up to `exact_cap`, sampled above.
inline Quality measure_quality(const Graph& g, const Clustering& c,
                               int exact_cap = 64) {
  EvalParams p;
  p.exact_cap = exact_cap;
  return evaluate_clustering(g, c, p);
}

/// True iff every vertex carries a cluster id in [0, k). Connectivity of the
/// induced clusters is reported separately by measure_quality
/// (Quality::clusters_connected).
inline bool is_valid_partition(const Graph& g, const Clustering& c) {
  if (static_cast<int>(c.cluster.size()) != g.n()) return false;
  for (int v = 0; v < g.n(); ++v) {
    if (c.cluster[v] < 0 || c.cluster[v] >= c.k) return false;
  }
  return true;
}

}  // namespace mfd::decomp
