// (ε, φ, c) overlap expander decomposition — §4.2 / Lemma 4.1, in the
// Chang–Saranurak (arXiv:2007.14898) style.
//
// Clusters may overlap: the object guarantees (i) every cluster's induced
// support has conductance >= φ, (ii) every vertex lies in at most c
// clusters, and (iii) all but an ε fraction of edges have both endpoints in
// a common cluster. The construction levels it: level 0 runs the (ε', φ)
// partition pipeline on G; the edges it cuts form the level-1 graph, which
// gets its own partition; and so on until at most ε·m edges remain
// uncovered. Each level covers at least half of its edges in practice, so
// the level count — and hence the overlap c, since a vertex joins at most
// one cluster per level — stays O(log 1/ε), the paper's bound.
//
// evaluate_overlap audits all three guarantees on the finished object;
// min_support_phi_lower reuses graph/metrics.hpp::phi_certificate (exact
// for tiny supports, Cheeger-estimate otherwise).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "decomp/clustering.hpp"
#include "decomp/expander_decomp.hpp"
#include "graph/graph.hpp"
#include "graph/metrics.hpp"
#include "graph/ops.hpp"

namespace mfd::decomp {

/// A family of possibly-overlapping clusters over the vertex set [0, n).
struct OverlapClustering {
  int n = 0;
  std::vector<std::vector<int>> members;  // members[c] = vertices of cluster c
  int k() const { return static_cast<int>(members.size()); }
};

struct OverlapDecompParams {
  double level_eps = 0.5;  // per-level cut target handed to the partition
  int max_levels = 0;      // 0 derives ceil(log2(1/eps)) + 2
  int min_level_edges = 1; // stop once fewer uncovered edges remain
  ExpanderDecompParams expander;
};

struct OverlapDecompResult {
  OverlapClustering oc;
  int iterations = 0;      // levels actually built
  double phi_target = 0.0; // the level-0 conductance target
  congest::Runtime ledger; // phase-attributed simulated CONGEST rounds
  std::int64_t uncovered_edges = 0;
};

inline OverlapDecompResult overlap_expander_decomposition(
    const Graph& g, double eps, OverlapDecompParams params = {}) {
  OverlapDecompResult out;
  out.oc.n = g.n();
  const int max_levels =
      params.max_levels > 0
          ? params.max_levels
          : static_cast<int>(std::ceil(std::log2(1.0 / eps))) + 2;
  const std::int64_t allowance =
      static_cast<std::int64_t>(eps * static_cast<double>(g.m()));

  std::vector<std::pair<int, int>> uncovered = g.edges();
  for (int level = 0; level < max_levels; ++level) {
    if (static_cast<std::int64_t>(uncovered.size()) <= allowance ||
        static_cast<int>(uncovered.size()) < params.min_level_edges) {
      break;
    }
    // Level graph: the still-uncovered edges on their incident vertices.
    std::vector<int> verts;
    verts.reserve(2 * uncovered.size());
    for (const auto& [u, v] : uncovered) {
      verts.push_back(u);
      verts.push_back(v);
    }
    std::sort(verts.begin(), verts.end());
    verts.erase(std::unique(verts.begin(), verts.end()), verts.end());
    std::vector<int> local(g.n(), -1);
    for (std::size_t i = 0; i < verts.size(); ++i) {
      local[verts[i]] = static_cast<int>(i);
    }
    std::vector<std::pair<int, int>> ledges;
    ledges.reserve(uncovered.size());
    for (const auto& [u, v] : uncovered) ledges.emplace_back(local[u], local[v]);
    const Graph h =
        Graph::from_edges(static_cast<int>(verts.size()), std::move(ledges));

    const ExpanderDecomp ed =
        expander_decomposition_minor_free(h, params.level_eps, params.expander);
    if (level == 0) out.phi_target = ed.phi_target;
    out.ledger.charge("level " + std::to_string(level) + " partition",
                      ed.ledger.total());
    ++out.iterations;

    std::vector<std::vector<int>> cluster_members(ed.clustering.k);
    for (int i = 0; i < h.n(); ++i) {
      cluster_members[ed.clustering.cluster[i]].push_back(verts[i]);
    }
    for (auto& mem : cluster_members) {
      if (!mem.empty()) out.oc.members.push_back(std::move(mem));
    }
    std::vector<std::pair<int, int>> still;
    for (const auto& [u, v] : uncovered) {
      if (ed.clustering.cluster[local[u]] != ed.clustering.cluster[local[v]]) {
        still.emplace_back(u, v);
      }
    }
    uncovered = std::move(still);
  }
  out.uncovered_edges = static_cast<std::int64_t>(uncovered.size());
  return out;
}

/// Audited quality of an overlap decomposition. base.eps_fraction counts
/// edges covered by NO cluster; base.cut_edges is that count; base's
/// diameter/size/connectivity fields describe the cluster supports.
struct OverlapQuality {
  ClusterQuality base;
  int overlap_c = 0;                  // max clusters sharing one vertex
  double min_support_phi_lower = 1.0; // min certified support conductance
};

inline OverlapQuality evaluate_overlap(const Graph& g,
                                       const OverlapClustering& oc,
                                       int exact_phi_cap = 12) {
  OverlapQuality q;
  std::vector<std::vector<int>> of(g.n());  // clusters containing v, sorted
  for (int c = 0; c < oc.k(); ++c) {
    for (int v : oc.members[c]) of[v].push_back(c);
  }
  for (int v = 0; v < g.n(); ++v) {
    q.overlap_c = std::max(q.overlap_c, static_cast<int>(of[v].size()));
  }
  for (int u = 0; u < g.n(); ++u) {
    for (int v : g.neighbors(u)) {
      if (u >= v) continue;
      bool covered = false;
      for (int c : of[u]) {
        if (std::binary_search(of[v].begin(), of[v].end(), c)) {
          covered = true;
          break;
        }
      }
      if (!covered) ++q.base.cut_edges;
    }
  }
  q.base.eps_fraction = g.m() == 0 ? 0.0
                                   : static_cast<double>(q.base.cut_edges) /
                                         static_cast<double>(g.m());
  for (const auto& mem : oc.members) {
    q.base.max_cluster_size =
        std::max(q.base.max_cluster_size, static_cast<int>(mem.size()));
    const InducedSubgraph sub = induced_subgraph(g, mem);
    if (!is_connected(sub.graph)) q.base.clusters_connected = false;
    const PhiCertificate cert = phi_certificate(sub.graph, exact_phi_cap);
    q.min_support_phi_lower = std::min(q.min_support_phi_lower, cert.phi);
    // Support diameter via double sweep (lower bound, exact on trees).
    int src = 0, diam = 0;
    for (int sweep = 0; sweep < 2 && sub.graph.n() > 0; ++sweep) {
      const std::vector<int> d = bfs_distances(sub.graph, src);
      for (int i = 0; i < sub.graph.n(); ++i) {
        if (d[i] > diam) {
          diam = d[i];
          src = i;
        }
      }
    }
    q.base.max_diameter = std::max(q.base.max_diameter, diam);
  }
  return q;
}

}  // namespace mfd::decomp
