// (ε, φ, c) overlap expander decomposition — §4.2 / Lemma 4.1, in the
// Chang–Saranurak (arXiv:2007.14898) style.
//
// Clusters may overlap: the object guarantees (i) every cluster's induced
// support has conductance >= φ, (ii) every vertex lies in at most c
// clusters, and (iii) all but an ε fraction of edges have both endpoints in
// a common cluster. The construction levels it: level 0 runs the (ε', φ)
// partition pipeline on G; the edges it cuts form the level-1 graph, which
// gets its own partition; and so on until at most ε·m edges remain
// uncovered. Each level covers at least half of its edges in practice, so
// the level count — and hence the overlap c, since a vertex joins at most
// one cluster per level — stays O(log 1/ε), the paper's bound.
//
// The level count stays O(log 1/ε) only if every level actually halves its
// uncovered-edge set. By default that halving is *measured* (the paper's
// bound holds empirically); with OverlapDecompParams::budgeted it is
// *enforced*: a level that leaves more than half of its edges uncovered is
// repaired SURGICALLY — the still-uncovered edge subgraph (not the whole
// level) is re-partitioned at half the level ε, its clusters appended to
// the family (overlap is exactly what the object licenses), and the ladder
// repeats on the geometrically smaller remainder up to budget_retries
// times. Coverage is monotone across retries — an edge covered by an
// earlier pass stays covered — so retries only shrink the uncovered set. A
// level that still misses its budget is recorded in
// OverlapDecompResult::budget_violations so the evaluate_overlap audit
// fails loudly instead of silently recursing past the level cap. Each
// retry can add one more cluster membership to a vertex, so on budgeted
// runs the overlap c is bounded by levels + total retries (retries are
// rare: the trail in level_retries records them).
//
// evaluate_overlap audits all three guarantees on the finished object;
// min_support_phi_lower reuses graph/metrics.hpp::phi_certificate (exact
// for tiny supports, Cheeger-estimate otherwise).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "decomp/clustering.hpp"
#include "decomp/expander_decomp.hpp"
#include "graph/graph.hpp"
#include "graph/metrics.hpp"
#include "graph/ops.hpp"

namespace mfd::decomp {

/// A family of possibly-overlapping clusters over the vertex set [0, n).
struct OverlapClustering {
  int n = 0;
  std::vector<std::vector<int>> members;  // members[c] = vertices of cluster c
  int k() const { return static_cast<int>(members.size()); }
};

struct OverlapDecompParams {
  double level_eps = 0.5;  // per-level cut target handed to the partition
  int max_levels = 0;      // 0 derives ceil(log2(1/eps)) + 2
  int min_level_edges = 1; // stop once fewer uncovered edges remain
  // Enforce the per-level halving instead of measuring it: a level leaving
  // more than half of its edges uncovered re-partitions just that uncovered
  // remainder at level_eps/2 (then /4, ...) up to budget_retries times,
  // appending the retry clusters; a level that still overshoots lands in
  // OverlapDecompResult::budget_violations.
  bool budgeted = false;
  int budget_retries = 3;
  // Audit mode: after the ladder finishes, re-certify every cluster support
  // in the family through certify_parts (three-tier certified_phi, with the
  // cut-matching game above the exact cap) and fail loudly on an
  // inconsistent certificate — see the matching flag on ExpanderDecompParams.
  // This certifies the FINAL overlap object; it does not alter construction.
  bool certify = false;
  expander::PhiCertParams certify_params;
  // Optional pool for the certify audit (see ExpanderDecompParams) — the
  // supports fan out as independent tasks, report folded in cluster order.
  congest::ShardPool* certify_pool = nullptr;
  ExpanderDecompParams expander;
};

struct OverlapDecompResult {
  OverlapClustering oc;
  int iterations = 0;      // levels actually built
  double phi_target = 0.0; // the level-0 conductance target
  congest::Runtime ledger; // phase-attributed simulated CONGEST rounds
  std::int64_t uncovered_edges = 0;
  // Per-level audit trail: edges entering each level and edges its partition
  // left uncovered. budget_violations lists levels that kept > 1/2 of their
  // edges uncovered even after the budgeted retries (always empty unless the
  // instance defeats the retry ladder).
  std::vector<std::int64_t> level_edges;
  std::vector<std::int64_t> level_uncovered;
  // Surgical retries run per level (0 on non-budgeted runs and on levels
  // that met their budget first try).
  std::vector<int> level_retries;
  std::vector<int> budget_violations;
  // Certified-vs-estimated split of the per-support conductance evidence,
  // populated only under OverlapDecompParams::certify (same semantics as the
  // ExpanderDecomp fields; certify_ok stays true when the audit did not run).
  int clusters_certified = 0;
  int clusters_estimated = 0;
  double min_phi_lower = 1.0;
  double min_phi_estimate = 1.0;
  bool certify_ok = true;
};

inline OverlapDecompResult overlap_expander_decomposition(
    const Graph& g, double eps, OverlapDecompParams params = {}) {
  OverlapDecompResult out;
  out.oc.n = g.n();
  const int max_levels =
      params.max_levels > 0
          ? params.max_levels
          : static_cast<int>(std::ceil(std::log2(1.0 / eps))) + 2;
  const std::int64_t allowance =
      static_cast<std::int64_t>(eps * static_cast<double>(g.m()));

  std::vector<std::pair<int, int>> uncovered = g.edges();
  for (int level = 0; level < max_levels; ++level) {
    if (static_cast<std::int64_t>(uncovered.size()) <= allowance ||
        static_cast<int>(uncovered.size()) < params.min_level_edges) {
      break;
    }
    // The level's charges (partition pipeline + any budgeted retries) close
    // into the ledger under one "level L: " prefix, full phase breakdown
    // preserved — the bench per-phase table shows "level 0: edt: ...".
    congest::ChargeScope scope(out.ledger, "level " + std::to_string(level));

    // Shared by the base run and the surgical retries: induce an edge set on
    // its incident vertices. verts/local are the global<->local maps of the
    // MOST RECENT build — separated()/adopt_clusters() below read them.
    std::vector<int> verts, local;
    const auto build_graph = [&](const std::vector<std::pair<int, int>>& es) {
      verts.clear();
      verts.reserve(2 * es.size());
      for (const auto& [u, v] : es) {
        verts.push_back(u);
        verts.push_back(v);
      }
      std::sort(verts.begin(), verts.end());
      verts.erase(std::unique(verts.begin(), verts.end()), verts.end());
      local.assign(g.n(), -1);
      for (std::size_t i = 0; i < verts.size(); ++i) {
        local[verts[i]] = static_cast<int>(i);
      }
      std::vector<std::pair<int, int>> ledges;
      ledges.reserve(es.size());
      for (const auto& [u, v] : es) ledges.emplace_back(local[u], local[v]);
      return Graph::from_edges(static_cast<int>(verts.size()),
                               std::move(ledges));
    };
    // Edges of `es` whose endpoints partition `e` put in different clusters.
    const auto separated = [&](const ExpanderDecomp& e,
                               const std::vector<std::pair<int, int>>& es) {
      std::vector<std::pair<int, int>> still;
      for (const auto& [u, v] : es) {
        if (e.clustering.cluster[local[u]] != e.clustering.cluster[local[v]]) {
          still.emplace_back(u, v);
        }
      }
      return still;
    };
    // Every pass's clusters join the family immediately — the retries'
    // clusters legitimately overlap the base pass's, which is exactly the
    // freedom the overlap object licenses.
    const auto adopt_clusters = [&](const ExpanderDecomp& e) {
      std::vector<std::vector<int>> mem(e.clustering.k);
      for (std::size_t i = 0; i < verts.size(); ++i) {
        mem[e.clustering.cluster[i]].push_back(verts[i]);
      }
      for (auto& cluster : mem) {
        if (!cluster.empty()) out.oc.members.push_back(std::move(cluster));
      }
    };

    double lvl_eps = params.level_eps;
    const Graph h = build_graph(uncovered);
    const ExpanderDecomp ed =
        expander_decomposition_minor_free(h, lvl_eps, params.expander);
    scope.absorb(ed.ledger);
    if (level == 0) out.phi_target = ed.phi_target;
    adopt_clusters(ed);
    std::vector<std::pair<int, int>> still = separated(ed, uncovered);
    int retries = 0;
    if (params.budgeted) {
      // Enforced halving, surgically: instead of throwing away the whole
      // level and re-running it at halved ε (the old ladder — every retry
      // repaid the full level cost and discarded clusters that were already
      // fine), re-partition ONLY the still-uncovered remainder. Coverage is
      // monotone — an edge covered by an earlier pass stays covered — so
      // each rung works on a smaller instance and `still` only shrinks.
      for (int retry = 1;
           retry <= params.budget_retries &&
           2 * static_cast<std::int64_t>(still.size()) >
               static_cast<std::int64_t>(uncovered.size());
           ++retry) {
        ++retries;
        lvl_eps /= 2.0;
        const Graph rh = build_graph(still);
        const ExpanderDecomp red =
            expander_decomposition_minor_free(rh, lvl_eps, params.expander);
        scope.absorb(red.ledger, "retry " + std::to_string(retry) + ": ");
        adopt_clusters(red);
        still = separated(red, still);
      }
      if (2 * static_cast<std::int64_t>(still.size()) >
          static_cast<std::int64_t>(uncovered.size())) {
        out.budget_violations.push_back(level);
      }
    }
    ++out.iterations;
    out.level_edges.push_back(static_cast<std::int64_t>(uncovered.size()));
    out.level_uncovered.push_back(static_cast<std::int64_t>(still.size()));
    out.level_retries.push_back(retries);
    uncovered = std::move(still);
  }
  out.uncovered_edges = static_cast<std::int64_t>(uncovered.size());
  if (params.certify) {
    congest::ChargeScope scope(out.ledger, "certify");
    const PartCertifyReport rep = certify_parts(
        g, out.oc.members, params.certify_params, params.certify_pool);
    out.clusters_certified = rep.clusters_certified;
    out.clusters_estimated = rep.clusters_estimated;
    out.min_phi_lower = rep.min_phi_lower;
    out.min_phi_estimate = rep.min_phi_estimate;
    out.certify_ok = rep.ok;
    scope.absorb(rep.ledger);
  }
  return out;
}

/// Audited quality of an overlap decomposition. base.eps_fraction counts
/// edges covered by NO cluster; base.cut_edges is that count; base's
/// diameter/size/connectivity fields describe the cluster supports.
/// level_budget_ok is only meaningful when the audit is given the
/// construction result (the overload below): it verifies every level left
/// at most half of its edges uncovered — the budget that caps the level
/// count (and hence the overlap c) at O(log 1/ε).
struct OverlapQuality {
  ClusterQuality base;
  int overlap_c = 0;                  // max clusters sharing one vertex
  double min_support_phi_lower = 1.0; // min certified support conductance
  bool level_budget_ok = true;        // per-level halving held (see above)
};

inline OverlapQuality evaluate_overlap(const Graph& g,
                                       const OverlapClustering& oc,
                                       int exact_phi_cap = 12) {
  OverlapQuality q;
  std::vector<std::vector<int>> of(g.n());  // clusters containing v, sorted
  for (int c = 0; c < oc.k(); ++c) {
    for (int v : oc.members[c]) of[v].push_back(c);
  }
  for (int v = 0; v < g.n(); ++v) {
    q.overlap_c = std::max(q.overlap_c, static_cast<int>(of[v].size()));
  }
  for (int u = 0; u < g.n(); ++u) {
    for (int v : g.neighbors(u)) {
      if (u >= v) continue;
      bool covered = false;
      for (int c : of[u]) {
        if (std::binary_search(of[v].begin(), of[v].end(), c)) {
          covered = true;
          break;
        }
      }
      if (!covered) ++q.base.cut_edges;
    }
  }
  q.base.eps_fraction = g.m() == 0 ? 0.0
                                   : static_cast<double>(q.base.cut_edges) /
                                         static_cast<double>(g.m());
  for (const auto& mem : oc.members) {
    q.base.max_cluster_size =
        std::max(q.base.max_cluster_size, static_cast<int>(mem.size()));
    const InducedSubgraph sub = induced_subgraph(g, mem);
    if (!is_connected(sub.graph)) q.base.clusters_connected = false;
    const PhiCertificate cert = phi_certificate(sub.graph, exact_phi_cap);
    q.min_support_phi_lower = std::min(q.min_support_phi_lower, cert.phi);
    // Support diameter via double sweep (lower bound, exact on trees).
    int src = 0, diam = 0;
    for (int sweep = 0; sweep < 2 && sub.graph.n() > 0; ++sweep) {
      const std::vector<int> d = bfs_distances(sub.graph, src);
      for (int i = 0; i < sub.graph.n(); ++i) {
        if (d[i] > diam) {
          diam = d[i];
          src = i;
        }
      }
    }
    q.base.max_diameter = std::max(q.base.max_diameter, diam);
  }
  return q;
}

/// Audit overload for a full construction result: the clustering checks
/// above plus the per-level halving budget, which FAILS LOUDLY — every
/// violated level is reported on stderr and level_budget_ok goes false —
/// so a run that silently blew its level budget cannot pass a bench or
/// test that audits it.
inline OverlapQuality evaluate_overlap(const Graph& g,
                                       const OverlapDecompResult& result,
                                       int exact_phi_cap = 12) {
  OverlapQuality q = evaluate_overlap(g, result.oc, exact_phi_cap);
  for (std::size_t level = 0; level < result.level_edges.size(); ++level) {
    if (2 * result.level_uncovered[level] > result.level_edges[level]) {
      q.level_budget_ok = false;
      std::fprintf(stderr,
                   "evaluate_overlap: level %zu left %lld of %lld edges "
                   "uncovered (> 1/2 budget)\n",
                   level, static_cast<long long>(result.level_uncovered[level]),
                   static_cast<long long>(result.level_edges[level]));
    }
  }
  for (int level : result.budget_violations) {
    q.level_budget_ok = false;
    std::fprintf(stderr,
                 "evaluate_overlap: budgeted construction exhausted retries "
                 "at level %d\n",
                 level);
  }
  return q;
}

}  // namespace mfd::decomp
