// Theorem 1.1 LOCAL pipeline: iterated heavy-stars contraction with a
// diameter guard — the replacement for the global-BFS chop.
//
// The global chop pays its BFS depth in simulated rounds every pass, which
// on a √n-diameter grid makes construction cost Θ(√n). This pipeline never
// runs a global BFS: it starts from singleton clusters and repeatedly
//   1. builds the weighted cluster graph (edge weight = number of G-edges
//      between two clusters),
//   2. marks heavy stars on it (Lemma 4.2, >= 1/(8α) of the remaining cut
//      weight, O(log* n) Cole–Vishkin rounds),
//   3. merges each marked tree top-down under an eccentricity guard that
//      keeps every cluster's certified radius <= ecc_cap, so the final
//      strong diameter is <= 2*ecc_cap = O(1/ε) by construction.
// Each accepted merge moves its captured edges from the cut into a cluster,
// so the cut weight shrinks geometrically; the loop stops once at most ε·m
// edges remain cut (a hard budget, like the chop's). If the guard ever
// blocks every merge while the budget is unmet, ecc_cap doubles — the
// escape hatch that guarantees termination on adversarial instances (the
// bench families never trigger it at the default cap).
//
// Rounds charged per iteration: the heavy-stars rounds (pointing +
// Cole–Vishkin + star formation) plus 2*ecc_cap for the intra-cluster
// aggregation a CONGEST implementation pays to act as one cluster-graph
// node. Total: O((log* n + 1/ε) · iterations), independent of the graph
// diameter — the fidelity gap ROADMAP flags is exactly this.
//
// Bandwidth is measured, not symbolic: every iteration opens a ChargeScope
// ("heavy-stars iter N: ...") that absorbs the heavy-stars phase ledger
// (pointer exchange, Cole–Vishkin colors, bipartition vote, star formation)
// and adds the merge/re-measure sweep — label announcements from every
// relabeled vertex to its neighbors plus the designee-ecc BFS wave, each
// directed edge carrying at most one O(log n)-bit message per round.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "congest/runtime.hpp"
#include "congest/shard.hpp"
#include "decomp/clustering.hpp"
#include "decomp/heavy_stars.hpp"
#include "graph/graph.hpp"
#include "graph/weighted.hpp"

namespace mfd::decomp {

struct LocalLddParams {
  // Eccentricity guard: clusters never exceed this certified radius, so the
  // strong diameter stays <= 2*ecc_cap. 0 derives ceil(4/eps).
  int ecc_cap = 0;
  int max_iterations = 100;  // hard cap; the eps budget normally stops first
  EvalParams eval;           // quality measurement knobs
  // Sharded per-round engine: > 1 partitions the per-iteration vertex work
  // (cluster-edge build, heavy-stars phases, relabel sweep, cut recount,
  // per-cluster designee BFS) across a congest::ShardPool. Results are
  // bit-identical to threads = 1 — the serial reference — for every thread
  // count; only wall time changes. `pool` lends an existing pool (benches
  // reuse one across runs); otherwise one is created per call when
  // threads > 1. threads = 0 asks for hardware_concurrency.
  int threads = 1;
  congest::ShardPool* pool = nullptr;
};

struct LocalLdd {
  Clustering clustering;
  ClusterQuality quality;
  congest::Runtime ledger;
  int iterations = 0;       // heavy-stars contraction iterations run
  int merges = 0;           // accepted cluster merges (marked-tree edges)
  int cv_rounds_total = 0;  // Cole–Vishkin rounds summed over iterations
  int ecc_cap_final = 0;    // cap after any doublings (== initial normally)
  std::int64_t cut_edges = 0;
};

inline LocalLdd ldd_minor_free_local(const Graph& g, double eps,
                                     LocalLddParams params = {}) {
  LocalLdd out;
  const int n = g.n();
  int cap = params.ecc_cap > 0
                ? params.ecc_cap
                : std::max(2, static_cast<int>(std::ceil(4.0 / eps)));
  const std::int64_t allowance =
      static_cast<std::int64_t>(eps * static_cast<double>(g.m()));

  // Sharding setup (threads == 1 runs every loop inline — the serial
  // reference path the equivalence tests compare against).
  std::unique_ptr<congest::ShardPool> owned_pool;
  congest::ShardPool* pool = params.pool;
  if (pool == nullptr && params.threads != 1) {
    owned_pool = std::make_unique<congest::ShardPool>(params.threads);
    pool = owned_pool.get();
  }
  const int tasks = pool != nullptr ? pool->threads() : 1;
  const auto for_ranges = [&](const std::function<void(int, int, int)>& fn) {
    if (pool == nullptr || pool->threads() == 1) {
      if (n > 0) fn(0, n, 0);
    } else {
      congest::parallel_ranges(*pool, n, tasks, fn);
    }
  };

  // Per cluster (indexed by its label): a designated center vertex and that
  // center's exact eccentricity inside the cluster. The guard reasons about
  // distances from the center, so diameter <= 2 * ecc_est always holds.
  std::vector<int> label(n), designee(n), ecc_est(n, 0);
  for (int v = 0; v < n; ++v) label[v] = designee[v] = v;
  std::int64_t cut = g.m();

  std::vector<int> compact(n, -1), rep;    // cluster ids -> dense [0, k)
  std::vector<int> order, head, next_in;   // marked-tree children buckets
  std::vector<int> dist(n, -1);  // shared BFS scratch (clusters are disjoint)
  while (cut > allowance && out.iterations < params.max_iterations) {
    // Dense cluster ids for this iteration.
    std::fill(compact.begin(), compact.end(), -1);
    rep.clear();
    for (int v = 0; v < n; ++v) {
      if (compact[label[v]] < 0) {
        compact[label[v]] = static_cast<int>(rep.size());
        rep.push_back(label[v]);
      }
    }
    const int k = static_cast<int>(rep.size());
    // Cut-edge scan, sharded by source vertex: per-task runs concatenated in
    // task order reproduce the serial emission order exactly (tasks cover
    // ascending contiguous u ranges), so the WeightedGraph — and everything
    // downstream — is bit-identical for every thread count.
    std::vector<std::vector<WeightedEdge>> cedges_by_task(
        static_cast<std::size_t>(tasks));
    for_ranges([&](int lo, int hi, int task) {
      std::vector<WeightedEdge>& ces =
          cedges_by_task[static_cast<std::size_t>(task)];
      for (int u = lo; u < hi; ++u) {
        for (int v : g.neighbors(u)) {
          if (u < v && label[u] != label[v]) {
            ces.push_back({compact[label[u]], compact[label[v]], 1});
          }
        }
      }
    });
    std::vector<WeightedEdge> cedges;
    {
      std::size_t total = 0;
      for (const auto& ces : cedges_by_task) total += ces.size();
      cedges.reserve(total);
      for (auto& ces : cedges_by_task) {
        cedges.insert(cedges.end(), ces.begin(), ces.end());
      }
    }
    const WeightedGraph cg(k, std::move(cedges));
    const HeavyStarsResult hs = heavy_stars(cg, pool);
    ++out.iterations;
    out.cv_rounds_total += hs.cv_rounds;
    // All of this iteration's charges close into the ledger under one
    // "heavy-stars iter N: " prefix — the heavy-stars phases verbatim, then
    // the measured merge/re-measure sweep below.
    congest::ChargeScope scope(out.ledger,
                               "heavy-stars iter " + std::to_string(out.iterations));
    scope.absorb(hs.ledger);

    // Merge marked trees top-down under the eccentricity guard. bound[c] is
    // a certified upper bound on the distance from the tree root's cluster
    // center to any vertex of cluster c after the merge: entering c costs
    // the parent's bound, one crossing edge, and a detour through c's own
    // center (<= 2*ecc of the center).
    head.assign(k, -1);
    next_in.assign(k, -1);
    order.clear();
    for (int c = 0; c < k; ++c) {
      const int p = hs.kept_parent[c];
      if (p < 0) {
        order.push_back(c);  // tree roots first: BFS order below
      } else {
        next_in[c] = head[p];
        head[p] = c;
      }
    }
    std::vector<int> bound(k, 0);
    std::vector<char> accepted(k, 0);
    int accepted_any = 0;
    for (std::size_t i = 0; i < order.size(); ++i) {
      const int c = order[i];
      if (hs.kept_parent[c] < 0) {
        accepted[c] = 1;
        bound[c] = ecc_est[rep[c]];
      }
      for (int child = head[c]; child >= 0; child = next_in[child]) {
        const int b = bound[c] + 1 + 2 * ecc_est[rep[child]];
        if (accepted[c] && b <= cap) {
          accepted[child] = 1;
          bound[child] = b;
          ++out.merges;
          ++accepted_any;
        }
        order.push_back(child);  // children still relabel their own subtrees
      }
    }
    if (accepted_any == 0) {
      // Guard blocked everything: relax and retry. The iteration still ran
      // its pointing + Cole–Vishkin + (empty) formation phases — already
      // absorbed above; leave a zero-cost marker so the breakdown shows why
      // the iteration merged nothing.
      cap *= 2;
      scope.charge("stalled, ecc-cap doubled", 0);
      continue;
    }

    // Apply: accepted clusters adopt their tree root's label (and its
    // designated center), then every cluster re-measures its center's exact
    // eccentricity with one intra-cluster BFS — the 2*max_ecc charge above
    // pays for this sweep, and the exact value keeps the guard from
    // compounding the additive overestimates across iterations.
    std::vector<int> new_root(k);
    for (int c : order) {
      const int p = hs.kept_parent[c];
      new_root[c] = (p >= 0 && accepted[c]) ? new_root[p] : c;
    }
    // Measured sweep traffic: every relabeled vertex announces its new label
    // to all neighbors (one O(log n)-bit message per incident directed
    // edge), then the designee BFS wave crosses each intra-cluster directed
    // edge once and the eccentricity converges back along the BFS tree.
    // Relabel + cut recount shard by vertex (label[v] reads/writes are
    // per-vertex; the recount runs after the relabel barrier); sums fold in
    // task order — integer addition, so totals are sharding-invariant.
    std::int64_t sweep_msgs = 0;
    {
      std::vector<std::int64_t> msgs(static_cast<std::size_t>(tasks), 0);
      for_ranges([&](int lo, int hi, int task) {
        std::int64_t local = 0;
        for (int v = lo; v < hi; ++v) {
          const int nl = rep[new_root[compact[label[v]]]];
          if (nl != label[v]) local += g.degree(v);
          label[v] = nl;
        }
        msgs[static_cast<std::size_t>(task)] = local;
      });
      for (std::int64_t m2 : msgs) sweep_msgs += m2;
    }
    cut = 0;
    {
      std::vector<std::int64_t> cuts(static_cast<std::size_t>(tasks), 0);
      for_ranges([&](int lo, int hi, int task) {
        std::int64_t local = 0;
        for (int u = lo; u < hi; ++u) {
          for (int v : g.neighbors(u)) {
            if (u < v && label[u] != label[v]) ++local;
          }
        }
        cuts[static_cast<std::size_t>(task)] = local;
      });
      for (std::int64_t c2 : cuts) cut += c2;
    }
    // One BFS per cluster from its designee. Clusters are vertex-disjoint,
    // so concurrent cluster BFSes share the dist array without racing: a
    // BFS only touches dist[w2] when label[w2] == its own cluster root, and
    // resets its touched entries to -1 before finishing. Each cluster is
    // one pool task (dynamic claiming balances the skewed late-iteration
    // cluster sizes); per-cluster message counts and eccentricities fold in
    // root order, identical to the serial sweep.
    int max_ecc = 1;
    {
      std::vector<int> roots;
      for (int v = 0; v < n; ++v) {
        if (label[v] == v) roots.push_back(v);
      }
      const int workers = pool != nullptr ? pool->threads() : 1;
      struct Scratch {
        std::vector<int> frontier, nxt, touched;
      };
      std::vector<Scratch> scratch(static_cast<std::size_t>(workers));
      std::vector<std::int64_t> bfs_msgs(roots.size(), 0);
      std::vector<int> ecc_of(roots.size(), 0);
      const auto bfs_cluster = [&](std::size_t idx, Scratch& sc,
                                   std::vector<int>& dist_arr) {
        const int v = roots[idx];
        const int src = designee[v];
        dist_arr[src] = 0;
        sc.frontier.assign(1, src);
        sc.touched.assign(1, src);
        int ecc = 0;
        std::int64_t msgs = 0;
        while (!sc.frontier.empty()) {
          sc.nxt.clear();
          for (int u : sc.frontier) {
            for (int w2 : g.neighbors(u)) {
              if (label[w2] != v) continue;
              ++msgs;  // the BFS wave crosses directed edge (u, w2) once
              if (dist_arr[w2] < 0) {
                dist_arr[w2] = dist_arr[u] + 1;
                ecc = dist_arr[w2];
                sc.nxt.push_back(w2);
                sc.touched.push_back(w2);
              }
            }
          }
          std::swap(sc.frontier, sc.nxt);
        }
        // Convergecast of the measured eccentricity along the BFS tree.
        msgs += static_cast<std::int64_t>(sc.touched.size()) - 1;
        for (int u : sc.touched) dist_arr[u] = -1;
        ecc_of[idx] = ecc;
        bfs_msgs[idx] = msgs;
      };
      if (pool == nullptr || pool->threads() == 1) {
        for (std::size_t i = 0; i < roots.size(); ++i) {
          bfs_cluster(i, scratch[0], dist);
        }
      } else {
        pool->run(static_cast<int>(roots.size()), [&](int t, int worker) {
          bfs_cluster(static_cast<std::size_t>(t),
                      scratch[static_cast<std::size_t>(worker)], dist);
        });
      }
      for (std::size_t i = 0; i < roots.size(); ++i) {
        ecc_est[roots[i]] = ecc_of[i];
        max_ecc = std::max(max_ecc, ecc_of[i]);
        sweep_msgs += bfs_msgs[i];
      }
    }
    // A CONGEST node of the cluster graph is a whole cluster: acting as one
    // (electing the pick, spreading the color, re-measuring the center's
    // eccentricity) costs a sweep to the post-merge BFS depth per cluster,
    // in parallel across clusters, plus one label-announcement round.
    // Clusters are vertex-disjoint, so no directed edge carries more than
    // one message in any sweep round.
    scope.charge("merge + ecc re-measure", 1 + 2 * max_ecc, sweep_msgs,
                 sweep_msgs > 0 ? 1 : 0);
  }

  out.ecc_cap_final = cap;
  out.cut_edges = cut;
  out.clustering.cluster = std::move(label);
  out.clustering.k = n;
  out.clustering.compact();
  out.quality = evaluate_clustering(g, out.clustering, params.eval);
  return out;
}

}  // namespace mfd::decomp
