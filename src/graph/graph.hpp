// CSR (compressed sparse row) undirected graph.
//
// Immutable after construction; every algorithm in the repo works on this
// representation. `from_edges` deduplicates and drops self-loops, so
// generators can emit edges carelessly and still produce a simple graph.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <queue>
#include <string>
#include <utility>
#include <vector>

namespace mfd {

class Graph {
 public:
  Graph() = default;

  /// Build from an undirected edge list. Self-loops and out-of-range
  /// endpoints are dropped, duplicate edges (in either orientation) are
  /// merged; negative n is treated as the empty graph.
  static Graph from_edges(int n, std::vector<std::pair<int, int>> edges) {
    n = std::max(n, 0);
    for (auto& [u, v] : edges) {
      if (u > v) std::swap(u, v);
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    edges.erase(std::remove_if(edges.begin(), edges.end(),
                               [n](const auto& e) {
                                 return e.first == e.second || e.first < 0 ||
                                        e.second >= n;
                               }),
                edges.end());

    Graph g;
    g.n_ = n;
    g.m_ = static_cast<std::int64_t>(edges.size());
    g.offset_.assign(n + 1, 0);
    for (const auto& [u, v] : edges) {
      ++g.offset_[u + 1];
      ++g.offset_[v + 1];
    }
    for (int i = 0; i < n; ++i) g.offset_[i + 1] += g.offset_[i];
    g.adj_.resize(2 * edges.size());
    std::vector<std::int64_t> cursor(g.offset_.begin(), g.offset_.end() - 1);
    for (const auto& [u, v] : edges) {
      g.adj_[cursor[u]++] = v;
      g.adj_[cursor[v]++] = u;
    }
    for (int v = 0; v < n; ++v) {
      std::sort(g.adj_.begin() + g.offset_[v], g.adj_.begin() + g.offset_[v + 1]);
    }
    return g;
  }

  int n() const { return n_; }
  std::int64_t m() const { return m_; }

  int degree(int v) const {
    return static_cast<int>(offset_[v + 1] - offset_[v]);
  }

  /// Neighbors of v, usable as `for (int w : g.neighbors(v))`.
  struct NeighborRange {
    const int* first;
    const int* last;
    const int* begin() const { return first; }
    const int* end() const { return last; }
    int size() const { return static_cast<int>(last - first); }
  };

  NeighborRange neighbors(int v) const {
    return {adj_.data() + offset_[v], adj_.data() + offset_[v + 1]};
  }

  bool has_edge(int u, int v) const {
    const auto nb = neighbors(u);
    return std::binary_search(nb.begin(), nb.end(), v);
  }

  /// Slot of the directed arc u->v in the CSR adjacency array, or -1 when
  /// the edge is absent. Slots are dense in [0, 2m) and laid out in
  /// (source, sorted-neighbor) order, so per-edge state can live in a flat
  /// array indexed by arc slot instead of a hash map keyed by endpoint pair
  /// — the certify replay paths index congestion counters this way.
  std::int64_t arc_index(int u, int v) const {
    const int* lo = adj_.data() + offset_[u];
    const int* hi = adj_.data() + offset_[u + 1];
    const int* it = std::lower_bound(lo, hi, v);
    if (it == hi || *it != v) return -1;
    return offset_[u] + (it - lo);
  }

  int max_degree() const {
    int d = 0;
    for (int v = 0; v < n_; ++v) d = std::max(d, degree(v));
    return d;
  }

  /// Recover the undirected edge list (u < v, sorted).
  std::vector<std::pair<int, int>> edges() const {
    std::vector<std::pair<int, int>> out;
    out.reserve(static_cast<std::size_t>(m_));
    for (int u = 0; u < n_; ++u) {
      for (int v : neighbors(u)) {
        if (u < v) out.emplace_back(u, v);
      }
    }
    return out;
  }

  std::string summary() const {
    const double avg = n_ == 0 ? 0.0 : 2.0 * static_cast<double>(m_) / n_;
    char buf[128];
    std::snprintf(buf, sizeof(buf), "graph: n=%d  m=%lld  avg_deg=%.2f  max_deg=%d",
                  n_, static_cast<long long>(m_), avg, max_degree());
    return buf;
  }

 private:
  int n_ = 0;
  std::int64_t m_ = 0;
  std::vector<std::int64_t> offset_;
  std::vector<int> adj_;
};

/// BFS distances from `src`; unreachable vertices get -1.
inline std::vector<int> bfs_distances(const Graph& g, int src) {
  std::vector<int> dist(g.n(), -1);
  std::queue<int> q;
  dist[src] = 0;
  q.push(src);
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    for (int w : g.neighbors(u)) {
      if (dist[w] < 0) {
        dist[w] = dist[u] + 1;
        q.push(w);
      }
    }
  }
  return dist;
}

/// Connected-component labels in [0, k); returns k via out-param-free pair.
inline std::pair<std::vector<int>, int> connected_components(const Graph& g) {
  std::vector<int> comp(g.n(), -1);
  int k = 0;
  std::vector<int> stack;
  for (int s = 0; s < g.n(); ++s) {
    if (comp[s] >= 0) continue;
    comp[s] = k;
    stack.push_back(s);
    while (!stack.empty()) {
      const int u = stack.back();
      stack.pop_back();
      for (int w : g.neighbors(u)) {
        if (comp[w] < 0) {
          comp[w] = k;
          stack.push_back(w);
        }
      }
    }
    ++k;
  }
  return {std::move(comp), k};
}

inline bool is_connected(const Graph& g) {
  if (g.n() == 0) return true;
  const auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(), [](int d) { return d < 0; });
}

}  // namespace mfd
