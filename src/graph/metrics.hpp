// Cut/conductance metrics and the spectral sweep machinery behind the
// expander layer.
//
// Conductance here is the standard phi(S) = cut(S) / min(vol S, vol V\S) with
// vol = sum of degrees. Sparse cuts are searched with the classic recipe:
// power-iterate the lazy random-walk matrix P = (I + D^-1 A)/2 against the
// stationary (degree) component to approximate the Fiedler direction, then
// take the best prefix of the sorted embedding (sweep cut). The sweep minimum
// is what expander_split uses as a well-connectedness certificate: a part is
// accepted once no sweep cut sparser than the target exists.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "graph/ops.hpp"

namespace mfd {

inline std::int64_t graph_volume(const Graph& g) { return 2 * g.m(); }

/// phi(S) for the vertex set flagged by `in_side` (1 = in S). Returns 2.0 for
/// trivial sides (S empty or S = V) so callers can minimize safely.
inline double cut_conductance(const Graph& g, const std::vector<char>& in_side) {
  std::int64_t cut = 0, vol_s = 0;
  for (int u = 0; u < g.n(); ++u) {
    if (!in_side[u]) continue;
    vol_s += g.degree(u);
    for (int w : g.neighbors(u)) {
      if (!in_side[w]) ++cut;
    }
  }
  const std::int64_t vol_rest = graph_volume(g) - vol_s;
  const std::int64_t denom = std::min(vol_s, vol_rest);
  if (denom <= 0) return 2.0;
  return static_cast<double>(cut) / static_cast<double>(denom);
}

struct SweepCut {
  double conductance = 2.0;  // best (minimum) phi over the sweep prefixes
  std::int64_t cut_edges = 0;
  std::vector<char> in_side;  // the minimizing side S (1 = in S)
};

/// Best prefix cut of the vertices sorted by `score` (ties by id). O(m + n
/// log n); both trivial prefixes are excluded.
inline SweepCut sweep_min_cut(const Graph& g, const std::vector<double>& score) {
  SweepCut best;
  const int n = g.n();
  if (n < 2) return best;
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&score](int a, int b) {
    return score[a] != score[b] ? score[a] < score[b] : a < b;
  });
  std::vector<char> in_side(n, 0);
  const std::int64_t vol_total = graph_volume(g);
  std::int64_t cut = 0, vol_s = 0;
  int best_prefix = -1;
  for (int i = 0; i + 1 < n; ++i) {
    const int u = order[i];
    in_side[u] = 1;
    vol_s += g.degree(u);
    for (int w : g.neighbors(u)) cut += in_side[w] ? -1 : 1;
    const std::int64_t denom = std::min(vol_s, vol_total - vol_s);
    if (denom <= 0) continue;
    const double phi = static_cast<double>(cut) / static_cast<double>(denom);
    if (phi < best.conductance) {
      best.conductance = phi;
      best.cut_edges = cut;
      best_prefix = i;
    }
  }
  if (best_prefix >= 0) {
    best.in_side.assign(n, 0);
    for (int i = 0; i <= best_prefix; ++i) best.in_side[order[i]] = 1;
  }
  return best;
}

/// Deterministic approximate Fiedler embedding: `iters` rounds of the lazy
/// walk P = (I + D^-1 A)/2 applied to a hash-seeded start vector, with the
/// stationary (degree) component projected out every round so the iterate
/// converges to the slowest non-trivial mode. Isolated vertices get score 0.
inline std::vector<double> approx_fiedler(const Graph& g, std::uint64_t seed,
                                          int iters = 40) {
  const int n = g.n();
  std::vector<double> x(n), next(n);
  for (int v = 0; v < n; ++v) {
    // splitmix64 of (seed, v) -> (-1, 1); no Rng state so callers stay pure.
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(v) + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    x[v] = static_cast<double>(z >> 11) * 0x1.0p-53 * 2.0 - 1.0;
  }
  const double vol = static_cast<double>(std::max<std::int64_t>(graph_volume(g), 1));
  for (int it = 0; it < iters; ++it) {
    // Project out the stationary component: x <- x - (<x, d>/vol) * 1.
    double dot = 0.0;
    for (int v = 0; v < n; ++v) dot += x[v] * g.degree(v);
    const double shift = dot / vol;
    double norm = 0.0;
    for (int v = 0; v < n; ++v) {
      x[v] -= shift;
      norm += x[v] * x[v];
    }
    if (norm < 1e-300) break;
    const double inv = 1.0 / std::sqrt(norm);
    for (int v = 0; v < n; ++v) x[v] *= inv;
    for (int v = 0; v < n; ++v) {
      double acc = 0.0;
      for (int w : g.neighbors(v)) acc += x[w];
      const int d = g.degree(v);
      next[v] = d == 0 ? 0.0 : 0.5 * x[v] + 0.5 * acc / d;
    }
    x.swap(next);
  }
  return x;
}

// ---------------------------------------------------------------------------
// Recursive sweep partition — the shared engine behind expander_split and the
// CS22 top-down baseline: peel connected components, probe each subproblem
// with approx_fiedler sweeps, and split along any sweep cut sparser than
// phi_target until none is found (or the depth cap bites). Each final part
// carries the sparsest sweep conductance its failed search produced — the
// "no sparse cut found" well-connectedness certificate.

struct SweepPartitionParams {
  double phi_target = 0.10;
  int power_iters = 40;
  int probes = 1;    // Fiedler starts per subproblem; best sweep wins
  int max_depth = 30;
  int min_part = 3;  // parts at or below this size are never swept
};

struct SweepPart {
  std::vector<int> verts;
  double cert = 1.0;  // sparsest sweep cut found inside (1.0 if never swept)
};

struct SweepPartitionResult {
  std::vector<SweepPart> parts;
  int levels = 0;  // deepest recursion level that ran a sweep
};

// ---------------------------------------------------------------------------
// Conductance certification for decomposition clusters: exact minimum over
// all cuts for tiny graphs (2^(n-1) subsets), the Cheeger bound λ2/2
// otherwise, with λ2 of the normalized Laplacian estimated as the Rayleigh
// quotient of the approx_fiedler iterate. The Rayleigh quotient approaches
// λ2 from above, so on large clusters this is an *estimate* of the Cheeger
// lower bound, not a certified one. expander/cut_matching.hpp wires the
// third tier — a certified lower bound from an embedded cut-matching game —
// on top of this primitive (certified_phi); the PhiVerdict enum covers all
// tiers so every consumer can surface which guarantee it actually holds.

/// Which guarantee a PhiCertificate carries. Degenerate inputs get explicit
/// verdicts (enforced by tests/test_fuzz.cpp::fuzz_phi_degenerate):
///   * isolated (degree-0) vertices are stripped first — they contribute
///     neither volume nor cut, so zero-volume sides never enter the minimum;
///   * kTrivial — at most one vertex remains after stripping (empty graph,
///     single vertex, edgeless cluster): phi = 1 by convention, exact;
///   * kDisconnected — at least two edge-bearing components remain: the
///     component cut has zero crossing edges and positive volume on both
///     sides, so phi = 0, exact;
///   * kExact — brute-force minimum over all 2^(n-1) cuts (n <= exact_cap);
///   * kCutMatching — certified lower bound replayed from an embedded
///     matching union (set by expander::certified_phi, never here);
///   * kCheeger — Rayleigh-quotient λ2/2 estimate. NOT a bound: the only
///     verdict for which `phi` may exceed the true conductance.
enum class PhiVerdict { kTrivial, kDisconnected, kExact, kCutMatching, kCheeger };

struct PhiCertificate {
  double phi = 1.0;   // conductance lower bound, or estimate under kCheeger
  bool exact = false; // phi is the exact minimum (kTrivial/kDisconnected/kExact)
  PhiVerdict verdict = PhiVerdict::kTrivial;

  /// True when phi is a sound lower bound on the conductance (every verdict
  /// except the Cheeger estimate).
  bool certified_lower() const { return verdict != PhiVerdict::kCheeger; }
};

/// Vertices of positive degree — the support conductance actually ranges
/// over. Shared by phi_certificate and the cut-matching tier so both tiers
/// agree on what the degenerate inputs mean.
inline std::vector<int> non_isolated_vertices(const Graph& g) {
  std::vector<int> verts;
  for (int v = 0; v < g.n(); ++v) {
    if (g.degree(v) > 0) verts.push_back(v);
  }
  return verts;
}

/// Conductance certificate for a cluster. `exact_cap` selects the exact
/// enumeration path for graphs of at most that many vertices — it DEFAULTS
/// TO 12 and is HARD-CLAMPED TO 20 inside the function (the exact path
/// enumerates 2^(n-1) cuts, so a generous knob must neither hang nor
/// overflow the 32-bit subset mask): passing exact_cap = 64 still means
/// "exact at <= 20 vertices, Cheeger estimate above". Above the effective
/// cap, phi is the λ2/2 Cheeger value with λ2 estimated as the Rayleigh
/// quotient of `power_iters` approx_fiedler iterations — an estimate that
/// approaches λ2 from above, i.e. not a certified lower bound (verdict
/// kCheeger, exact = false). Degenerate inputs (isolated vertices,
/// disconnected clusters, edgeless graphs) get the explicit verdicts
/// documented on PhiVerdict instead of the historical implicit behavior.
inline PhiCertificate phi_certificate(const Graph& g, int exact_cap = 12,
                                      int power_iters = 60) {
  PhiCertificate out;
  // Zero-volume sides cannot enter the conductance minimum, so isolated
  // vertices are invisible to it: certify the positive-degree core instead.
  const std::vector<int> support = non_isolated_vertices(g);
  if (support.size() <= 1) {
    out.exact = true;
    out.verdict = PhiVerdict::kTrivial;
    return out;  // trivially well-connected (phi = 1 by convention)
  }
  const InducedSubgraph core = induced_subgraph(g, support);
  if (!is_connected(core.graph)) {
    // Two edge-bearing components: the component cut is crossed by no edge
    // and both sides carry volume, so the minimum conductance is exactly 0.
    out.phi = 0.0;
    out.exact = true;
    out.verdict = PhiVerdict::kDisconnected;
    return out;
  }
  const int n = core.graph.n();
  // The exact path enumerates 2^(n-1) subsets: clamp the caller's cap so a
  // generous knob can neither hang nor overflow the 32-bit mask below.
  exact_cap = std::min(exact_cap, 20);
  if (n <= exact_cap) {
    out.exact = true;
    out.verdict = PhiVerdict::kExact;
    std::vector<char> side(n, 0);
    double best = 1.0;
    for (std::uint32_t mask = 1; mask < (1u << (n - 1)); ++mask) {
      for (int v = 0; v < n - 1; ++v) side[v] = (mask >> v) & 1u;
      best = std::min(best, cut_conductance(core.graph, side));
    }
    out.phi = best;
    return out;
  }
  const std::vector<double> x = approx_fiedler(core.graph, 0x517cc1b727220a95ULL,
                                               power_iters);
  double num = 0.0, den = 0.0;
  for (int u = 0; u < n; ++u) {
    den += core.graph.degree(u) * x[u] * x[u];
    for (int w : core.graph.neighbors(u)) {
      if (u < w) num += (x[u] - x[w]) * (x[u] - x[w]);
    }
  }
  const double lambda2 = den <= 1e-300 ? 2.0 : num / den;
  out.phi = std::min(1.0, lambda2 / 2.0);
  out.verdict = PhiVerdict::kCheeger;
  return out;
}

inline SweepPartitionResult sweep_partition(const Graph& g, std::uint64_t seed,
                                            SweepPartitionParams p = {}) {
  SweepPartitionResult out;
  const int n = g.n();
  struct Item {
    std::vector<int> verts;
    int depth;
  };
  std::vector<Item> stack;
  {
    std::vector<int> all(n);
    std::iota(all.begin(), all.end(), 0);
    stack.push_back({std::move(all), 0});
  }
  std::uint64_t probe = 0;  // distinct Fiedler start per sweep
  while (!stack.empty()) {
    Item item = std::move(stack.back());
    stack.pop_back();
    if (item.verts.empty()) continue;
    const InducedSubgraph sub = induced_subgraph(g, item.verts);
    const auto [comp, kc] = connected_components(sub.graph);
    if (kc > 1) {
      std::vector<std::vector<int>> comps(kc);
      for (int i = 0; i < sub.graph.n(); ++i) {
        comps[comp[i]].push_back(sub.to_parent[i]);
      }
      for (auto& c : comps) stack.push_back({std::move(c), item.depth});
      continue;
    }
    double cert = 1.0;
    if (static_cast<int>(item.verts.size()) > p.min_part) {
      SweepCut sweep;
      for (int r = 0; r < std::max(p.probes, 1); ++r) {
        const SweepCut candidate = sweep_min_cut(
            sub.graph, approx_fiedler(sub.graph,
                                      seed + 0x9e3779b97f4a7c15ULL * ++probe,
                                      p.power_iters));
        if (candidate.conductance < sweep.conductance) sweep = candidate;
      }
      out.levels = std::max(out.levels, item.depth + 1);
      if (sweep.conductance < p.phi_target && !sweep.in_side.empty() &&
          item.depth < p.max_depth) {
        std::vector<int> side, rest;
        for (int i = 0; i < sub.graph.n(); ++i) {
          (sweep.in_side[i] ? side : rest).push_back(sub.to_parent[i]);
        }
        stack.push_back({std::move(side), item.depth + 1});
        stack.push_back({std::move(rest), item.depth + 1});
        continue;
      }
      cert = std::min(sweep.conductance, 1.0);
    }
    out.parts.push_back({std::move(item.verts), cert});
  }
  return out;
}

}  // namespace mfd
