// Small graph constructions and surgery shared by the expander layer and the
// routing benches: apex addition (wheel-like minor-free expanders), cliques,
// random regular graphs (pairing model), and induced-subgraph extraction.
#pragma once

#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace mfd {

inline Graph complete_graph(int n) {
  std::vector<std::pair<int, int>> edges;
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  return Graph::from_edges(n, std::move(edges));
}

/// Add one apex vertex (index g.n()) adjacent to every existing vertex.
/// add_apex(cycle_graph(k)) is the wheel W_k — the canonical minor-free
/// expander family the paper's §2 routing lemmas are exercised on.
inline Graph add_apex(const Graph& g) {
  std::vector<std::pair<int, int>> edges = g.edges();
  const int apex = g.n();
  for (int v = 0; v < g.n(); ++v) edges.emplace_back(v, apex);
  return Graph::from_edges(g.n() + 1, std::move(edges));
}

/// Random d-regular simple connected graph via the pairing model: shuffle
/// n*d edge stubs, pair them up, and retry whole drawings that produce
/// self-loops, parallel edges, or a disconnected result. Falls back to the
/// deterministic circulant C_n(1..d/2) if the rejection loop runs dry (only
/// relevant for degenerate n, d). Requires n*d even and d < n.
inline Graph random_regular(int n, int d, Rng& rng) {
  if (n <= 1 || d <= 0) return Graph::from_edges(n, {});
  for (int attempt = 0; attempt < 200; ++attempt) {
    std::vector<int> stubs;
    stubs.reserve(static_cast<std::size_t>(n) * d);
    for (int v = 0; v < n; ++v) {
      for (int i = 0; i < d; ++i) stubs.push_back(v);
    }
    for (int i = static_cast<int>(stubs.size()) - 1; i > 0; --i) {
      std::swap(stubs[i], stubs[rng.uniform_int(0, i)]);
    }
    std::vector<std::pair<int, int>> edges;
    bool ok = true;
    for (std::size_t i = 0; i + 1 < stubs.size() && ok; i += 2) {
      if (stubs[i] == stubs[i + 1]) ok = false;
      edges.emplace_back(stubs[i], stubs[i + 1]);
    }
    if (!ok) continue;
    Graph g = Graph::from_edges(n, std::move(edges));
    // from_edges merges parallel stub pairs; a merge shows up as m < nd/2.
    if (2 * g.m() != static_cast<std::int64_t>(n) * d) continue;
    if (!is_connected(g)) continue;
    return g;
  }
  // Circulant fallback: chords v ± 1..floor(d/2); odd d (which forces n
  // even) adds the antipodal perfect matching v ~ v + n/2 for the last
  // degree unit. from_edges dedupes, so the j == n/2 chord and the matching
  // never double-count.
  std::vector<std::pair<int, int>> edges;
  for (int v = 0; v < n; ++v) {
    for (int j = 1; j <= d / 2 && j < n; ++j) edges.emplace_back(v, (v + j) % n);
    if (d % 2 == 1 && n % 2 == 0) edges.emplace_back(v, (v + n / 2) % n);
  }
  return Graph::from_edges(n, std::move(edges));
}

/// Star K_{1,n-1}: vertex 0 adjacent to every other — the max-degree spike
/// that breaks linear-forest membership in the property-testing bench.
inline Graph star_graph(int n) {
  std::vector<std::pair<int, int>> edges;
  for (int v = 1; v < n; ++v) edges.emplace_back(0, v);
  return Graph::from_edges(n, std::move(edges));
}

/// Chain of `k` disjoint q-cliques, consecutive cliques joined by one bridge
/// edge. Contains K_q as a subgraph, so it is the canonical ε-far negative
/// instance for any family excluding a K_q minor (q=6 planar, q=5
/// outerplanar, q=4 cactus, q=3 forest) while staying sparse and connected.
inline Graph clique_chain(int k, int q) {
  std::vector<std::pair<int, int>> edges;
  for (int c = 0; c < k; ++c) {
    const int base = c * q;
    for (int u = 0; u < q; ++u) {
      for (int v = u + 1; v < q; ++v) edges.emplace_back(base + u, base + v);
    }
    if (c + 1 < k) edges.emplace_back(base + q - 1, base + q);
  }
  return Graph::from_edges(k * q, std::move(edges));
}

/// Disjoint union: b's vertices are shifted by a.n().
inline Graph disjoint_union(const Graph& a, const Graph& b) {
  std::vector<std::pair<int, int>> edges = a.edges();
  for (const auto& [u, v] : b.edges()) {
    edges.emplace_back(u + a.n(), v + a.n());
  }
  return Graph::from_edges(a.n() + b.n(), std::move(edges));
}

/// Induced subgraph on `verts` with dense local ids; to_parent[i] maps local
/// vertex i back to its id in the parent graph.
struct InducedSubgraph {
  Graph graph;
  std::vector<int> to_parent;
};

inline InducedSubgraph induced_subgraph(const Graph& g,
                                        const std::vector<int>& verts) {
  InducedSubgraph out;
  out.to_parent = verts;
  std::vector<int> local(g.n(), -1);
  for (std::size_t i = 0; i < verts.size(); ++i) {
    local[verts[i]] = static_cast<int>(i);
  }
  std::vector<std::pair<int, int>> edges;
  for (int u : verts) {
    for (int w : g.neighbors(u)) {
      if (u < w && local[w] >= 0) edges.emplace_back(local[u], local[w]);
    }
  }
  out.graph =
      Graph::from_edges(static_cast<int>(verts.size()), std::move(edges));
  return out;
}

}  // namespace mfd
