// Planarity test: Euler bound + the left-right (LR) criterion.
//
// is_planar runs the linear-time left-right planarity test of de Fraysseix
// and Rosenstiehl in Brandes' formulation ("The left-right planarity
// test" — the same algorithm behind networkx.check_planarity): a DFS
// orientation with lowpoint/nesting-depth bookkeeping, then a second DFS
// maintaining a stack of conflict pairs of back-edge intervals — the graph
// is planar iff no constraint ever forces a back edge onto both sides of
// its fundamental cycle. Non-planarity carries the obstruction flavor that
// fired: the m > 3n - 6 Euler bound, or an LR conflict (which witnesses a
// K5 / K3,3 subdivision). Both DFS passes are iterative, so deep instances
// (long paths, large triangulations) cannot overflow the call stack.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace mfd {

enum class PlanarityVerdict {
  kPlanar,
  kEulerBound,  // m > 3n - 6: density alone forces a Kuratowski subgraph
  kLrConflict,  // left-right constraint conflict: K5/K3,3 subdivision
};

struct PlanarityResult {
  bool planar = true;
  PlanarityVerdict verdict = PlanarityVerdict::kPlanar;
};

namespace planarity_detail {

constexpr int kNone = -1;

struct Interval {
  int low = kNone;  // oriented-edge ids; kNone = unset
  int high = kNone;
  bool empty() const { return low == kNone && high == kNone; }
};

struct ConflictPair {
  Interval l, r;
};

class LrTester {
 public:
  explicit LrTester(const Graph& g) : g_(g), n_(g.n()) {}

  bool planar() {
    build_adjacency();
    height_.assign(n_, kNone);
    parent_edge_.assign(n_, kNone);
    oriented_.assign(n_, {});
    for (int root = 0; root < n_; ++root) {
      if (height_[root] == kNone) {
        height_[root] = 0;
        dfs_orient(root);
      }
    }
    for (int v = 0; v < n_; ++v) {
      std::stable_sort(
          oriented_[v].begin(), oriented_[v].end(),
          [this](int a, int b) { return nesting_[a] < nesting_[b]; });
    }
    const int me = static_cast<int>(src_.size());
    ref_.assign(me, kNone);
    lowpt_edge_.assign(me, kNone);
    stack_bottom_.assign(me, 0);
    for (int root = 0; root < n_; ++root) {
      if (parent_edge_[root] == kNone && height_[root] == 0) {
        if (!dfs_test(root)) return false;
      }
    }
    return true;
  }

 private:
  void build_adjacency() {
    const auto edges = g_.edges();
    used_.assign(edges.size(), 0);
    adj_.assign(n_, {});
    for (std::size_t id = 0; id < edges.size(); ++id) {
      adj_[edges[id].first].push_back({edges[id].second, static_cast<int>(id)});
      adj_[edges[id].second].push_back({edges[id].first, static_cast<int>(id)});
    }
  }

  int new_oriented_edge(int v, int w) {
    src_.push_back(v);
    dst_.push_back(w);
    lowpt_.push_back(height_[v]);
    lowpt2_.push_back(height_[v]);
    nesting_.push_back(0);
    oriented_[v].push_back(static_cast<int>(src_.size()) - 1);
    return static_cast<int>(src_.size()) - 1;
  }

  // Nesting depth of a finished oriented edge + lowpoint merge into the
  // parent edge of its source.
  void finish_edge(int e) {
    const int v = src_[e];
    nesting_[e] = 2 * lowpt_[e] + (lowpt2_[e] < height_[v] ? 1 : 0);
    const int pe = parent_edge_[v];
    if (pe == kNone) return;
    if (lowpt_[e] < lowpt_[pe]) {
      lowpt2_[pe] = std::min(lowpt_[pe], lowpt2_[e]);
      lowpt_[pe] = lowpt_[e];
    } else if (lowpt_[e] > lowpt_[pe]) {
      lowpt2_[pe] = std::min(lowpt2_[pe], lowpt_[e]);
    } else {
      lowpt2_[pe] = std::min(lowpt2_[pe], lowpt2_[e]);
    }
  }

  void dfs_orient(int root) {
    struct Frame {
      int v;
      std::size_t i = 0;       // next adjacency slot
      int pending = kNone;     // tree edge whose subtree just finished
    };
    std::vector<Frame> stack = {{root, 0, kNone}};
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.pending != kNone) {
        finish_edge(f.pending);
        f.pending = kNone;
      }
      bool descended = false;
      while (f.i < adj_[f.v].size()) {
        const auto [w, id] = adj_[f.v][f.i++];
        if (used_[id]) continue;
        used_[id] = 1;
        const int e = new_oriented_edge(f.v, w);
        if (height_[w] == kNone) {  // tree edge
          parent_edge_[w] = e;
          height_[w] = height_[f.v] + 1;
          f.pending = e;
          stack.push_back({w, 0, kNone});
          descended = true;
          break;
        }
        lowpt_[e] = height_[w];  // back edge
        finish_edge(e);
      }
      if (!descended && stack.back().i >= adj_[stack.back().v].size() &&
          stack.back().pending == kNone) {
        stack.pop_back();
      }
    }
  }

  bool conflicting(const Interval& i, int b) const {
    return !i.empty() && lowpt_[i.high] > lowpt_[b];
  }

  int lowest(const ConflictPair& p) const {
    if (p.l.empty() && p.r.empty()) return std::numeric_limits<int>::max();
    if (p.l.empty()) return lowpt_[p.r.low];
    if (p.r.empty()) return lowpt_[p.l.low];
    return std::min(lowpt_[p.l.low], lowpt_[p.r.low]);
  }

  void set_ref(int e, int target) {
    if (e != kNone) ref_[e] = target;
  }

  bool add_constraints(int ei, int e) {
    ConflictPair p;
    // Merge the return edges of ei into p.r.
    do {
      if (s_.empty()) break;  // defensive; the LR invariant forbids this
      ConflictPair q = s_.back();
      s_.pop_back();
      if (!q.l.empty()) std::swap(q.l, q.r);
      if (!q.l.empty()) return false;  // not planar
      if (lowpt_[q.r.low] > lowpt_[e]) {
        if (p.r.empty()) {
          p.r.high = q.r.high;
        } else {
          set_ref(p.r.low, q.r.high);
        }
        p.r.low = q.r.low;
      } else {
        set_ref(q.r.low, lowpt_edge_[e]);  // align
      }
    } while (static_cast<int>(s_.size()) > stack_bottom_[ei]);
    // Merge the conflicting return edges of earlier siblings into p.l.
    while (!s_.empty() &&
           (conflicting(s_.back().l, ei) || conflicting(s_.back().r, ei))) {
      ConflictPair q = s_.back();
      s_.pop_back();
      if (conflicting(q.r, ei)) std::swap(q.l, q.r);
      if (conflicting(q.r, ei)) return false;  // not planar
      set_ref(p.r.low, q.r.high);  // merge interval below lowpt(ei) into p.r
      if (q.r.low != kNone) p.r.low = q.r.low;
      if (p.l.empty()) {
        p.l.high = q.l.high;
      } else {
        set_ref(p.l.low, q.l.high);
      }
      p.l.low = q.l.low;
    }
    if (!(p.l.empty() && p.r.empty())) s_.push_back(p);
    return true;
  }

  void trim_back_edges(int u) {
    // Drop entire conflict pairs returning exactly to u.
    while (!s_.empty() && lowest(s_.back()) == height_[u]) s_.pop_back();
    if (s_.empty()) return;
    // One more pair may need partial trimming.
    ConflictPair p = s_.back();
    s_.pop_back();
    while (p.l.high != kNone && dst_[p.l.high] == u) p.l.high = ref_[p.l.high];
    if (p.l.high == kNone && p.l.low != kNone) {  // just emptied
      set_ref(p.l.low, p.r.low);
      p.l.low = kNone;
    }
    while (p.r.high != kNone && dst_[p.r.high] == u) p.r.high = ref_[p.r.high];
    if (p.r.high == kNone && p.r.low != kNone) {
      set_ref(p.r.low, p.l.low);
      p.r.low = kNone;
    }
    s_.push_back(p);
  }

  // Constraint bits of edge ei at its source v, run once ei's subtree (or
  // the back edge itself) is done.
  bool integrate_edge(int ei, int v) {
    if (lowpt_[ei] >= height_[v]) return true;  // no return edge
    const int pe = parent_edge_[v];
    if (ei == oriented_[v].front()) {
      if (pe != kNone) lowpt_edge_[pe] = lowpt_edge_[ei];
      return true;
    }
    return add_constraints(ei, pe);
  }

  bool dfs_test(int root) {
    struct Frame {
      int v;
      std::size_t i = 0;
      int pending = kNone;
    };
    std::vector<Frame> stack = {{root, 0, kNone}};
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.pending != kNone) {
        const int done = f.pending;
        f.pending = kNone;
        if (!integrate_edge(done, f.v)) return false;
      }
      bool descended = false;
      while (f.i < oriented_[f.v].size()) {
        const int ei = oriented_[f.v][f.i++];
        stack_bottom_[ei] = static_cast<int>(s_.size());
        if (parent_edge_[dst_[ei]] == ei) {  // tree edge
          f.pending = ei;
          stack.push_back({dst_[ei], 0, kNone});
          descended = true;
          break;
        }
        lowpt_edge_[ei] = ei;  // back edge
        s_.push_back({Interval{}, Interval{ei, ei}});
        if (!integrate_edge(ei, f.v)) return false;
      }
      if (descended) continue;
      if (f.i >= oriented_[f.v].size() && f.pending == kNone) {
        const int e = parent_edge_[f.v];
        if (e != kNone) {
          const int u = src_[e];
          trim_back_edges(u);
          if (lowpt_[e] < height_[u] && !s_.empty()) {
            // The side of e follows its highest return edge.
            const int hl = s_.back().l.high;
            const int hr = s_.back().r.high;
            if (hl != kNone && (hr == kNone || lowpt_[hl] > lowpt_[hr])) {
              ref_[e] = hl;
            } else {
              ref_[e] = hr;
            }
          }
        }
        stack.pop_back();
      }
    }
    return true;
  }

  const Graph& g_;
  int n_;
  std::vector<std::vector<std::pair<int, int>>> adj_;  // (neighbor, edge id)
  std::vector<char> used_;
  std::vector<int> height_, parent_edge_;
  std::vector<int> src_, dst_, lowpt_, lowpt2_, nesting_;  // per oriented edge
  std::vector<std::vector<int>> oriented_;  // outgoing oriented edges of v
  std::vector<int> ref_, lowpt_edge_, stack_bottom_;
  std::vector<ConflictPair> s_;
};

}  // namespace planarity_detail

inline PlanarityResult check_planarity(const Graph& g) {
  PlanarityResult out;
  if (g.n() >= 3 && g.m() > 3 * static_cast<std::int64_t>(g.n()) - 6) {
    out.planar = false;
    out.verdict = PlanarityVerdict::kEulerBound;
    return out;
  }
  if (g.n() < 5) return out;  // K5 needs 5 vertices, K3,3 needs 6
  planarity_detail::LrTester tester(g);
  if (!tester.planar()) {
    out.planar = false;
    out.verdict = PlanarityVerdict::kLrConflict;
  }
  return out;
}

inline bool is_planar(const Graph& g) { return check_planarity(g).planar; }

}  // namespace mfd
