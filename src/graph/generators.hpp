// Generators for the H-minor-free graph families the paper's experiments
// sweep over (see bench/bench_common.hpp::make_family).
//
// All generators are deterministic given the Rng state, produce simple
// connected graphs, and hit the exact edge counts their family admits:
//   tree n-1, cycle n, grid 2rc-r-c, maximal outerplanar 2n-3,
//   maximal planar 3n-6, k-tree k(k+1)/2 + (n-k-1)k.
#pragma once

#include <array>
#include <cassert>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace mfd {

inline Graph path_graph(int n) {
  std::vector<std::pair<int, int>> edges;
  for (int v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  return Graph::from_edges(n, std::move(edges));
}

inline Graph cycle_graph(int n) {
  std::vector<std::pair<int, int>> edges;
  for (int v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  if (n >= 3) edges.emplace_back(n - 1, 0);
  return Graph::from_edges(n, std::move(edges));
}

/// rows x cols 4-neighbor grid; vertex (r, c) has index r*cols + c.
inline Graph grid_graph(int rows, int cols) {
  std::vector<std::pair<int, int>> edges;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const int v = r * cols + c;
      if (c + 1 < cols) edges.emplace_back(v, v + 1);
      if (r + 1 < rows) edges.emplace_back(v, v + cols);
    }
  }
  return Graph::from_edges(rows * cols, std::move(edges));
}

/// rows x cols 4-neighbor torus (grid with wraparound rows/columns); vertex
/// (r, c) has index r*cols + c. Needs rows, cols >= 3 to stay simple. Genus 1
/// (embeds on the torus, not the plane), hence K8-minor-free — the
/// non-planar H-minor-free family the scaling bench sweeps alongside
/// grid/planar.
inline Graph torus_graph(int rows, int cols) {
  assert(rows >= 3 && cols >= 3);
  std::vector<std::pair<int, int>> edges;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const int v = r * cols + c;
      edges.emplace_back(v, r * cols + (c + 1) % cols);
      edges.emplace_back(v, (r + 1) % rows * cols + c);
    }
  }
  return Graph::from_edges(rows * cols, std::move(edges));
}

/// Uniform random-attachment tree: vertex v attaches to a uniform earlier one.
inline Graph random_tree(int n, Rng& rng) {
  std::vector<std::pair<int, int>> edges;
  for (int v = 1; v < n; ++v) edges.emplace_back(rng.uniform_int(0, v - 1), v);
  return Graph::from_edges(n, std::move(edges));
}

/// Cactus: every edge lies on at most one simple cycle. Built by repeatedly
/// hanging either a pendant edge or a cycle (sharing one vertex) off the
/// existing graph.
inline Graph random_cactus(int n, Rng& rng) {
  std::vector<std::pair<int, int>> edges;
  int cur = 1;
  while (cur < n) {
    const int anchor = rng.uniform_int(0, cur - 1);
    const int remaining = n - cur;
    if (remaining >= 2 && rng.coin()) {
      // Attach a cycle of length L (uses L-1 new vertices).
      const int len = rng.uniform_int(3, std::min(6, remaining + 1));
      int prev = anchor;
      for (int i = 0; i < len - 1; ++i) {
        edges.emplace_back(prev, cur);
        prev = cur++;
      }
      edges.emplace_back(prev, anchor);
    } else {
      edges.emplace_back(anchor, cur++);
    }
  }
  return Graph::from_edges(n, std::move(edges));
}

/// Random planar triangulation with exactly 3n-6 edges (n >= 3): start from a
/// triangle and repeatedly insert a vertex into a uniformly random face,
/// connecting it to the face's three corners.
inline Graph random_maximal_planar(int n, Rng& rng) {
  if (n <= 2) return path_graph(n);
  std::vector<std::pair<int, int>> edges = {{0, 1}, {1, 2}, {0, 2}};
  // The outer face counts too: inserting into it is the planar embedding's
  // "other side" of the starting triangle.
  std::vector<std::array<int, 3>> faces = {{0, 1, 2}, {0, 1, 2}};
  for (int v = 3; v < n; ++v) {
    const int fi = rng.uniform_int(0, static_cast<int>(faces.size()) - 1);
    const std::array<int, 3> f = faces[fi];
    edges.emplace_back(f[0], v);
    edges.emplace_back(f[1], v);
    edges.emplace_back(f[2], v);
    faces[fi] = {f[0], f[1], v};
    faces.push_back({f[1], f[2], v});
    faces.push_back({f[0], f[2], v});
  }
  return Graph::from_edges(n, std::move(edges));
}

/// Connected planar subgraph with exactly m edges (n-1 <= m <= 3n-6): sample
/// a random triangulation, keep a random spanning tree, then add random
/// surviving edges until m.
inline Graph random_planar(int n, int m, Rng& rng) {
  const Graph tri = random_maximal_planar(n, rng);
  n = tri.n();  // defends against negative n (from_edges clamps it to 0)
  std::vector<std::pair<int, int>> pool = tri.edges();
  // Fisher-Yates shuffle.
  for (int i = static_cast<int>(pool.size()) - 1; i > 0; --i) {
    std::swap(pool[i], pool[rng.uniform_int(0, i)]);
  }
  std::vector<int> parent(n);
  for (int v = 0; v < n; ++v) parent[v] = v;
  const auto find = [&parent](int v) {
    while (parent[v] != v) v = parent[v] = parent[parent[v]];
    return v;
  };
  std::vector<std::pair<int, int>> keep, rest;
  for (const auto& [u, v] : pool) {
    const int ru = find(u), rv = find(v);
    if (ru != rv) {
      parent[ru] = rv;
      keep.push_back({u, v});
    } else {
      rest.push_back({u, v});
    }
  }
  for (std::size_t i = 0; i < rest.size() && static_cast<int>(keep.size()) < m;
       ++i) {
    keep.push_back(rest[i]);
  }
  return Graph::from_edges(n, std::move(keep));
}

/// Random maximal outerplanar graph (2n-3 edges, n >= 3): the n-cycle plus a
/// uniform recursive triangulation of its interior.
inline Graph random_maximal_outerplanar(int n, Rng& rng) {
  if (n <= 2) return path_graph(n);
  std::vector<std::pair<int, int>> edges;
  for (int v = 0; v < n; ++v) edges.emplace_back(v, (v + 1) % n);
  // Triangulate the polygon spanned by boundary vertices i..j (edge (i, j)
  // already present as base).
  std::vector<std::pair<int, int>> stack = {{0, n - 1}};
  while (!stack.empty()) {
    const auto [i, j] = stack.back();
    stack.pop_back();
    if (j - i < 2) continue;
    const int k = rng.uniform_int(i + 1, j - 1);
    if (k > i + 1) edges.emplace_back(i, k);
    if (k < j - 1) edges.emplace_back(k, j);
    stack.push_back({i, k});
    stack.push_back({k, j});
  }
  return Graph::from_edges(n, std::move(edges));
}

/// Random k-tree: start from a (k+1)-clique; each new vertex is joined to a
/// uniformly random existing k-clique. Treewidth exactly k.
inline Graph random_ktree(int n, int k, Rng& rng) {
  assert(n >= k + 1);
  std::vector<std::pair<int, int>> edges;
  std::vector<std::vector<int>> cliques;
  for (int u = 0; u <= k; ++u) {
    for (int v = u + 1; v <= k; ++v) edges.emplace_back(u, v);
  }
  for (int skip = 0; skip <= k; ++skip) {
    std::vector<int> c;
    for (int u = 0; u <= k; ++u) {
      if (u != skip) c.push_back(u);
    }
    cliques.push_back(std::move(c));
  }
  for (int v = k + 1; v < n; ++v) {
    const auto& base =
        cliques[rng.uniform_int(0, static_cast<int>(cliques.size()) - 1)];
    const std::vector<int> chosen = base;  // base may reallocate below
    for (int u : chosen) edges.emplace_back(u, v);
    for (int skip = 0; skip < k; ++skip) {
      std::vector<int> c;
      for (int i = 0; i < k; ++i) {
        if (i != skip) c.push_back(chosen[i]);
      }
      c.push_back(v);
      cliques.push_back(std::move(c));
    }
  }
  return Graph::from_edges(n, std::move(edges));
}

/// Random series-parallel graph (K4-minor-free, m <= 2n-3): grow from a
/// single edge by either subdividing a random edge (series) or attaching a
/// new 2-path in parallel with a random edge.
inline Graph random_series_parallel(int n, Rng& rng) {
  if (n <= 2) return path_graph(n);
  std::vector<std::pair<int, int>> edges = {{0, 1}};
  for (int v = 2; v < n; ++v) {
    const int ei = rng.uniform_int(0, static_cast<int>(edges.size()) - 1);
    const auto [a, b] = edges[ei];
    if (rng.coin()) {
      // Series: subdivide (a, b) into a-v-b.
      edges[ei] = {a, v};
      edges.emplace_back(v, b);
    } else {
      // Parallel: keep (a, b), add the 2-path a-v-b beside it.
      edges.emplace_back(a, v);
      edges.emplace_back(v, b);
    }
  }
  return Graph::from_edges(n, std::move(edges));
}

}  // namespace mfd
