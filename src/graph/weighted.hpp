// Weighted CSR graph for cluster graphs (heavy-stars contraction, §4).
//
// Same construction contract as Graph::from_edges — self-loops and
// out-of-range endpoints are dropped — except duplicate edges MERGE BY
// SUMMING their weights: a cluster graph's edge weight is the number (or
// total weight) of original edges between two clusters, so careless emission
// of one entry per original edge is the intended usage.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace mfd {

struct WeightedEdge {
  int u = 0;
  int v = 0;
  std::int64_t w = 1;
};

class WeightedGraph {
 public:
  WeightedGraph() = default;

  WeightedGraph(int n, std::vector<WeightedEdge> edges) {
    n_ = std::max(n, 0);
    for (auto& e : edges) {
      if (e.u > e.v) std::swap(e.u, e.v);
    }
    std::sort(edges.begin(), edges.end(), [](const auto& a, const auto& b) {
      return a.u != b.u ? a.u < b.u : a.v < b.v;
    });
    // Merge duplicates by summing, drop self-loops / out-of-range.
    for (const auto& e : edges) {
      if (e.u == e.v || e.u < 0 || e.v >= n_) continue;
      if (!edges_.empty() && edges_.back().u == e.u && edges_.back().v == e.v) {
        edges_.back().w += e.w;
      } else {
        edges_.push_back(e);
      }
    }
    offset_.assign(n_ + 1, 0);
    for (const auto& e : edges_) {
      ++offset_[e.u + 1];
      ++offset_[e.v + 1];
    }
    for (int i = 0; i < n_; ++i) offset_[i + 1] += offset_[i];
    arcs_.resize(2 * edges_.size());
    std::vector<std::int64_t> cursor(offset_.begin(), offset_.end() - 1);
    for (const auto& e : edges_) {
      arcs_[cursor[e.u]++] = {e.v, e.w};
      arcs_[cursor[e.v]++] = {e.u, e.w};
      total_weight_ += e.w;
    }
  }

  int n() const { return n_; }
  std::int64_t m() const { return static_cast<std::int64_t>(edges_.size()); }
  std::int64_t total_weight() const { return total_weight_; }

  struct Arc {
    int to;
    std::int64_t w;
  };

  struct ArcRange {
    const Arc* first;
    const Arc* last;
    const Arc* begin() const { return first; }
    const Arc* end() const { return last; }
    int size() const { return static_cast<int>(last - first); }
  };

  ArcRange arcs(int v) const {
    return {arcs_.data() + offset_[v], arcs_.data() + offset_[v + 1]};
  }

  int degree(int v) const {
    return static_cast<int>(offset_[v + 1] - offset_[v]);
  }

  /// Canonical merged edge list (u < v, sorted).
  const std::vector<WeightedEdge>& edges() const { return edges_; }

 private:
  int n_ = 0;
  std::int64_t total_weight_ = 0;
  std::vector<WeightedEdge> edges_;
  std::vector<std::int64_t> offset_;
  std::vector<Arc> arcs_;
};

}  // namespace mfd
