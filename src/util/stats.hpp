// Streaming statistics over doubles; used to average randomized runs, plus
// the latency-sample helpers the query-serving benches report from:
// nearest-rank percentiles (p50/p90/p99) and a fixed-bucket log2 histogram.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace mfd {

class Accumulator {
 public:
  void add(double x) {
    sum_ += x;
    ++count_;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

 private:
  double sum_ = 0.0;
  std::int64_t count_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Nearest-rank percentile over an ascending-sorted sample: the smallest
/// value such that at least p% of the sample is <= it. p is clamped to
/// [0, 100]; an empty sample yields 0.
inline double percentile_sorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  p = std::min(std::max(p, 0.0), 100.0);
  const double rank = std::ceil(p / 100.0 * static_cast<double>(sorted.size()));
  const std::size_t idx =
      static_cast<std::size_t>(std::max(rank, 1.0)) - 1;
  return sorted[std::min(idx, sorted.size() - 1)];
}

/// The latency columns every serving bench reports. Units are whatever the
/// caller sampled in (bench_route_serve samples nanoseconds).
struct LatencySummary {
  std::int64_t count = 0;
  double p50 = 0.0, p90 = 0.0, p99 = 0.0;
  double mean = 0.0, max = 0.0;
};

/// Sorts `samples` ascending in place and summarizes it. Empty input yields
/// an all-zero summary.
inline LatencySummary summarize_latency(std::vector<double>& samples) {
  LatencySummary out;
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  out.count = static_cast<std::int64_t>(samples.size());
  out.p50 = percentile_sorted(samples, 50.0);
  out.p90 = percentile_sorted(samples, 90.0);
  out.p99 = percentile_sorted(samples, 99.0);
  double sum = 0.0;
  for (double v : samples) sum += v;
  out.mean = sum / static_cast<double>(samples.size());
  out.max = samples.back();
  return out;
}

/// Fixed-bucket log2 histogram. Bucket 0 counts values < 1 (including
/// non-positive ones); bucket i >= 1 counts values in [2^(i-1), 2^i); values
/// at or beyond the top bucket's range clamp into the last bucket. The
/// bucket count is fixed at construction so concurrent readers can size
/// tables up front.
class Log2Histogram {
 public:
  explicit Log2Histogram(int buckets = 40)
      : counts_(static_cast<std::size_t>(std::max(buckets, 1)), 0) {}

  void add(double v) {
    int idx = 0;
    if (v >= 1.0 && std::isfinite(v)) {
      int e = 0;
      std::frexp(v, &e);  // v = f * 2^e with f in [0.5, 1) => bucket e
      idx = std::min(e, static_cast<int>(counts_.size()) - 1);
    } else if (!std::isfinite(v) && v > 0.0) {
      idx = static_cast<int>(counts_.size()) - 1;
    }
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
  }

  int buckets() const { return static_cast<int>(counts_.size()); }
  std::int64_t count(int bucket) const {
    return counts_[static_cast<std::size_t>(bucket)];
  }
  std::int64_t total() const { return total_; }

  /// Inclusive-exclusive value range [lo, hi) of a bucket (bucket 0 is
  /// [0, 1); the last bucket is open-ended above its lo).
  static double bucket_lo(int bucket) {
    return bucket == 0 ? 0.0 : std::ldexp(1.0, bucket - 1);
  }
  static double bucket_hi(int bucket) { return std::ldexp(1.0, bucket); }

  /// Highest non-empty bucket index, or -1 on an empty histogram — lets
  /// printers skip the all-zero tail.
  int max_nonempty() const {
    for (int b = buckets() - 1; b >= 0; --b) {
      if (count(b) > 0) return b;
    }
    return -1;
  }

 private:
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
};

}  // namespace mfd
