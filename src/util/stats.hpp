// Streaming statistics over doubles; used to average randomized runs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>

namespace mfd {

class Accumulator {
 public:
  void add(double x) {
    sum_ += x;
    ++count_;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

 private:
  double sum_ = 0.0;
  std::int64_t count_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace mfd
