// Aligned plain-text tables for the paper-vs-measured experiment output.
//
// The first column is left-aligned (row labels), every other column is
// right-aligned (numbers). Columns are separated by two spaces, so every
// printed line of one table has the same length.
#pragma once

#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

namespace mfd {

class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells) {
    cells.resize(header_.size());
    rows_.push_back(std::move(cells));
  }

  /// Fixed-point formatting with `precision` decimals.
  static std::string num(double value, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
  }

  static std::string integer(std::int64_t value) {
    return std::to_string(value);
  }

  void print(std::ostream& out) const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) {
      width[c] = header_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    print_row(out, header_, width);
    std::string rule;
    for (std::size_t c = 0; c < width.size(); ++c) {
      if (c) rule += "  ";
      rule += std::string(width[c], '-');
    }
    out << rule << "\n";
    for (const auto& row : rows_) print_row(out, row, width);
  }

  std::size_t row_count() const { return rows_.size(); }

 private:
  static void print_row(std::ostream& out, const std::vector<std::string>& row,
                        const std::vector<std::size_t>& width) {
    std::string line;
    for (std::size_t c = 0; c < width.size(); ++c) {
      if (c) line += "  ";
      const std::string& cell = c < row.size() ? row[c] : kEmpty;
      const std::string pad(width[c] - cell.size(), ' ');
      if (c == 0) {
        line += cell + pad;  // labels left-aligned
      } else {
        line += pad + cell;  // numbers right-aligned
      }
    }
    out << line << "\n";
  }

  inline static const std::string kEmpty;

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mfd
