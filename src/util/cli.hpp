// Tiny command-line flag parser used by every bench binary.
//
// Accepted forms: `--key value`, `--key=value`, `-key value`, `-key=value`.
// A flag with no following value (or followed by another flag) is stored as
// "1" so `--verbose` style booleans work with get_int.
//
// Typo safety: every flag a bench queries (via has/get/get_int/get_double)
// is recorded as recognized; warn_unrecognized() then reports any provided
// flag nobody asked about — so `--smok` prints a warning (with a
// did-you-mean suggestion) instead of silently turning a smoke run into a
// full run. Benches call it once, after their last flag read.
#pragma once

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <map>
#include <ostream>
#include <set>
#include <string>
#include <vector>

namespace mfd {

class Cli {
 public:
  Cli(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.size() < 2 || arg[0] != '-') continue;
      const std::size_t name_start = (arg[1] == '-') ? 2 : 1;
      std::string key = arg.substr(name_start);
      const std::size_t eq = key.find('=');
      if (eq != std::string::npos) {
        flags_[key.substr(0, eq)] = key.substr(eq + 1);
      } else if (i + 1 < argc &&
                 (argv[i + 1][0] != '-' || looks_numeric(argv[i + 1]))) {
        flags_[key] = argv[++i];
      } else {
        flags_[key] = "1";
      }
    }
  }

  bool has(const std::string& key) const {
    recognized_.insert(key);
    return flags_.count(key) != 0;
  }

  std::string get(const std::string& key, const std::string& fallback) const {
    recognized_.insert(key);
    const auto it = flags_.find(key);
    return it == flags_.end() ? fallback : it->second;
  }

  std::int64_t get_int(const std::string& key, std::int64_t fallback) const {
    recognized_.insert(key);
    const auto it = flags_.find(key);
    return it == flags_.end() ? fallback : std::stoll(it->second);
  }

  double get_double(const std::string& key, double fallback) const {
    recognized_.insert(key);
    const auto it = flags_.find(key);
    return it == flags_.end() ? fallback : std::stod(it->second);
  }

  /// Flags provided on the command line that no accessor ever asked about —
  /// typos, or flags of a different bench.
  std::vector<std::string> unrecognized() const {
    std::vector<std::string> out;
    for (const auto& [key, value] : flags_) {
      if (recognized_.count(key) == 0) out.push_back(key);
    }
    return out;
  }

  /// Print one warning per unrecognized flag (with a did-you-mean hint when
  /// a recognized flag is within edit distance 2); returns how many there
  /// were so harnesses can decide to fail on them.
  int warn_unrecognized(std::ostream& err) const {
    const std::vector<std::string> unknown = unrecognized();
    for (const std::string& key : unknown) {
      err << "warning: unknown flag --" << key;
      std::string best;
      std::size_t best_d = 3;  // suggest only within edit distance 2
      for (const std::string& known : recognized_) {
        const std::size_t d = edit_distance(key, known);
        if (d < best_d) {
          best_d = d;
          best = known;
        }
      }
      if (!best.empty()) err << " (did you mean --" << best << "?)";
      err << "\n";
    }
    return static_cast<int>(unknown.size());
  }

 private:
  // Distinguishes a negative numeric value ("-5", "-0.25") from a flag
  // ("-n") so `--shift -5` parses as shift=-5 rather than two flags.
  static bool looks_numeric(const char* s) {
    if (*s == '-' || *s == '+') ++s;
    if (*s == '\0') return false;
    for (; *s != '\0'; ++s) {
      if (!std::isdigit(static_cast<unsigned char>(*s)) && *s != '.') {
        return false;
      }
    }
    return true;
  }

  static std::size_t edit_distance(const std::string& a, const std::string& b) {
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
      std::size_t diag = row[0];
      row[0] = i;
      for (std::size_t j = 1; j <= b.size(); ++j) {
        const std::size_t next =
            std::min({row[j] + 1, row[j - 1] + 1,
                      diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
        diag = row[j];
        row[j] = next;
      }
    }
    return row[b.size()];
  }

  std::map<std::string, std::string> flags_;
  mutable std::set<std::string> recognized_;
};

}  // namespace mfd
