// Tiny command-line flag parser used by every bench binary.
//
// Accepted forms: `--key value`, `--key=value`, `-key value`, `-key=value`.
// A flag with no following value (or followed by another flag) is stored as
// "1" so `--verbose` style booleans work with get_int.
#pragma once

#include <cctype>
#include <cstdint>
#include <map>
#include <string>

namespace mfd {

class Cli {
 public:
  Cli(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.size() < 2 || arg[0] != '-') continue;
      const std::size_t name_start = (arg[1] == '-') ? 2 : 1;
      std::string key = arg.substr(name_start);
      const std::size_t eq = key.find('=');
      if (eq != std::string::npos) {
        flags_[key.substr(0, eq)] = key.substr(eq + 1);
      } else if (i + 1 < argc &&
                 (argv[i + 1][0] != '-' || looks_numeric(argv[i + 1]))) {
        flags_[key] = argv[++i];
      } else {
        flags_[key] = "1";
      }
    }
  }

  bool has(const std::string& key) const { return flags_.count(key) != 0; }

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = flags_.find(key);
    return it == flags_.end() ? fallback : it->second;
  }

  std::int64_t get_int(const std::string& key, std::int64_t fallback) const {
    const auto it = flags_.find(key);
    return it == flags_.end() ? fallback : std::stoll(it->second);
  }

  double get_double(const std::string& key, double fallback) const {
    const auto it = flags_.find(key);
    return it == flags_.end() ? fallback : std::stod(it->second);
  }

 private:
  // Distinguishes a negative numeric value ("-5", "-0.25") from a flag
  // ("-n") so `--shift -5` parses as shift=-5 rather than two flags.
  static bool looks_numeric(const char* s) {
    if (*s == '-' || *s == '+') ++s;
    if (*s == '\0') return false;
    for (; *s != '\0'; ++s) {
      if (!std::isdigit(static_cast<unsigned char>(*s)) && *s != '.') {
        return false;
      }
    }
    return true;
  }

  std::map<std::string, std::string> flags_;
};

}  // namespace mfd
