// Tiny command-line flag parser used by every bench binary.
//
// Accepted forms: `--key value`, `--key=value`, `-key value`, `-key=value` —
// all four are interchangeable, and when a flag repeats (in any mix of
// forms) the LAST occurrence wins, matching what shell wrappers that append
// overrides expect. A flag with no following value (or followed by another
// flag) is stored as "1" so `--verbose` style booleans work with get_int.
// Values may be negative or in scientific notation (`--eps -1e-3`).
//
// Malformed numeric values never throw: `--n=` or `--n abc` make get_int /
// get_double return their fallback, and the bad value is reported by
// warn_unrecognized() — a scripted sweep keeps running instead of dying on
// an uncaught std::invalid_argument mid-batch.
//
// Typo safety: every flag a bench queries (via has/get/get_int/get_double)
// is recorded as recognized; warn_unrecognized() then reports any provided
// flag nobody asked about — so `--smok` prints a warning (with a
// did-you-mean suggestion) instead of silently turning a smoke run into a
// full run — plus any stray positional tokens (which earlier versions
// dropped silently). Benches call it once, after their last flag read.
#pragma once

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <ostream>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace mfd {

class Cli {
 public:
  Cli(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      // Not a flag: positional word, bare "-"/"--", or a stranded numeric
      // token (a value whose flag was mistyped). Record it for
      // warn_unrecognized instead of dropping it silently.
      if (arg.size() < 2 || arg[0] != '-' || looks_numeric(arg.c_str())) {
        stray_.push_back(arg);
        continue;
      }
      const std::size_t name_start = (arg[1] == '-') ? 2 : 1;
      std::string key = arg.substr(name_start);
      const std::size_t eq = key.find('=');
      if (eq != std::string::npos) {
        std::string value = key.substr(eq + 1);
        key = key.substr(0, eq);
        if (key.empty()) {  // "--=x" has no flag name
          stray_.push_back(arg);
          continue;
        }
        flags_[key] = std::move(value);  // map assign: last occurrence wins
      } else if (i + 1 < argc &&
                 (argv[i + 1][0] != '-' || looks_numeric(argv[i + 1]))) {
        flags_[key] = argv[++i];
      } else {
        flags_[key] = "1";
      }
    }
  }

  bool has(const std::string& key) const {
    recognized_.insert(key);
    return flags_.count(key) != 0;
  }

  std::string get(const std::string& key, const std::string& fallback) const {
    recognized_.insert(key);
    const auto it = flags_.find(key);
    return it == flags_.end() ? fallback : it->second;
  }

  std::int64_t get_int(const std::string& key, std::int64_t fallback) const {
    recognized_.insert(key);
    const auto it = flags_.find(key);
    if (it == flags_.end()) return fallback;
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0' || errno == ERANGE) {
      malformed_.emplace_back(key, it->second);
      return fallback;
    }
    return v;
  }

  double get_double(const std::string& key, double fallback) const {
    recognized_.insert(key);
    const auto it = flags_.find(key);
    if (it == flags_.end()) return fallback;
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0' || errno == ERANGE) {
      malformed_.emplace_back(key, it->second);
      return fallback;
    }
    return v;
  }

  /// Flags provided on the command line that no accessor ever asked about —
  /// typos, or flags of a different bench.
  std::vector<std::string> unrecognized() const {
    std::vector<std::string> out;
    for (const auto& [key, value] : flags_) {
      if (recognized_.count(key) == 0) out.push_back(key);
    }
    return out;
  }

  /// Stray positional tokens the parser could not attach to any flag.
  const std::vector<std::string>& stray() const { return stray_; }

  /// Print one warning per problem — unrecognized flag (with a did-you-mean
  /// hint when a recognized flag is within edit distance 2), stray
  /// positional token, or malformed numeric value that fell back to its
  /// default — and return the total so harnesses can decide to fail on them.
  int warn_unrecognized(std::ostream& err) const {
    const std::vector<std::string> unknown = unrecognized();
    for (const std::string& key : unknown) {
      err << "warning: unknown flag --" << key;
      std::string best;
      std::size_t best_d = 3;  // suggest only within edit distance 2
      for (const std::string& known : recognized_) {
        const std::size_t d = edit_distance(key, known);
        if (d < best_d) {
          best_d = d;
          best = known;
        }
      }
      if (!best.empty()) err << " (did you mean --" << best << "?)";
      err << "\n";
    }
    for (const std::string& tok : stray_) {
      err << "warning: stray argument '" << tok << "' ignored\n";
    }
    for (const auto& [key, value] : malformed_) {
      err << "warning: flag --" << key << " has non-numeric value '" << value
          << "'; using the default\n";
    }
    return static_cast<int>(unknown.size() + stray_.size() +
                            malformed_.size());
  }

 private:
  // Distinguishes a numeric value ("-5", "-0.25", "-1e-3") from a flag
  // ("-n") so `--shift -5` and `--eps -1e-3` parse as values rather than
  // flags. Grammar: [sign] digits [. digits] [eE [sign] digits], with at
  // least one digit in the mantissa.
  static bool looks_numeric(const char* s) {
    if (*s == '-' || *s == '+') ++s;
    bool mantissa = false;
    for (; std::isdigit(static_cast<unsigned char>(*s)); ++s) mantissa = true;
    if (*s == '.') {
      ++s;
      for (; std::isdigit(static_cast<unsigned char>(*s)); ++s) {
        mantissa = true;
      }
    }
    if (!mantissa) return false;
    if (*s == 'e' || *s == 'E') {
      ++s;
      if (*s == '-' || *s == '+') ++s;
      bool exponent = false;
      for (; std::isdigit(static_cast<unsigned char>(*s)); ++s) {
        exponent = true;
      }
      if (!exponent) return false;
    }
    return *s == '\0';
  }

  static std::size_t edit_distance(const std::string& a, const std::string& b) {
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
      std::size_t diag = row[0];
      row[0] = i;
      for (std::size_t j = 1; j <= b.size(); ++j) {
        const std::size_t next =
            std::min({row[j] + 1, row[j - 1] + 1,
                      diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
        diag = row[j];
        row[j] = next;
      }
    }
    return row[b.size()];
  }

  std::map<std::string, std::string> flags_;
  std::vector<std::string> stray_;
  mutable std::set<std::string> recognized_;
  // (key, value) pairs whose numeric parse failed — filled lazily by the
  // typed getters, reported by warn_unrecognized.
  mutable std::vector<std::pair<std::string, std::string>> malformed_;
};

}  // namespace mfd
