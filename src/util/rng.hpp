// Seeded, reproducible PRNG (xoshiro256** seeded via splitmix64).
//
// Every randomized component in the repo takes an explicit `Rng&` so a run is
// fully determined by its --seed flag; nothing reads global entropy.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace mfd {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) {
    // splitmix64 expansion of the seed into the 256-bit xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value (xoshiro256**).
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int uniform_int(int lo, int hi) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<int>(next() % span);
  }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t next_below(std::uint64_t n) { return next() % n; }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate) {
    double u = uniform();
    if (u <= 0.0) u = 0x1.0p-53;  // avoid log(0)
    return -std::log(u) / rate;
  }

  /// Fair coin.
  bool coin() { return (next() & 1) != 0; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

/// Zipf(s) sampler over ranks [0, n): P(rank r) proportional to 1/(r+1)^s.
/// The normalized CDF is precomputed once (O(n) doubles) and each draw is a
/// binary search over it, so sampling is O(log n) and — because all the
/// randomness comes from the caller's Rng stream — a query mix is fully
/// reproducible from the run's --seed. Rank 0 carries the head mass
/// 1/H_{n,s}, which the unit test pins against the empirical frequency.
class ZipfSampler {
 public:
  ZipfSampler(int n, double s)
      : cdf_(static_cast<std::size_t>(std::max(n, 1))) {
    double acc = 0.0;
    for (std::size_t r = 0; r < cdf_.size(); ++r) {
      acc += std::pow(static_cast<double>(r) + 1.0, -s);
      cdf_[r] = acc;
    }
    for (double& c : cdf_) c /= acc;
  }

  int n() const { return static_cast<int>(cdf_.size()); }

  /// Exact head-mass of rank 0 under the built distribution.
  double head_mass() const { return cdf_[0]; }

  /// Draw a rank in [0, n) using the caller's stream.
  int sample(Rng& rng) const {
    const double u = rng.uniform();
    const std::size_t idx = static_cast<std::size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
    return static_cast<int>(std::min(idx, cdf_.size() - 1));
  }

 private:
  std::vector<double> cdf_;  // ascending, last entry 1.0
};

}  // namespace mfd
