// Experiment E-EXPDEC — Corollary 6.2.
//
// Claims: for H-minor-free G, deterministically computable
//   * an (ε, φ) expander decomposition with φ = Ω(ε / (log 1/ε + log Δ)),
//   * an (ε, φ, c) expander decomposition with φ = 2^{-O(log² 1/ε)} and
//     c = O(log 1/ε).
//
// We sweep ε, build both objects (Observation 3.1 pipeline and the §4.2
// overlap algorithm), and report measured cut fraction, certified
// conductance (exact for tiny clusters, Cheeger λ2/2 otherwise), and the
// overlap c — next to the paper's formula value for the same ε. The
// bandwidth audit section prints the per-phase rounds x messages x
// peak-congestion breakdown and fails the run on a Runtime::audit()
// violation; the overlap table also exercises the budgeted per-level cut
// (enforced halving) and its evaluate_overlap audit.
#include <chrono>
#include <cmath>
#include "decomp/clustering.hpp"

#include "bench_common.hpp"
#include "congest/shard.hpp"
#include "decomp/expander_decomp.hpp"
#include "decomp/overlap_decomp.hpp"

namespace {
double wall_ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}
}  // namespace

int main(int argc, char** argv) {
  using namespace mfd;
  using namespace mfd::bench;
  const Cli cli(argc, argv);
  // Grids have conductance Θ(1/√n), so the decomposition actually has to
  // cut (a random triangulation is already a global expander at these
  // targets and would sit in one cluster for every row).
  const int n =
      static_cast<int>(cli.get_int("n", cli.has("smoke") ? 256 : 1024));
  Rng rng(cli.get_int("seed", 4));
  const std::string family = cli.get("family", "grid");
  const Graph g = make_family(family, n, rng);
  BenchJson json(cli, "expander_decomp");
  cli.warn_unrecognized(std::cerr);
  json.param("n", static_cast<std::int64_t>(g.n()));
  json.param("m", g.m());
  json.param("family", family);
  json.param("seed", cli.get_int("seed", 4));

  print_header("E-EXPDEC: Corollary 6.2",
               "(eps, phi) and (eps, phi, c) expander decompositions");
  std::cout << g.summary() << "\n\n";

  {
    // certify=true engages the three-tier audit: every emitted cluster is
    // re-certified through expander/cut_matching.hpp::certified_phi, so the
    // "phi lower" column is a SOUND bound (exact or replayed cut-matching
    // certificate) wherever "certified" covers the cluster count, and the
    // "phi estimate" column is the old heuristic Cheeger/exact value for
    // comparison. An inconsistent certificate fails the bench.
    Table t({"eps", "eps measured", "phi target", "phi lower (certified)",
             "phi estimate", "certified", "estimated", "clusters",
             "messages"});
    for (double eps : {0.6, 0.5, 0.4}) {
      decomp::ExpanderDecompParams xp;
      xp.certify = true;
      const decomp::ExpanderDecomp ed =
          decomp::expander_decomposition_minor_free(g, eps, xp);
      const decomp::ClusterQuality q = decomp::evaluate_clustering(g, ed.clustering);
      if (!ed.certify_ok) {
        std::cerr << "expander decomp certify audit FAILED at eps=" << eps
                  << "\n";
        return 1;
      }
      t.add_row({Table::num(eps, 2), Table::num(q.eps_fraction, 3),
                 Table::num(ed.phi_target, 4),
                 Table::num(ed.min_phi_lower, 4),
                 Table::num(ed.min_phi_estimate, 4),
                 Table::integer(ed.clusters_certified),
                 Table::integer(ed.clusters_estimated),
                 Table::integer(ed.clustering.k),
                 Table::integer(ed.ledger.total_messages())});
      if (eps == 0.5) {
        print_phase_table(std::cout, ed.ledger,
                          "(eps, phi) pipeline, eps = 0.5 on " + family);
        check_runtime_audit(ed.ledger, 2 * g.m(), "expander decomp eps=0.5");
        json.phases(ed.ledger, 2 * g.m());
        json.metric("eps_target", eps);
        json.metric("eps_measured", q.eps_fraction);
        json.metric("phi_target", ed.phi_target);
        json.metric("phi_certified", ed.min_certified_phi);
        json.metric("clusters", static_cast<std::int64_t>(ed.clustering.k));
        json.metric("phi_certified_lower", ed.min_phi_lower);
        json.metric("phi_estimate_min", ed.min_phi_estimate);
        json.metric("clusters_certified",
                    static_cast<std::int64_t>(ed.clusters_certified));
        json.metric("clusters_estimated",
                    static_cast<std::int64_t>(ed.clusters_estimated));
        json.metric("certify_ok", static_cast<std::int64_t>(ed.certify_ok));
      }
    }
    std::cout << "-- (eps, phi) expander decomposition (Observation 3.1)\n"
              << "   (phi lower: exact or replayed cut-matching certificate —\n"
              << "    a true lower bound; phi estimate: Cheeger lambda2/2,\n"
              << "    heuristic upper evidence only)\n";
    t.print(std::cout);
  }
  {
    Table t({"eps", "eps measured", "overlap c", "c bound O(log 1/e)",
             "phi lower (certified)", "certified", "estimated", "iterations",
             "budget"});
    for (double eps : {0.5, 0.35, 0.25, 0.15}) {
      decomp::OverlapDecompParams op;
      op.budgeted = true;  // enforce the per-level halving, don't just measure
      op.certify = true;   // re-certify every support in the final family
      const decomp::OverlapDecompResult od =
          decomp::overlap_expander_decomposition(g, eps, op);
      const decomp::OverlapQuality q = decomp::evaluate_overlap(g, od);
      check_runtime_audit(od.ledger, 2 * g.m(),
                          "overlap eps=" + Table::num(eps, 2));
      if (!od.certify_ok) {
        std::cerr << "overlap certify audit FAILED at eps=" << eps << "\n";
        return 1;
      }
      t.add_row({Table::num(eps, 2), Table::num(q.base.eps_fraction, 3),
                 Table::integer(q.overlap_c),
                 Table::num(std::log2(1.0 / eps) + 1, 1),
                 Table::num(od.min_phi_lower, 4),
                 Table::integer(od.clusters_certified),
                 Table::integer(od.clusters_estimated),
                 Table::integer(od.iterations),
                 q.level_budget_ok ? "ok" : "VIOLATED"});
      if (!q.level_budget_ok) {
        std::cerr << "overlap level budget violated at eps=" << eps << "\n";
        return 1;
      }
    }
    std::cout << "\n-- (eps, phi, c) overlap decomposition (Lemma 4.1, "
                 "budgeted per-level halving)\n";
    t.print(std::cout);
  }
  {
    // Certify-scaling: how large a cluster the implicit-matrix engine
    // certifies, and what the pooled certify path buys. A random planar
    // triangulation is a global expander at loose eps (see the family note
    // above), so decomposing it at eps = 0.5 leaves clusters far above the
    // old 1024-vertex game cap — exactly the regime the O(n)-state engine
    // exists for. The decomposition runs WITHOUT certify; certify_parts then
    // re-certifies the emitted clusters twice — serial reference vs fanned
    // over a ShardPool — and the two reports must agree bit-for-bit (the
    // pooled fold runs in cluster order, so any disagreement is a bug).
    const int n_scale =
        static_cast<int>(cli.get_int("certify_n", cli.has("smoke") ? 512 : 2048));
    const int threads = static_cast<int>(cli.get_int("threads", 0));  // 0 = hw
    Rng rng_scale(cli.get_int("seed", 4) + 1);
    const Graph big = make_family("planar", n_scale, rng_scale);
    decomp::ExpanderDecompParams xp;
    const decomp::ExpanderDecomp ed =
        decomp::expander_decomposition_minor_free(big, 0.5, xp);
    std::vector<std::vector<int>> members(ed.clustering.k);
    for (int v = 0; v < big.n(); ++v) {
      members[ed.clustering.cluster[v]].push_back(v);
    }
    expander::PhiCertParams pc;
    // Pin the matching player's target low: a low target means high edge
    // capacities, so the flows saturate and the game certifies instead of
    // hunting for a cut that is not there. The certified bound itself is
    // target-independent (alpha / (congestion * Delta) from the replay).
    pc.game.phi_target = 0.02;

    congest::ShardPool pool(threads);
    const auto t_serial = std::chrono::steady_clock::now();
    const decomp::PartCertifyReport serial = decomp::certify_parts(big, members, pc);
    const double serial_ms = wall_ms_since(t_serial);
    const auto t_pooled = std::chrono::steady_clock::now();
    const decomp::PartCertifyReport pooled =
        decomp::certify_parts(big, members, pc, &pool);
    const double pooled_ms = wall_ms_since(t_pooled);

    const bool identical =
        serial.ok == pooled.ok &&
        serial.clusters_certified == pooled.clusters_certified &&
        serial.clusters_estimated == pooled.clusters_estimated &&
        serial.min_phi_lower == pooled.min_phi_lower &&
        serial.min_phi_estimate == pooled.min_phi_estimate &&
        serial.max_certified_cluster == pooled.max_certified_cluster &&
        serial.state_bytes_peak == pooled.state_bytes_peak &&
        serial.ledger.total() == pooled.ledger.total() &&
        serial.ledger.total_messages() == pooled.ledger.total_messages() &&
        serial.ledger.peak_congestion() == pooled.ledger.peak_congestion();
    if (!identical || !serial.ok) {
      std::cerr << "certify-scaling FAILED: "
                << (identical ? "certificate audit" : "pooled != serial")
                << "\n";
      return 1;
    }

    Table t({"n", "clusters", "certified", "estimated", "max certified n",
             "state bytes", "serial ms", "pooled ms", "threads"});
    t.add_row({Table::integer(n_scale),
               Table::integer(static_cast<std::int64_t>(members.size())),
               Table::integer(serial.clusters_certified),
               Table::integer(serial.clusters_estimated),
               Table::integer(serial.max_certified_cluster),
               Table::integer(serial.state_bytes_peak),
               Table::num(serial_ms, 1), Table::num(pooled_ms, 1),
               Table::integer(pool.threads())});
    std::cout << "\n-- certify scaling (implicit-matrix game, planar "
                 "triangulation, eps = 0.5)\n"
              << "   (pooled report gated bit-identical to serial; state "
                 "bytes is the game's\n"
                 "    mixing-state high-water — O(n * block), no resident "
                 "n^2 matrix)\n";
    t.print(std::cout);

    json.metric("certify_scale_n", static_cast<std::int64_t>(n_scale));
    json.metric("certify_scale_clusters",
                static_cast<std::int64_t>(members.size()));
    json.metric("certify_scale_certified",
                static_cast<std::int64_t>(serial.clusters_certified));
    json.metric("certify_scale_estimated",
                static_cast<std::int64_t>(serial.clusters_estimated));
    json.metric("max_cluster_certified",
                static_cast<std::int64_t>(serial.max_certified_cluster));
    json.metric("certify_state_bytes_peak", serial.state_bytes_peak);
    json.metric("certify_wall_serial_ms", serial_ms);
    json.metric("certify_wall_pooled_ms", pooled_ms);
    json.metric("certify_scale_threads",
                static_cast<std::int64_t>(pool.threads()));
    json.metric("certify_scale_ok",
                static_cast<std::int64_t>(identical && serial.ok));
  }

  std::cout << "\nShape checks: certified phi tracks the eps/(log 1/e + log "
               "D) formula; overlap c stays O(log 1/eps); every level "
               "halves its uncovered edges (budget column all ok).\n";
  json.write();
  return 0;
}
