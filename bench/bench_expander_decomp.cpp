// Experiment E-EXPDEC — Corollary 6.2.
//
// Claims: for H-minor-free G, deterministically computable
//   * an (ε, φ) expander decomposition with φ = Ω(ε / (log 1/ε + log Δ)),
//   * an (ε, φ, c) expander decomposition with φ = 2^{-O(log² 1/ε)} and
//     c = O(log 1/ε).
//
// We sweep ε, build both objects (Observation 3.1 pipeline and the §4.2
// overlap algorithm), and report measured cut fraction, certified
// conductance (exact for tiny clusters, Cheeger λ2/2 otherwise), and the
// overlap c — next to the paper's formula value for the same ε.
#include <cmath>
#include "decomp/clustering.hpp"

#include "bench_common.hpp"
#include "decomp/expander_decomp.hpp"
#include "decomp/overlap_decomp.hpp"

int main(int argc, char** argv) {
  using namespace mfd;
  using namespace mfd::bench;
  const Cli cli(argc, argv);
  // Grids have conductance Θ(1/√n), so the decomposition actually has to
  // cut (a random triangulation is already a global expander at these
  // targets and would sit in one cluster for every row).
  const int n =
      static_cast<int>(cli.get_int("n", cli.has("smoke") ? 256 : 1024));
  Rng rng(cli.get_int("seed", 4));
  const Graph g = make_family(cli.get("family", "grid"), n, rng);
  cli.warn_unrecognized(std::cerr);

  print_header("E-EXPDEC: Corollary 6.2",
               "(eps, phi) and (eps, phi, c) expander decompositions");
  std::cout << g.summary() << "\n\n";

  {
    Table t({"eps", "eps measured", "phi target (max over clusters)",
             "phi certified (min, Cheeger)", "clusters"});
    for (double eps : {0.6, 0.5, 0.4}) {
      const decomp::ExpanderDecomp ed =
          decomp::expander_decomposition_minor_free(g, eps);
      const decomp::ClusterQuality q = decomp::evaluate_clustering(g, ed.clustering);
      t.add_row({Table::num(eps, 2), Table::num(q.eps_fraction, 3),
                 Table::num(ed.phi_target, 4),
                 Table::num(ed.min_certified_phi, 4),
                 Table::integer(ed.clustering.k)});
    }
    std::cout << "-- (eps, phi) expander decomposition (Observation 3.1)\n"
              << "   (certification is the Cheeger bound lambda2/2, which is\n"
              << "    quadratically conservative relative to the true Phi)\n";
    t.print(std::cout);
  }
  {
    Table t({"eps", "eps measured", "overlap c", "c bound O(log 1/e)",
             "phi lower (audited)", "iterations"});
    for (double eps : {0.5, 0.35, 0.25, 0.15}) {
      const decomp::OverlapDecompResult od =
          decomp::overlap_expander_decomposition(g, eps);
      const decomp::OverlapQuality q = decomp::evaluate_overlap(g, od.oc);
      t.add_row({Table::num(eps, 2), Table::num(q.base.eps_fraction, 3),
                 Table::integer(q.overlap_c),
                 Table::num(std::log2(1.0 / eps) + 1, 1),
                 Table::num(q.min_support_phi_lower, 4),
                 Table::integer(od.iterations)});
    }
    std::cout << "\n-- (eps, phi, c) overlap decomposition (Lemma 4.1)\n";
    t.print(std::cout);
  }
  std::cout << "\nShape checks: certified phi tracks the eps/(log 1/e + log "
               "D) formula; overlap c stays O(log 1/eps).\n";
  return 0;
}
