// Experiment E-MDS — the covering-IP application (§1 motivation; the
// MDS line of [LPW13, AASS16, ASS19, CHWW20] that the paper's framework
// subsumes).
//
// Claim shape: a (1+ε)-approximate minimum dominating set is computable
// deterministically on H-minor-free networks by solving every cluster of an
// (ε*, D, T)-decomposition optimally, with ε* = ε/(α(Δ+1)) turning the
// additive ε*·|E| combination loss into a multiplicative (1+ε).  The ratio
// column must stay <= 1+ε; the greedy baseline shows what the decomposition
// buys.
#include "apps/domination.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mfd;
  using namespace mfd::bench;
  const Cli cli(argc, argv);
  Rng rng(cli.get_int("seed", 11));

  print_header("E-MDS: covering application",
               "(1+eps)-approximate minimum dominating set");

  {
    std::cout << "-- ratio sweep (exact OPT via branch & bound)\n";
    Table t({"instance", "eps", "|D|", "OPT", "ratio", "1+eps", "greedy",
             "rounds"});
    struct Inst {
      std::string name;
      Graph g;
      int alpha;
    };
    std::vector<Inst> instances;
    instances.push_back({"planar(90)", random_maximal_planar(90, rng), 3});
    instances.push_back(
        {"outerplanar(120)", random_maximal_outerplanar(120, rng), 2});
    instances.push_back({"tree(160)", random_tree(160, rng), 1});
    instances.push_back({"grid(144)", grid_graph(12, 12), 3});
    for (const Inst& inst : instances) {
      const apps::MdsResult opt = apps::min_dominating_set(inst.g);
      const std::vector<int> greedy = apps::greedy_dominating_set(inst.g);
      for (double eps : {0.6, 0.4}) {
        const apps::MdsSolution sol =
            apps::approx_min_dominating_set(inst.g, eps, inst.alpha);
        t.add_row(
            {inst.name, Table::num(eps, 2),
             Table::integer(static_cast<long long>(sol.vertices.size())),
             Table::integer(static_cast<long long>(opt.set.size())),
             Table::num(static_cast<double>(sol.vertices.size()) /
                            static_cast<double>(opt.set.size()),
                        3),
             Table::num(1 + eps, 2),
             Table::integer(static_cast<long long>(greedy.size())),
             Table::integer(sol.stats.total_rounds)});
      }
    }
    t.print(std::cout);
  }

  {
    // Grids keep Δ = 4 as n grows, so eps* = eps/(α(Δ+1)) stays fixed and
    // the rounds column isolates the n-dependence (random triangulations
    // grow Δ with n, which shrinks eps* and conflates the two effects).
    std::cout << "\n-- rounds vs n (fixed eps = 0.5, grid)\n";
    Table t({"n", "rounds", "T", "clusters", "eps* used"});
    for (int n : {196, 784, 3136}) {
      int side = 1;
      while (side * side < n) ++side;
      const Graph g = grid_graph(side, side);
      const apps::MdsSolution sol =
          apps::approx_min_dominating_set(g, 0.5, /*alpha=*/3);
      t.add_row({Table::integer(n), Table::integer(sol.stats.total_rounds),
                 Table::integer(sol.stats.T),
                 Table::integer(sol.stats.clusters),
                 Table::num(sol.eps_star, 4)});
    }
    t.print(std::cout);
  }

  std::cout << "\nShape checks: ratio <= 1+eps on every row; greedy is the "
               "ln(Delta)-factor baseline the decomposition beats.\n";
  return 0;
}
