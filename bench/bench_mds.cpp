// Experiment E-MDS — the covering-IP application (§1 motivation; the
// MDS line of [LPW13, AASS16, ASS19, CHWW20] that the paper's framework
// subsumes).
//
// Claim shape: a (1+ε)-approximate minimum dominating set is computable
// deterministically on H-minor-free networks by solving every cluster of an
// (ε*, D, T)-decomposition optimally, with ε* = ε/(α(Δ+1)) turning the
// additive ε*·|E| combination loss into a multiplicative (1+ε).  The ratio
// column must stay <= 1+ε; the greedy baseline shows what the decomposition
// buys; the tiers column shows which ladder rung solved each cluster.
#include <algorithm>
#include <chrono>

#include "apps/domination.hpp"
#include "bench_common.hpp"
#include "bench_ladder.hpp"
#include "congest/shard.hpp"

int main(int argc, char** argv) {
  using namespace mfd;
  using namespace mfd::bench;
  const Cli cli(argc, argv);
  Rng rng(cli.get_int("seed", 11));
  const bool smoke = cli.has("smoke");  // trimmed instances for ctest/CI
  const int threads = static_cast<int>(cli.get_int("threads", 1));
  BenchJson json(cli, "mds");
  const apps::LadderConfig ladder = ladder_from_cli(cli, json);
  cli.warn_unrecognized(std::cerr);
  json.param("seed", cli.get_int("seed", 11));
  json.param("smoke", static_cast<std::int64_t>(smoke ? 1 : 0));
  json.param("threads", static_cast<std::int64_t>(threads));
  congest::ShardPool pool(threads);

  print_header("E-MDS: covering application",
               "(1+eps)-approximate minimum dominating set");

  // Exact OPT baseline: the treewidth DP when a width <= 12 decomposition
  // certifies (the 12x12 grid solves in well under a second where branch &
  // bound costs minutes), branch & bound otherwise.
  const auto exact_mds = [](const Graph& g) {
    const apps::TreeDecomposition td = apps::tree_decomposition(g, 12);
    if (td.complete && td.width <= 12) {
      return apps::tw_min_dominating_set(g, apps::nice_tree_decomposition(td));
    }
    return apps::min_dominating_set(g).set;
  };

  {
    std::cout << "-- ratio sweep (exact OPT via treewidth DP / branch & "
                 "bound)\n";
    Table t({"instance", "eps", "|D|", "OPT", "ratio", "1+eps", "greedy",
             "rounds", "tiers"});
    struct Inst {
      std::string name;
      Graph g;
      int alpha;
    };
    // Exact OPT used to be the sizing constraint here: grids are branch &
    // bound's hardest family (near-perfect domination keeps the 2-packing
    // bound tight but the tree wide), which pinned the grid at 10x10. The
    // treewidth-DP tier certifies a k x k grid at width k via its BFS-sweep
    // elimination order, so 12x12 is now exact in milliseconds (see
    // docs/BENCHMARKS.md).
    const int np = smoke ? 60 : 90, no = smoke ? 80 : 120,
              nt = smoke ? 100 : 160, side = smoke ? 8 : 12;
    std::vector<Inst> instances;
    instances.push_back({"planar(" + std::to_string(np) + ")",
                         random_maximal_planar(np, rng), 3});
    instances.push_back({"outerplanar(" + std::to_string(no) + ")",
                         random_maximal_outerplanar(no, rng), 2});
    instances.push_back({"tree(" + std::to_string(nt) + ")",
                         random_tree(nt, rng), 1});
    instances.push_back({"grid(" + std::to_string(side * side) + ")",
                         grid_graph(side, side), 3});
    for (const Inst& inst : instances) {
      const std::vector<int> opt = exact_mds(inst.g);
      const std::vector<int> greedy = apps::greedy_dominating_set(inst.g);
      for (double eps : {0.6, 0.4}) {
        const apps::MdsSolution sol = apps::approx_min_dominating_set(
            inst.g, eps, inst.alpha, &pool, ladder);
        if (inst.name.rfind("grid", 0) == 0 && eps == 0.4) {
          json.phases(sol.stats.runtime, 2 * inst.g.m());
          json.metric("eps", eps);
          json.metric("ratio", static_cast<double>(sol.vertices.size()) /
                                   static_cast<double>(opt.size()));
          ladder_metrics(json, sol.stats);
        }
        t.add_row(
            {inst.name, Table::num(eps, 2),
             Table::integer(static_cast<long long>(sol.vertices.size())),
             Table::integer(static_cast<long long>(opt.size())),
             Table::num(static_cast<double>(sol.vertices.size()) /
                            static_cast<double>(opt.size()),
                        3),
             Table::num(1 + eps, 2),
             Table::integer(static_cast<long long>(greedy.size())),
             Table::integer(sol.stats.total_rounds), tier_cell(sol.stats)});
      }
    }
    t.print(std::cout);
  }

  {
    // The tentpole demo: a 12x12 grid treated as ONE cluster. Branch &
    // bound needs minutes here; the width-12 DP (BFS-sweep elimination
    // order, 3^13-state dominating-set kernel) is exact in milliseconds.
    std::cout << "\n-- treewidth-DP showcase (12x12 grid as one cluster)\n";
    const Graph g = grid_graph(12, 12);
    apps::LadderConfig cfg = ladder;
    cfg.tw_cap = std::max(ladder.tw_cap, 12);
    cfg.mode = apps::SolverMode::kTreewidth;  // no branch & bound rescue
    apps::TierReport rep;
    const std::vector<int> set = apps::detail::cluster_mds(g, cfg, rep);
    std::vector<char> dominated(g.n(), 0);
    for (int v : set) {
      dominated[v] = 1;
      for (int w : g.neighbors(v)) dominated[w] = 1;
    }
    const bool valid =
        std::count(dominated.begin(), dominated.end(), char{1}) == g.n();
    const bool via_dp = rep.tier == apps::SolveTier::kTreewidthDp;
    std::cout << "  |D| = " << set.size() << " (width " << rep.width
              << " decomposition, " << Table::num(rep.ms, 1) << " ms, tier "
              << (via_dp ? "tw_dp" : "NOT tw_dp") << ", "
              << (valid ? "dominates all 144 vertices" : "INVALID") << ")\n";
    json.metric("tw_showcase_width", static_cast<std::int64_t>(rep.width));
    json.metric("tw_showcase_ms", rep.ms);
    json.metric("tw_showcase_size",
                static_cast<std::int64_t>(set.size()));
    json.metric("tw_showcase_via_dp",
                static_cast<std::int64_t>(via_dp ? 1 : 0));
    json.metric("tw_showcase_valid", static_cast<std::int64_t>(valid ? 1 : 0));
    if (!valid || !via_dp) {
      std::cerr << "treewidth-DP showcase FAILED\n";
      return 1;
    }
  }

  {
    // Grids keep Δ = 4 as n grows, so eps* = eps/(α(Δ+1)) stays fixed and
    // the rounds column isolates the n-dependence (random triangulations
    // grow Δ with n, which shrinks eps* and conflates the two effects).
    std::cout << "\n-- rounds vs n (fixed eps = 0.5, grid)\n";
    Table t({"n", "rounds", "T", "clusters", "eps* used", "tiers"});
    for (int n : smoke ? std::vector<int>{196, 784}
                       : std::vector<int>{196, 784, 3136}) {
      int side = 1;
      while (side * side < n) ++side;
      const Graph g = grid_graph(side, side);
      const apps::MdsSolution sol =
          apps::approx_min_dominating_set(g, 0.5, /*alpha=*/3, &pool, ladder);
      t.add_row({Table::integer(n), Table::integer(sol.stats.total_rounds),
                 Table::integer(sol.stats.T),
                 Table::integer(sol.stats.clusters),
                 Table::num(sol.eps_star, 4), tier_cell(sol.stats)});
    }
    t.print(std::cout);
  }

  std::cout << "\nShape checks: ratio <= 1+eps on every row; greedy is the "
               "ln(Delta)-factor baseline the decomposition beats; tiers "
               "F/TW/BB/G count clusters per ladder rung and sum to the "
               "cluster count.\n";
  json.write();
  return 0;
}
