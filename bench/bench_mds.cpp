// Experiment E-MDS — the covering-IP application (§1 motivation; the
// MDS line of [LPW13, AASS16, ASS19, CHWW20] that the paper's framework
// subsumes).
//
// Claim shape: a (1+ε)-approximate minimum dominating set is computable
// deterministically on H-minor-free networks by solving every cluster of an
// (ε*, D, T)-decomposition optimally, with ε* = ε/(α(Δ+1)) turning the
// additive ε*·|E| combination loss into a multiplicative (1+ε).  The ratio
// column must stay <= 1+ε; the greedy baseline shows what the decomposition
// buys.
#include "apps/domination.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mfd;
  using namespace mfd::bench;
  const Cli cli(argc, argv);
  Rng rng(cli.get_int("seed", 11));
  const bool smoke = cli.has("smoke");  // trimmed instances for ctest/CI
  BenchJson json(cli, "mds");
  cli.warn_unrecognized(std::cerr);
  json.param("seed", cli.get_int("seed", 11));
  json.param("smoke", static_cast<std::int64_t>(smoke ? 1 : 0));

  print_header("E-MDS: covering application",
               "(1+eps)-approximate minimum dominating set");

  {
    std::cout << "-- ratio sweep (exact OPT via branch & bound)\n";
    Table t({"instance", "eps", "|D|", "OPT", "ratio", "1+eps", "greedy",
             "rounds"});
    struct Inst {
      std::string name;
      Graph g;
      int alpha;
    };
    // The exact-OPT branch and bound is the sizing constraint here: grids
    // are its hardest family (near-perfect domination keeps the 2-packing
    // bound tight but the tree wide), so the grid stays at 10x10 = 0.3 s
    // exact — 12x12 already costs minutes (see docs/BENCHMARKS.md).
    const int np = smoke ? 60 : 90, no = smoke ? 80 : 120,
              nt = smoke ? 100 : 160, side = smoke ? 8 : 10;
    std::vector<Inst> instances;
    instances.push_back({"planar(" + std::to_string(np) + ")",
                         random_maximal_planar(np, rng), 3});
    instances.push_back({"outerplanar(" + std::to_string(no) + ")",
                         random_maximal_outerplanar(no, rng), 2});
    instances.push_back({"tree(" + std::to_string(nt) + ")",
                         random_tree(nt, rng), 1});
    instances.push_back({"grid(" + std::to_string(side * side) + ")",
                         grid_graph(side, side), 3});
    for (const Inst& inst : instances) {
      const apps::MdsResult opt = apps::min_dominating_set(inst.g);
      const std::vector<int> greedy = apps::greedy_dominating_set(inst.g);
      for (double eps : {0.6, 0.4}) {
        const apps::MdsSolution sol =
            apps::approx_min_dominating_set(inst.g, eps, inst.alpha);
        if (inst.name.rfind("grid", 0) == 0 && eps == 0.4) {
          json.phases(sol.stats.runtime, 2 * inst.g.m());
          json.metric("eps", eps);
          json.metric("ratio", static_cast<double>(sol.vertices.size()) /
                                   static_cast<double>(opt.set.size()));
        }
        t.add_row(
            {inst.name, Table::num(eps, 2),
             Table::integer(static_cast<long long>(sol.vertices.size())),
             Table::integer(static_cast<long long>(opt.set.size())),
             Table::num(static_cast<double>(sol.vertices.size()) /
                            static_cast<double>(opt.set.size()),
                        3),
             Table::num(1 + eps, 2),
             Table::integer(static_cast<long long>(greedy.size())),
             Table::integer(sol.stats.total_rounds)});
      }
    }
    t.print(std::cout);
  }

  {
    // Grids keep Δ = 4 as n grows, so eps* = eps/(α(Δ+1)) stays fixed and
    // the rounds column isolates the n-dependence (random triangulations
    // grow Δ with n, which shrinks eps* and conflates the two effects).
    std::cout << "\n-- rounds vs n (fixed eps = 0.5, grid)\n";
    Table t({"n", "rounds", "T", "clusters", "eps* used"});
    for (int n : smoke ? std::vector<int>{196, 784}
                       : std::vector<int>{196, 784, 3136}) {
      int side = 1;
      while (side * side < n) ++side;
      const Graph g = grid_graph(side, side);
      const apps::MdsSolution sol =
          apps::approx_min_dominating_set(g, 0.5, /*alpha=*/3);
      t.add_row({Table::integer(n), Table::integer(sol.stats.total_rounds),
                 Table::integer(sol.stats.T),
                 Table::integer(sol.stats.clusters),
                 Table::num(sol.eps_star, 4)});
    }
    t.print(std::cout);
  }

  std::cout << "\nShape checks: ratio <= 1+eps on every row; greedy is the "
               "ln(Delta)-factor baseline the decomposition beats.\n";
  json.write();
  return 0;
}
