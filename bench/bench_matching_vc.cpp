// Experiment E-MATCHVC — Corollary 6.4.
//
// Claims: (1-ε)-approximate maximum matching and (1+ε)-approximate minimum
// vertex cover in O(log* n / ε²) + O(log⁶(1/ε)/ε¹⁰) rounds, via Solomon's
// bounded-degree sparsifiers + the decomposition.
#include "bench_common.hpp"
#include "apps/approx.hpp"
#include "apps/blossom.hpp"
#include "apps/exact.hpp"
#include "bench_ladder.hpp"
#include "congest/shard.hpp"

int main(int argc, char** argv) {
  using namespace mfd;
  using namespace mfd::bench;
  const Cli cli(argc, argv);
  Rng rng(cli.get_int("seed", 8));
  const bool smoke = cli.has("smoke");  // trimmed instances for ctest/CI
  const int threads = static_cast<int>(cli.get_int("threads", 1));
  BenchJson json(cli, "matching_vc");
  const apps::LadderConfig ladder = ladder_from_cli(cli, json);
  cli.warn_unrecognized(std::cerr);
  json.param("seed", cli.get_int("seed", 8));
  json.param("smoke", static_cast<std::int64_t>(smoke ? 1 : 0));
  json.param("threads", static_cast<std::int64_t>(threads));
  congest::ShardPool pool(threads);

  print_header("E-MATCHVC: Corollary 6.4",
               "(1-eps) maximum matching and (1+eps) minimum vertex cover");

  struct Inst {
    std::string name;
    Graph g;
    int alpha;
  };
  const int np = smoke ? 60 : 100, no = smoke ? 100 : 160,
            side = smoke ? 10 : 14;
  std::vector<Inst> instances;
  instances.push_back({"planar(" + std::to_string(np) + ")",
                       random_maximal_planar(np, rng), 3});
  instances.push_back({"outerplanar(" + std::to_string(no) + ")",
                       random_maximal_outerplanar(no, rng), 2});
  instances.push_back({"grid(" + std::to_string(side * side) + ")",
                       grid_graph(side, side), 3});

  std::cout << "-- maximum matching\n";
  Table tm({"instance", "eps", "|M|", "OPT", "ratio", "1-eps", "rounds"});
  for (const Inst& inst : instances) {
    const auto opt = apps::max_matching_edges(inst.g);
    for (double eps : {0.4, 0.25}) {
      const apps::MatchingSolution sol =
          apps::approx_max_matching(inst.g, eps, inst.alpha, &pool);
      if (inst.name.rfind("grid", 0) == 0 && eps == 0.25) {
        json.phases(sol.stats.runtime, 2 * inst.g.m());
        json.metric("eps", eps);
        json.metric("matching_ratio", static_cast<double>(sol.edges.size()) /
                                          static_cast<double>(opt.size()));
      }
      tm.add_row({inst.name, Table::num(eps, 2),
                  Table::integer(static_cast<long long>(sol.edges.size())),
                  Table::integer(static_cast<long long>(opt.size())),
                  Table::num(static_cast<double>(sol.edges.size()) /
                                 static_cast<double>(opt.size()),
                             3),
                  Table::num(1 - eps, 2),
                  Table::integer(sol.stats.total_rounds)});
    }
  }
  tm.print(std::cout);

  std::cout << "\n-- minimum vertex cover\n";
  Table tv({"instance", "eps", "|C|", "OPT", "ratio", "1+eps", "rounds",
            "tiers"});
  for (const Inst& inst : instances) {
    const apps::MisResult opt = apps::min_vertex_cover(inst.g);
    for (double eps : {0.4, 0.25}) {
      const apps::SetSolution sol = apps::approx_min_vertex_cover(
          inst.g, eps, inst.alpha, &pool, ladder);
      // Outerplanar is the ladder's showcase family here: width <= 2 always
      // certifies, so every non-forest cluster must land in the DP tier
      // (the schema checker gates tier_tw_dp >= 1 on this trail).
      if (inst.name.rfind("outerplanar", 0) == 0 && eps == 0.25) {
        json.metric("vc_ratio", static_cast<double>(sol.vertices.size()) /
                                    static_cast<double>(opt.set.size()));
        ladder_metrics(json, sol.stats);
      }
      tv.add_row({inst.name, Table::num(eps, 2),
                  Table::integer(static_cast<long long>(sol.vertices.size())),
                  Table::integer(static_cast<long long>(opt.set.size())),
                  Table::num(static_cast<double>(sol.vertices.size()) /
                                 static_cast<double>(opt.set.size()),
                             3),
                  Table::num(1 + eps, 2),
                  Table::integer(sol.stats.total_rounds),
                  tier_cell(sol.stats)});
    }
  }
  tv.print(std::cout);
  std::cout << "\nShape checks: matching ratio >= 1-eps; cover ratio <= "
               "1+eps.\n";
  json.write();
  return 0;
}
