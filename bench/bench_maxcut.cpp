// Experiment E-MAXCUT — Corollary 6.3.
//
// Claim: a (1-ε)-approximate maximum cut of any H-minor-free graph,
// deterministically, in O(log* n / ε) + min(T variants) rounds.
//
// We sweep ε over planar / outerplanar / grid instances; OPT is exact for
// small instances (branch & bound) and lower-bounded by m for bipartite
// grids.  The measured ratio must clear (1 - ε).
#include "bench_common.hpp"
#include "apps/approx.hpp"
#include "apps/maxcut.hpp"
#include "bench_ladder.hpp"
#include "congest/shard.hpp"

int main(int argc, char** argv) {
  using namespace mfd;
  using namespace mfd::bench;
  const Cli cli(argc, argv);
  Rng rng(cli.get_int("seed", 6));
  const bool smoke = cli.has("smoke");  // trimmed instances for ctest/CI
  const int threads = static_cast<int>(cli.get_int("threads", 1));
  BenchJson json(cli, "maxcut");
  const apps::LadderConfig ladder = ladder_from_cli(cli, json);
  cli.warn_unrecognized(std::cerr);
  json.param("seed", cli.get_int("seed", 6));
  json.param("smoke", static_cast<std::int64_t>(smoke ? 1 : 0));
  json.param("threads", static_cast<std::int64_t>(threads));
  congest::ShardPool pool(threads);

  print_header("E-MAXCUT: Corollary 6.3", "(1-eps)-approximate max cut");

  Table t({"instance", "eps", "cut value", "OPT (or bound)", "ratio",
           "1-eps", "rounds", "T", "tiers"});
  struct Inst {
    std::string name;
    Graph g;
    std::int64_t opt;  // exact or known
  };
  std::vector<Inst> instances;
  {
    const int ns = smoke ? 20 : 24, side = smoke ? 12 : 20,
              no = smoke ? 100 : 200;
    const Graph small = random_maximal_planar(ns, rng);
    instances.push_back({"planar(" + std::to_string(ns) + ") exact-OPT",
                         small, apps::max_cut(small, 26).cut_edges});
    const Graph grid = grid_graph(side, side);
    instances.push_back({"grid(" + std::to_string(side * side) + ") OPT=m",
                         grid, grid.m()});
    const Graph outer = random_maximal_outerplanar(no, rng);
    // Upper bound only: OPT <= m; ratio column then underestimates.
    instances.push_back({"outerplanar(" + std::to_string(no) + ") OPT<=m",
                         outer, outer.m()});
  }
  for (const Inst& inst : instances) {
    for (double eps : {0.4, 0.25, 0.15}) {
      const apps::CutSolution sol =
          apps::approx_max_cut(inst.g, eps, 24, &pool, ladder);
      if (inst.name.rfind("grid", 0) == 0 && eps == 0.25) {
        json.phases(sol.stats.runtime, 2 * inst.g.m());
        json.metric("eps", eps);
        json.metric("cut_value", sol.value);
        json.metric("ratio", static_cast<double>(sol.value) / inst.opt);
        ladder_metrics(json, sol.stats);
      }
      t.add_row({inst.name, Table::num(eps, 2), Table::integer(sol.value),
                 Table::integer(inst.opt),
                 Table::num(static_cast<double>(sol.value) / inst.opt, 3),
                 Table::num(1 - eps, 2),
                 Table::integer(sol.stats.total_rounds),
                 Table::integer(sol.stats.T), tier_cell(sol.stats)});
    }
  }
  t.print(std::cout);
  std::cout << "\nShape checks: ratio >= 1-eps on rows with exact OPT "
               "(first & second instance).\n";
  json.write();
  return 0;
}
