// Experiment E-PTEST — Corollary 6.6 and the Levi–Medina–Ron lower bound
#include <cmath>
// (Theorem 6.2).
//
// Claims:
//   * any additive minor-closed property is testable deterministically in
//     O(log n / ε) + min(T variants) rounds: members accept, ε-far graphs
//     reject;
//   * Ω(log n / ε) rounds are necessary — so the rounds column must scale
//     like log n on member instances.
#include "bench_common.hpp"
#include "apps/property_testing.hpp"
#include "graph/ops.hpp"

int main(int argc, char** argv) {
  using namespace mfd;
  using namespace mfd::bench;
  const Cli cli(argc, argv);
  Rng rng(cli.get_int("seed", 9));
  const bool smoke = cli.has("smoke");  // trimmed instances for ctest/CI
  BenchJson json(cli, "property_testing");
  cli.warn_unrecognized(std::cerr);
  json.param("seed", cli.get_int("seed", 9));
  json.param("smoke", static_cast<std::int64_t>(smoke ? 1 : 0));

  print_header("E-PTEST: Corollary 6.6 + Theorem 6.2",
               "property testing of additive minor-closed properties");

  std::cout << "-- accept/reject matrix (eps = 0.2)\n";
  Table t({"instance", "property", "expected", "verdict", "reason", "rounds"});
  struct Case {
    std::string name;
    Graph g;
    Family fam;
    bool expect_accept;
  };
  const int half = smoke ? 2 : 1;  // smoke halves every instance size
  const auto label = [](const std::string& base, int size) {
    return base + "(" + std::to_string(size) + ")";
  };
  std::vector<Case> cases;
  cases.push_back({label("planar", 600 / half),
                   random_maximal_planar(600 / half, rng), Family::kPlanar,
                   true});
  cases.push_back({label("grid", 400 / half), grid_graph(20 / half, 20),
                   Family::kPlanar, true});
  cases.push_back({label("K6-chain", 15 / half), clique_chain(15 / half, 6),
                   Family::kPlanar, false});
  cases.push_back({"K" + std::to_string(40 / half),
                   complete_graph(40 / half), Family::kPlanar, false});
  cases.push_back({label("6-regular", 120 / half),
                   random_regular(120 / half, 6, rng), Family::kPlanar,
                   false});
  cases.push_back({label("forest", 300 / half),
                   disjoint_union(random_tree(200 / half, rng),
                                  random_tree(100 / half, rng)),
                   Family::kForest, true});
  cases.push_back({label("triangle-chain", 20 / half),
                   clique_chain(20 / half, 3), Family::kForest, false});
  cases.push_back({label("outerplanar", 400 / half),
                   random_maximal_outerplanar(400 / half, rng),
                   Family::kOuterplanar, true});
  cases.push_back({label("K5-chain", 15 / half), clique_chain(15 / half, 5),
                   Family::kOuterplanar, false});
  cases.push_back({label("cactus", 300 / half),
                   random_cactus(300 / half, rng), Family::kCactus, true});
  cases.push_back({label("K4-chain", 25 / half), clique_chain(25 / half, 4),
                   Family::kCactus, false});
  cases.push_back({label("path", 300 / half), path_graph(300 / half),
                   Family::kLinearForest, true});
  cases.push_back({label("spider", 200 / half), star_graph(200 / half),
                   Family::kLinearForest, false});
  int correct = 0;
  for (const Case& c : cases) {
    const apps::PropertyTestResult res = apps::test_property(c.g, c.fam, 0.2);
    const bool ok = res.accepted == c.expect_accept;
    correct += ok ? 1 : 0;
    if (c.name.rfind("grid", 0) == 0) {
      json.phases(res.runtime, 2 * c.g.m());
      json.metric("eps", 0.2);
    }
    t.add_row({c.name, family_name(c.fam),
               c.expect_accept ? "accept" : "reject",
               res.accepted ? "accept" : "reject",
               res.reason.empty() ? "-" : res.reason.substr(0, 38),
               Table::integer(res.rounds)});
  }
  t.print(std::cout);
  std::cout << "correct verdicts: " << correct << "/" << cases.size() << "\n";

  std::cout << "\n-- lower-bound shape (Thm 6.2): rounds vs n on planar "
               "members, eps = 0.25\n";
  Table t2({"n", "log2(n)", "rounds"});
  for (int n : smoke ? std::vector<int>{250, 1000, 4000}
                     : std::vector<int>{250, 1000, 4000, 16000}) {
    const Graph g = random_maximal_planar(n, rng);
    const apps::PropertyTestResult res =
        apps::test_property(g, Family::kPlanar, 0.25);
    t2.add_row({Table::integer(n),
                Table::num(std::log2(static_cast<double>(n)), 1),
                Table::integer(res.rounds)});
  }
  t2.print(std::cout);
  std::cout << "\nShape checks: all verdicts correct; member rounds grow "
               "mildly with n (the Omega(log n / eps) lower bound says they "
               "cannot be flat).\n";
  json.metric("correct_verdicts", static_cast<std::int64_t>(correct));
  json.write();
  return 0;
}
