// Experiment E-RSERVE — the compact-routing query-serving tier under load.
//
// bench_compact_routing measures table *construction* plus a stretch sample;
// this bench measures the tables being *used*: it preloads the flattened
// two-level interval-tree tables (apps::FlatRoutingTables) for the grid,
// torus and planar families, fires millions of (s, t) full-path queries
// under uniform and zipf source/target mixes — cold (first pass over fresh
// tables) and warm (repeat passes) — and reports queries/sec, p50/p99
// per-lookup latency, the stretch distribution and table bytes/vertex.
//
// Contracts enforced in-binary (the run exits nonzero on violation):
//   * equivalence gate — on every family, sampled flat routes must be
//     bit-identical (hops AND visited-vertex sequence) to the pointer-walk
//     reference route_hops, the PR 6 serial-reference rule;
//   * Runtime::audit() on the construction ledger (the tables served here
//     are built by the audited EDT pipeline);
//   * multi-thread serving reuses the single-thread measurement when the
//     host has one hardware thread (same engine configuration — reported
//     honestly, like bench_scale's few-core speedup note).
#include <chrono>
#include <numeric>

#include "apps/compact_routing.hpp"
#include "bench_common.hpp"
#include "congest/shard.hpp"
#include "decomp/edt.hpp"

namespace {

using namespace mfd;

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Best-of-`reps` throughput of one serve pass (higher is the honest
/// steady-state figure; the first pass is reported separately as cold).
double measure_qps(const apps::FlatRoutingTables& t,
                   const std::vector<std::pair<int, int>>& queries,
                   std::vector<int>& out, congest::ShardPool* pool,
                   std::int64_t grain, int reps) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const Clock::time_point t0 = Clock::now();
    apps::serve_route_queries(t, queries, out, pool, grain);
    const double sec = seconds_since(t0);
    if (sec > 0.0) {
      best = std::max(best, static_cast<double>(queries.size()) / sec);
    }
  }
  return best;
}

std::vector<std::pair<int, int>> uniform_queries(int n, std::int64_t count,
                                                 Rng& rng) {
  std::vector<std::pair<int, int>> q;
  q.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    q.emplace_back(static_cast<int>(rng.next_below(n)),
                   static_cast<int>(rng.next_below(n)));
  }
  return q;
}

/// Zipf mix: ranks drawn from Zipf(s) on both endpoints, mapped through a
/// seeded permutation so the hot set is scattered across the id space (and
/// hence across clusters) instead of clustered at low ids.
std::vector<std::pair<int, int>> zipf_queries(int n, std::int64_t count,
                                              double s, Rng& rng) {
  const ZipfSampler zipf(n, s);
  std::vector<int> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  for (int i = n - 1; i > 0; --i) {
    std::swap(perm[static_cast<std::size_t>(i)],
              perm[rng.next_below(static_cast<std::uint64_t>(i) + 1)]);
  }
  std::vector<std::pair<int, int>> q;
  q.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    q.emplace_back(perm[static_cast<std::size_t>(zipf.sample(rng))],
                   perm[static_cast<std::size_t>(zipf.sample(rng))]);
  }
  return q;
}

void print_log2_histogram(const Log2Histogram& h, const char* title,
                          const char* unit) {
  std::cout << "   " << title << " (log2 buckets, " << unit << "):";
  const int top = h.max_nonempty();
  for (int b = 0; b <= top; ++b) {
    if (h.count(b) == 0) continue;
    std::cout << "  [" << Table::num(Log2Histogram::bucket_lo(b), 0) << ","
              << Table::num(Log2Histogram::bucket_hi(b), 0) << ")=" << h.count(b);
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mfd;
  using namespace mfd::bench;
  const Cli cli(argc, argv);
  const bool smoke = cli.has("smoke");  // trimmed instances for ctest/CI
  Rng rng(cli.get_int("seed", 23));
  const int n = static_cast<int>(cli.get_int("n", smoke ? 4096 : 262144));
  const std::int64_t queries =
      cli.get_int("queries", smoke ? 20000 : 2000000);
  const double eps = cli.get_double("eps", 0.3);
  const double zipf_s = cli.get_double("zipf-s", 1.0);
  const int threads = static_cast<int>(cli.get_int("threads", 0));  // 0 = hw
  const std::int64_t grain = cli.get_int("grain", 4096);
  const int stretch_pairs =
      static_cast<int>(cli.get_int("pairs", smoke ? 16 : 48));
  const std::int64_t equiv_pairs =
      cli.get_int("equiv", smoke ? 500 : 2000);
  const std::int64_t latency_sample =
      std::min<std::int64_t>(queries, smoke ? 5000 : 50000);
  const int reps = smoke ? 3 : 2;
  BenchJson json(cli, "route_serve");
  cli.warn_unrecognized(std::cerr);
  json.param("n", static_cast<std::int64_t>(n));
  json.param("queries", queries);
  json.param("eps", eps);
  json.param("zipf_s", zipf_s);
  json.param("threads", static_cast<std::int64_t>(threads));
  json.param("seed", cli.get_int("seed", 23));
  json.param("smoke", static_cast<std::int64_t>(smoke ? 1 : 0));

  print_header("E-RSERVE: route serving",
               "query throughput over the flattened two-level routing tables");

  congest::ShardPool pool(threads);
  const int threads_actual = pool.threads();
  std::cout << "serving threads: " << threads_actual
            << (threads_actual == 1
                    ? " (single hardware thread: multi == single, reported "
                      "as such)"
                    : "")
            << "\n\n";

  Table table({"family", "n", "clusters", "bytes/v", "qps cold 1t",
               "qps warm 1t", "qps warm mt", "qps zipf mt", "p50 ns", "p99 ns",
               "avg stretch", "delivered"});

  const char* families[] = {"grid", "torus", "planar-sparse"};
  for (const char* fam : families) {
    const bool representative = std::string(fam) == "grid";
    const Graph g = make_family(fam, n, rng);

    // Preload: audited construction, then the one-time flatten.
    decomp::EdtParams ep;
    ep.pool = &pool;
    const decomp::EdtDecomposition edt = decomp::build_edt_decomposition(g, eps, ep);
    const apps::RoutingScheme scheme = apps::build_routing_scheme(g, edt.clustering);
    const apps::FlatRoutingTables flat = apps::flatten_routing_scheme(scheme);

    // Equivalence gate: flat routes must match the pointer-walk reference
    // bit for bit (hop count and visited sequence) on sampled pairs.
    {
      std::vector<int> ref_path, flat_path;
      for (std::int64_t i = 0; i < equiv_pairs; ++i) {
        const int u = static_cast<int>(rng.next_below(g.n()));
        const int v = static_cast<int>(rng.next_below(g.n()));
        ref_path.clear();
        flat_path.clear();
        const int rh = apps::route_hops(scheme, u, v, &ref_path);
        const int fh = apps::flat_route_hops(flat, u, v, &flat_path);
        if (rh != fh || ref_path != flat_path) {
          std::cerr << "EQUIVALENCE FAILURE (" << fam << "): route " << u
                    << " -> " << v << " diverged (ref " << rh << " hops, flat "
                    << fh << " hops)\n";
          return 1;
        }
      }
    }

    // Query mixes. The uniform set doubles as the cold-pass workload: the
    // very first serve touches the freshly built tables.
    Rng qrng(cli.get_int("seed", 23) + 101);
    const std::vector<std::pair<int, int>> uni =
        uniform_queries(g.n(), queries, qrng);
    const std::vector<std::pair<int, int>> zip =
        zipf_queries(g.n(), queries, zipf_s, qrng);
    std::vector<int> hops_out;

    const double qps_cold = measure_qps(flat, uni, hops_out, nullptr, grain, 1);
    std::int64_t delivered = 0;
    for (int h : hops_out) delivered += h >= 0 ? 1 : 0;
    const double delivered_frac =
        hops_out.empty() ? 0.0
                         : static_cast<double>(delivered) /
                               static_cast<double>(hops_out.size());
    const double qps_1t = measure_qps(flat, uni, hops_out, nullptr, grain, reps);
    const double qps_mt =
        threads_actual == 1
            ? qps_1t  // same engine configuration on a 1-thread host
            : measure_qps(flat, uni, hops_out, &pool, grain, reps);
    const double qps_zipf_mt =
        threads_actual == 1
            ? measure_qps(flat, zip, hops_out, nullptr, grain, reps)
            : measure_qps(flat, zip, hops_out, &pool, grain, reps);

    // Per-lookup latency: individually timed single-thread sample.
    std::vector<double> lat_ns;
    lat_ns.reserve(static_cast<std::size_t>(latency_sample));
    Log2Histogram lat_hist(48);
    std::int64_t hop_sink = 0;
    for (std::int64_t i = 0; i < latency_sample; ++i) {
      const auto& [qs, qt] = uni[static_cast<std::size_t>(i)];
      const Clock::time_point t0 = Clock::now();
      hop_sink += apps::flat_route_hops(flat, qs, qt);
      const double ns = seconds_since(t0) * 1e9;
      lat_ns.push_back(ns);
      lat_hist.add(ns);
    }
    const LatencySummary lat = summarize_latency(lat_ns);

    // Stretch distribution: flat route hops vs BFS distance on sampled
    // connected pairs.
    Log2Histogram stretch_hist(16);
    double stretch_sum = 0.0, stretch_max = 0.0;
    int stretch_n = 0;
    for (int trial = 0; trial < 8 * stretch_pairs && stretch_n < stretch_pairs;
         ++trial) {
      const int u = static_cast<int>(rng.next_below(g.n()));
      const int v = static_cast<int>(rng.next_below(g.n()));
      if (u == v) continue;
      const std::vector<int> dist = bfs_distances(g, u);
      if (dist[v] <= 0) continue;
      const int h = apps::flat_route_hops(flat, u, v);
      if (h < 0) continue;
      const double st = static_cast<double>(h) / static_cast<double>(dist[v]);
      stretch_sum += st;
      stretch_max = std::max(stretch_max, st);
      stretch_hist.add(st);
      ++stretch_n;
    }
    const double avg_stretch = stretch_n == 0 ? 0.0 : stretch_sum / stretch_n;

    std::cout << "-- " << fam << ": n=" << g.n() << " m=" << g.m()
              << " clusters=" << edt.clustering.k
              << " table=" << flat.table_bytes() << " B ("
              << Table::num(flat.bytes_per_vertex(), 1) << " B/vertex)\n";
    print_log2_histogram(lat_hist, "lookup latency", "ns");
    print_log2_histogram(stretch_hist, "stretch", "x");
    (void)hop_sink;

    table.add_row({fam, Table::integer(g.n()), Table::integer(edt.clustering.k),
                   Table::num(flat.bytes_per_vertex(), 1),
                   Table::num(qps_cold, 0), Table::num(qps_1t, 0),
                   Table::num(qps_mt, 0), Table::num(qps_zipf_mt, 0),
                   Table::num(lat.p50, 0), Table::num(lat.p99, 0),
                   Table::num(avg_stretch, 2), Table::num(delivered_frac, 3)});

    if (representative) {
      json.phases(edt.ledger, 2 * g.m());
      check_runtime_audit(edt.ledger, 2 * g.m(), fam);
      json.param("family", std::string(fam));
      json.metric("threads_actual", static_cast<std::int64_t>(threads_actual));
      json.metric("clusters", static_cast<std::int64_t>(edt.clustering.k));
      json.metric("table_bytes", flat.table_bytes());
      json.metric("bytes_per_vertex", flat.bytes_per_vertex());
      json.metric("qps_cold_single", qps_cold);
      json.metric("qps_uniform_single", qps_1t);
      json.metric("qps_uniform_multi", qps_mt);
      json.metric("qps_zipf_multi", qps_zipf_mt);
      json.metric("p50_lookup_ns", lat.p50);
      json.metric("p90_lookup_ns", lat.p90);
      json.metric("p99_lookup_ns", lat.p99);
      json.metric("mean_lookup_ns", lat.mean);
      json.metric("latency_samples", lat.count);
      json.metric("delivered_fraction", delivered_frac);
      json.metric("avg_stretch", avg_stretch);
      json.metric("max_stretch", stretch_max);
      json.metric("equiv_pairs", equiv_pairs);
      json.metric("equiv_ok", static_cast<std::int64_t>(1));
    }
  }

  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nShape checks: warm beats cold, multi-thread qps >= "
               "single-thread (equal by construction on a 1-thread host), "
               "zipf's hot working set serves at least as fast as uniform on "
               "warm caches, and delivery stays 1.0 on connected families. "
               "Every sampled flat route matched the pointer-walk reference "
               "bit for bit.\n";
  json.write();
  return 0;
}
