// Experiment T1 — Table 1 of the paper.
//
// "The complexities of (ε, D, T)-decompositions with D = O(ε^-1) in
//  Theorem 1.1":
//
//    Δ         ε         construction time               routing time
//    const     const     O(log* n)                       O(1)
//    const     any       O(ε^-1 log* n) + poly(ε^-1)     poly(ε^-1)
//    any       const     O(log n)                        O(log n)
//    any       any       poly(ε^-1, log n)               poly(ε^-1, log n)
//
// For each regime we build the decomposition on the matching family
// (bounded-degree grids for "Δ const", planar triangulations whose maximum
// degree grows with n for "Δ any") and report measured construction rounds
// and measured routing T — the *shape* claim is that rows with const
// parameters stay flat / grow like log* n (resp. log n) as n grows 16x.
#include "bench_common.hpp"
#include "decomp/edt.hpp"

namespace mfd::bench {
namespace {

struct Row {
  std::string regime;
  std::string family;
  int n;
  double eps;
  std::int64_t construction;
  int t_routing;
  int diameter;
  double eps_measured;
};

Row run(const std::string& regime, const std::string& family, int n,
        double eps, Rng& rng) {
  const Graph g = make_family(family, n, rng);
  decomp::EdtParams params;
  const decomp::EdtDecomposition edt =
      decomp::build_edt_decomposition(g, eps, params);
  return Row{regime,          family,
             g.n(),           eps,
             edt.ledger.total(), edt.T_measured,
             edt.quality.max_diameter, edt.quality.eps_fraction};
}

}  // namespace
}  // namespace mfd::bench

int main(int argc, char** argv) {
  using namespace mfd;
  using namespace mfd::bench;
  const Cli cli(argc, argv);
  const int scale = static_cast<int>(cli.get_int("scale", 1));
  Rng rng(cli.get_int("seed", 1));
  BenchJson json(cli, "table1");
  cli.warn_unrecognized(std::cerr);
  json.param("scale", static_cast<std::int64_t>(scale));
  json.param("seed", cli.get_int("seed", 1));

  print_header("T1: Table 1",
               "construction & routing complexity across the four (Δ, ε) "
               "regimes");

  Table t({"regime (paper row)", "family", "n", "eps", "construction rounds",
           "routing T", "max diam", "eps measured", "paper claim"});
  std::vector<Row> rows;
  // Row 1: Δ const, ε const — grids, fixed ε.
  for (int n : {1024 * scale, 4096 * scale, 16384 * scale}) {
    rows.push_back(run("dlt=const eps=const", "grid", n, 0.3, rng));
    rows.back().regime += " | O(log* n) / O(1)";
  }
  // Row 2: Δ const, ε sweep — grids.
  for (double eps : {0.5, 0.3, 0.2}) {
    rows.push_back(run("dlt=const eps=any", "grid", 4096 * scale, eps, rng));
    rows.back().regime += " | O(eps^-1 log* n)+poly(1/eps) / poly(1/eps)";
  }
  // Row 3: Δ any, ε const — triangulations (Δ grows with n).
  for (int n : {1000 * scale, 4000 * scale, 16000 * scale}) {
    rows.push_back(run("dlt=any eps=const", "planar", n, 0.3, rng));
    rows.back().regime += " | O(log n) / O(log n)";
  }
  // Row 4: Δ any, ε sweep.
  for (double eps : {0.5, 0.3, 0.2}) {
    rows.push_back(run("dlt=any eps=any", "planar", 4000 * scale, eps, rng));
    rows.back().regime += " | poly(1/eps, log n)";
  }

  for (const Row& r : rows) {
    const auto bar = r.regime.find('|');
    t.add_row({r.regime.substr(0, bar - 1), r.family, Table::integer(r.n),
               Table::num(r.eps, 2), Table::integer(r.construction),
               Table::integer(r.t_routing), Table::integer(r.diameter),
               Table::num(r.eps_measured, 3), r.regime.substr(bar + 2)});
  }
  t.print(std::cout);
  std::cout << "\nShape checks: within each const-parameter block the "
               "measured columns should grow sub-polynomially with n;\n"
               "eps-measured must stay <= eps.\n";
  if (json.enabled()) {
    // Representative phase record for the JSON artifact: the first regime
    // row (grid, eps = 0.3) rebuilt at the same seed.
    Rng jr(cli.get_int("seed", 1));
    const Graph jg = make_family("grid", 1024 * scale, jr);
    const decomp::EdtDecomposition edt =
        decomp::build_edt_decomposition(jg, 0.3);
    json.phases(edt.ledger, 2 * jg.m());
    json.metric("eps_measured", edt.quality.eps_fraction);
  }
  json.write();
  return 0;
}
