// Experiment E-LDD — Corollary 6.1 (low-diameter decomposition) and the
// baselines the paper positions against.
//
// Claims:
//   * ours (Cor 6.1): deterministic CONGEST, D = O(1/ε),
//     rounds O(log* n / ε) + min(T variants);
//   * CHW [CHW08]: LOCAL model (unbounded messages), poly(1/ε)·O(log* n);
//   * MPX [MPX13]: randomized CONGEST, D = O(log n / ε), O(log n / ε) rounds.
//
// The ε-sweep shows the qualitative separations: ours and CHW give
// O(1/ε)-diameter clusters; MPX diameters carry the extra log n factor;
// all meet the ε cut budget (MPX in expectation).
#include <cmath>

#include "bench_common.hpp"
#include "decomp/edt.hpp"
#include "decomp/ldd_chw.hpp"
#include "decomp/ldd_mpx.hpp"

int main(int argc, char** argv) {
  using namespace mfd;
  using namespace mfd::bench;
  const Cli cli(argc, argv);
  // Default to a large grid: its Θ(√n) diameter is what makes the paper's
  // separation visible (MPX's O(log n/ε) cluster radius would swallow a
  // random triangulation whole — diameter O(log n) — telling us nothing).
  const int n = static_cast<int>(cli.get_int("n", 10000));
  Rng rng(cli.get_int("seed", 3));
  const Graph g = make_family(cli.get("family", "grid"), n, rng);
  cli.warn_unrecognized(std::cerr);

  print_header("E-LDD: Corollary 6.1 + baselines",
               "(eps, D) low-diameter decomposition: ours vs CHW(LOCAL) vs "
               "MPX(randomized)");
  std::cout << g.summary() << "\n\n";

  Table t({"algorithm", "model", "eps", "eps measured", "D measured",
           "rounds", "clusters"});
  for (double eps : {0.4, 0.3, 0.2}) {
    {
      const decomp::EdtDecomposition edt = decomp::build_edt_decomposition(g, eps);
      t.add_row({"ours (Thm 1.1)", "CONGEST det", Table::num(eps, 2),
                 Table::num(edt.quality.eps_fraction, 3),
                 Table::integer(edt.quality.max_diameter),
                 Table::integer(edt.ledger.total()),
                 Table::integer(edt.clustering.k)});
    }
    {
      const decomp::ChwLdd chw = decomp::ldd_chw_local_model(g, eps, 3);
      t.add_row({"CHW08", "LOCAL det", Table::num(eps, 2),
                 Table::num(chw.quality.eps_fraction, 3),
                 Table::integer(chw.quality.max_diameter),
                 Table::integer(chw.ledger.total()),
                 Table::integer(chw.clustering.k)});
    }
    {
      // MPX is randomized: average over seeds.
      Accumulator frac, diam, rounds, clusters;
      for (int s = 0; s < 5; ++s) {
        const decomp::MpxLdd mpx = decomp::ldd_mpx(g, eps, rng);
        frac.add(mpx.quality.eps_fraction);
        diam.add(mpx.quality.max_diameter);
        rounds.add(mpx.rounds);
        clusters.add(mpx.clustering.k);
      }
      t.add_row({"MPX13 (mean of 5)", "CONGEST rand", Table::num(eps, 2),
                 Table::num(frac.mean(), 3), Table::num(diam.mean(), 1),
                 Table::num(rounds.mean(), 1), Table::num(clusters.mean(), 0)});
    }
  }
  t.print(std::cout);
  std::cout << "\nShape checks: our D and CHW's D scale like 1/eps; MPX's D "
               "carries the extra log n factor.\n";

  // Construction-rounds scaling: the Section-4 local pipeline (heavy-stars
  // contraction, default) against the retired global-BFS chop
  // (EdtChop::kGlobalBfs). The chop charges real BFS depth per pass, so its
  // rounds track sqrt(n) on a grid; the local pipeline's only n-dependence
  // is the O(log* n) Cole–Vishkin term.
  {
    std::cout << "\n-- EDT construction rounds vs n (eps = 0.3): local "
                 "pipeline vs global-BFS chop\n";
    Table s({"n", "sqrt(n)", "rounds (local)", "D (local)", "rounds (chop)",
             "D (chop)"});
    for (int sn : {1024, 4096, 16384, 65536}) {
      Rng srng(cli.get_int("seed", 3));
      const Graph sg = make_family(cli.get("family", "grid"), sn, srng);
      const decomp::EdtDecomposition local =
          decomp::build_edt_decomposition(sg, 0.3);
      decomp::EdtParams chop_params;
      chop_params.chop = decomp::EdtChop::kGlobalBfs;
      const decomp::EdtDecomposition chop =
          decomp::build_edt_decomposition(sg, 0.3, chop_params);
      s.add_row({Table::integer(sg.n()),
                 Table::num(std::sqrt(static_cast<double>(sg.n())), 0),
                 Table::integer(local.ledger.total()),
                 Table::integer(local.quality.max_diameter),
                 Table::integer(chop.ledger.total()),
                 Table::integer(chop.quality.max_diameter)});
    }
    s.print(std::cout);
    std::cout << "\nShape check: 'rounds (local)' stays near-flat while "
                 "'rounds (chop)' grows like sqrt(n).\n";
  }
  return 0;
}
