// Experiment E-LDD — Corollary 6.1 (low-diameter decomposition) and the
// baselines the paper positions against.
//
// Claims:
//   * ours (Cor 6.1): deterministic CONGEST, D = O(1/ε),
//     rounds O(log* n / ε) + min(T variants);
//   * CHW [CHW08]: LOCAL model (unbounded messages), poly(1/ε)·O(log* n);
//   * MPX [MPX13]: randomized CONGEST, D = O(log n / ε), O(log n / ε) rounds.
//
// The ε-sweep shows the qualitative separations: ours and CHW give
// O(1/ε)-diameter clusters; MPX diameters carry the extra log n factor;
// all meet the ε cut budget (MPX in expectation).
//
// The bandwidth audit section prints the full per-phase rounds x messages x
// peak-congestion breakdown of our pipeline (every decomposition phase
// meters its traffic — see docs/ARCHITECTURE.md "The bandwidth model") and
// fails the run if Runtime::audit() finds an accounting violation.
#include <cmath>

#include "bench_common.hpp"
#include "decomp/edt.hpp"
#include "decomp/ldd_chw.hpp"
#include "decomp/ldd_mpx.hpp"

int main(int argc, char** argv) {
  using namespace mfd;
  using namespace mfd::bench;
  const Cli cli(argc, argv);
  const bool smoke = cli.has("smoke");  // trimmed instances for ctest/CI
  // Default to a large grid: its Θ(√n) diameter is what makes the paper's
  // separation visible (MPX's O(log n/ε) cluster radius would swallow a
  // random triangulation whole — diameter O(log n) — telling us nothing).
  const int n = static_cast<int>(cli.get_int("n", smoke ? 1024 : 10000));
  Rng rng(cli.get_int("seed", 3));
  const std::string family = cli.get("family", "grid");
  const Graph g = make_family(family, n, rng);
  BenchJson json(cli, "ldd");
  cli.warn_unrecognized(std::cerr);
  json.param("n", static_cast<std::int64_t>(g.n()));
  json.param("m", g.m());
  json.param("family", family);
  json.param("seed", cli.get_int("seed", 3));
  json.param("smoke", static_cast<std::int64_t>(smoke ? 1 : 0));

  print_header("E-LDD: Corollary 6.1 + baselines",
               "(eps, D) low-diameter decomposition: ours vs CHW(LOCAL) vs "
               "MPX(randomized)");
  std::cout << g.summary() << "\n\n";

  Table t({"algorithm", "model", "eps", "eps measured", "D measured",
           "rounds", "messages", "peak cong", "clusters"});
  // The eps = 0.3 decomposition is reused by the bandwidth-audit section
  // below (the construction is deterministic, so rebuilding would only
  // duplicate work).
  decomp::EdtDecomposition rep;
  for (double eps : {0.4, 0.3, 0.2}) {
    {
      decomp::EdtDecomposition edt = decomp::build_edt_decomposition(g, eps);
      t.add_row({"ours (Thm 1.1)", "CONGEST det", Table::num(eps, 2),
                 Table::num(edt.quality.eps_fraction, 3),
                 Table::integer(edt.quality.max_diameter),
                 Table::integer(edt.ledger.total()),
                 Table::integer(edt.ledger.total_messages()),
                 Table::integer(edt.ledger.peak_congestion()),
                 Table::integer(edt.clustering.k)});
      if (eps == 0.3) {
        json.phases(edt.ledger, 2 * g.m());
        json.metric("eps_target", eps);
        json.metric("eps_measured", edt.quality.eps_fraction);
        json.metric("max_diameter",
                    static_cast<std::int64_t>(edt.quality.max_diameter));
        json.metric("clusters", static_cast<std::int64_t>(edt.clustering.k));
        rep = std::move(edt);
      }
    }
    {
      const decomp::ChwLdd chw = decomp::ldd_chw_local_model(g, eps, 3);
      t.add_row({"CHW08", "LOCAL det", Table::num(eps, 2),
                 Table::num(chw.quality.eps_fraction, 3),
                 Table::integer(chw.quality.max_diameter),
                 Table::integer(chw.ledger.total()), "-", "-",
                 Table::integer(chw.clustering.k)});
    }
    {
      // MPX is randomized: average over seeds.
      Accumulator frac, diam, rounds, clusters;
      for (int s = 0; s < 5; ++s) {
        const decomp::MpxLdd mpx = decomp::ldd_mpx(g, eps, rng);
        frac.add(mpx.quality.eps_fraction);
        diam.add(mpx.quality.max_diameter);
        rounds.add(mpx.rounds);
        clusters.add(mpx.clustering.k);
      }
      t.add_row({"MPX13 (mean of 5)", "CONGEST rand", Table::num(eps, 2),
                 Table::num(frac.mean(), 3), Table::num(diam.mean(), 1),
                 Table::num(rounds.mean(), 1), "-", "-",
                 Table::num(clusters.mean(), 0)});
    }
  }
  t.print(std::cout);
  std::cout << "\nShape checks: our D and CHW's D scale like 1/eps; MPX's D "
               "carries the extra log n factor. CHW is LOCAL (unbounded "
               "messages) and MPX messages are envelope-only, so their "
               "message columns stay '-'.\n";

  // Bandwidth audit: the full phase breakdown of our pipeline at eps = 0.3 —
  // every phase must report nonzero messages and congestion, and the charge
  // sequence must pass the Runtime::audit() invariants.
  print_phase_table(std::cout, rep.ledger,
                    "ours (Thm 1.1), eps = 0.3 on " + family);
  check_runtime_audit(rep.ledger, 2 * g.m(), "edt eps=0.3");

  // Construction-rounds scaling: the Section-4 local pipeline (heavy-stars
  // contraction, default) against the retired global-BFS chop
  // (EdtChop::kGlobalBfs). The chop charges real BFS depth per pass, so its
  // rounds track sqrt(n) on a grid; the local pipeline's only n-dependence
  // is the O(log* n) Cole–Vishkin term.
  {
    std::cout << "\n-- EDT construction rounds vs n (eps = 0.3): local "
                 "pipeline vs global-BFS chop\n";
    Table s({"n", "sqrt(n)", "rounds (local)", "D (local)", "rounds (chop)",
             "D (chop)"});
    for (int sn : smoke ? std::vector<int>{1024, 4096}
                        : std::vector<int>{1024, 4096, 16384, 65536}) {
      Rng srng(cli.get_int("seed", 3));
      const Graph sg = make_family(family, sn, srng);
      const decomp::EdtDecomposition local =
          decomp::build_edt_decomposition(sg, 0.3);
      decomp::EdtParams chop_params;
      chop_params.chop = decomp::EdtChop::kGlobalBfs;
      const decomp::EdtDecomposition chop =
          decomp::build_edt_decomposition(sg, 0.3, chop_params);
      check_runtime_audit(local.ledger, 2 * sg.m(),
                          "local n=" + std::to_string(sg.n()));
      check_runtime_audit(chop.ledger, 2 * sg.m(),
                          "chop n=" + std::to_string(sg.n()));
      s.add_row({Table::integer(sg.n()),
                 Table::num(std::sqrt(static_cast<double>(sg.n())), 0),
                 Table::integer(local.ledger.total()),
                 Table::integer(local.quality.max_diameter),
                 Table::integer(chop.ledger.total()),
                 Table::integer(chop.quality.max_diameter)});
    }
    s.print(std::cout);
    std::cout << "\nShape check: 'rounds (local)' stays near-flat while "
                 "'rounds (chop)' grows like sqrt(n).\n";
  }
  json.write();
  return 0;
}
