// Experiment E-ABL — ablations of the design choices DESIGN.md calls out.
//
//  (a) token splitting (the Lemma 2.2 fix for the small-remainder regime):
//      off => the load-balancing gather needs more outer iterations / stalls;
//  (b) light-link removal (Step 3 of Lemma 5.3): threshold 0 admits weak
//      merges (conductance/routability suffers); huge threshold blocks
//      merging (the decomposition stalls above its ε target);
//  (c) seed-search width for the derandomized walks (Lemma 2.5): width 1 is
//      "pick the first seed" — delivery may fall short of 1 - f;
//  (d) gather engine: small-direct vs load-balance vs random-walk on the
//      same cluster.
#include "bench_common.hpp"
#include "decomp/cs22_baseline.hpp"
#include "decomp/edt.hpp"
#include "expander/load_balance.hpp"
#include "expander/rw_routing.hpp"
#include "expander/split.hpp"
#include "graph/ops.hpp"

int main(int argc, char** argv) {
  using namespace mfd;
  using namespace mfd::bench;
  using namespace mfd::expander;
  const Cli cli(argc, argv);
  Rng rng(cli.get_int("seed", 11));
  const bool smoke = cli.has("smoke");  // trimmed instances for ctest/CI
  // --n caps every instance size; the defaults sit far below the tier-1
  // smoke value (4096), so the cap only bites when set small.
  const int ncap = static_cast<int>(cli.get_int("n", 1 << 20));
  BenchJson json(cli, "ablation");
  cli.warn_unrecognized(std::cerr);
  json.param("seed", cli.get_int("seed", 11));
  json.param("smoke", static_cast<std::int64_t>(smoke ? 1 : 0));

  print_header("E-ABL: ablations", "design-choice ablations (DESIGN.md §3)");

  std::cout << "-- (a) token splitting in Lemma 2.2\n";
  {
    const int ka = std::min(40, std::max(3, ncap - 1));
    const Graph g = add_apex(cycle_graph(ka));
    const ExpanderSplit sp = expander_split(g, rng);
    Table t({"token splitting", "delivered", "rounds", "outer iterations"});
    for (const bool splitting : {true, false}) {
      LoadBalanceParams p;
      if (!splitting) p.max_splits = 0;
      const LoadBalanceResult r = gather_load_balance(sp, ka, 0.05, p);
      t.add_row({splitting ? "on" : "off", Table::num(r.delivered_fraction, 3),
                 Table::integer(r.rounds), Table::integer(r.outer_iterations)});
    }
    t.print(std::cout);
  }

  std::cout << "\n-- (b) light-link removal threshold (Lemma 5.3 Step 3)\n";
  {
    // Composite minor-free instance: a long path glued to a narrow ladder
    // grid. Chopping then produces both unit-weight links (path side) and
    // rows-weight links (ladder side), so the filter threshold has link
    // weights on both sides of it to grade. (Random planar triangulations
    // have O(log n) diameter — below the band width, EDT would never chop —
    // and pure near-trees only yield unit-weight links no threshold can
    // separate.)
    const int rows = 6;
    const int cols = std::min(smoke ? 50 : 100, std::max(12, ncap / (2 * rows)));
    const int plen = std::min(smoke ? 150 : 300, std::max(12, ncap / 2));
    std::vector<std::pair<int, int>> glue_edges;
    for (int v = 0; v + 1 < plen; ++v) glue_edges.emplace_back(v, v + 1);
    const Graph ladder = grid_graph(rows, cols);
    for (const auto& [u, v] : ladder.edges()) {
      glue_edges.emplace_back(plen + u, plen + v);
    }
    glue_edges.emplace_back(plen - 1, plen);
    const Graph g = Graph::from_edges(plen + ladder.n(), std::move(glue_edges));
    Table t({"filter constant c (thr = eps/(c*alpha))", "eps measured",
             "iterations", "T", "construction rounds"});
    for (double c : {8.0, 32.0, 512.0}) {
      decomp::EdtParams p;
      // The light-link filter is Step 3 of the chop route; the default
      // heavy-stars engine merges as it contracts and never consults it.
      p.chop = decomp::EdtChop::kGlobalBfs;
      p.merge_filter_c = c;
      const decomp::EdtDecomposition edt =
          decomp::build_edt_decomposition(g, 0.25, p);
      t.add_row({Table::num(c, 0), Table::num(edt.quality.eps_fraction, 3),
                 Table::integer(edt.iterations), Table::integer(edt.T_measured),
                 Table::integer(edt.ledger.total())});
    }
    t.print(std::cout);
  }

  std::cout << "\n-- (c) seed-search width (Lemma 2.5 derandomization)\n";
  {
    const int kc = std::min(36, std::max(3, ncap - 1));
    const Graph g = add_apex(cycle_graph(kc));
    const ExpanderSplit sp = expander_split(g, rng);
    Table t({"max seed tries", "delivered", "tries used"});
    for (int w : {1, 4, 48}) {
      RwParams p;
      p.max_seed_tries = w;
      // Pin the walk length to the marginal regime (the step budget caps T at
      // ~13 rounds for the wheel's 108 walks): with ample T every seed
      // delivers and the search width is invisible.
      p.step_budget = 1500;
      const RwResult r = gather_random_walks(sp, kc, 0.05, p);
      t.add_row({Table::integer(w), Table::num(r.delivered_fraction, 3),
                 Table::integer(r.schedule.seed_tries)});
    }
    t.print(std::cout);
  }

  std::cout << "\n-- (d) gather engine on the same cluster\n";
  {
    const Graph g = complete_graph(std::min(16, std::max(4, ncap)));
    const ExpanderSplit sp = expander_split(g, rng);
    Table t({"engine", "delivered", "rounds"});
    {
      // Direct pipelined convergecast: depth + #messages.
      t.add_row({"small-direct", "1.000",
                 Table::integer(1 + 2 * g.m())});
    }
    {
      const LoadBalanceResult r =
          gather_load_balance(sp, 0, 0.1, LoadBalanceParams{});
      t.add_row({"load-balance", Table::num(r.delivered_fraction, 3),
                 Table::integer(r.rounds)});
    }
    {
      const RwResult r = gather_random_walks(sp, 0, 0.1, RwParams{});
      t.add_row({"random-walk", Table::num(r.delivered_fraction, 3),
                 Table::integer(r.rounds)});
    }
    t.print(std::cout);
  }

  std::cout << "\n-- (e) decomposition route: bottom-up (Thm 1.1) vs "
               "top-down (CS22-style)\n";
  {
    int side = smoke ? 16 : 32;
    while (side > 4 && side * side > ncap) --side;
    const Graph g = grid_graph(side, side);
    Table t({"route", "eps", "eps measured", "max diameter", "clusters",
             "T measured", "construction"});
    for (double eps : {0.4, 0.25}) {
      {
        const decomp::EdtDecomposition edt =
            decomp::build_edt_decomposition(g, eps);
        if (eps == 0.25) {
          json.phases(edt.ledger, 2 * g.m());
          json.metric("eps_measured", edt.quality.eps_fraction);
        }
        t.add_row({"bottom-up (ours, local)", Table::num(eps, 2),
                   Table::num(edt.quality.eps_fraction, 3),
                   Table::integer(edt.quality.max_diameter),
                   Table::integer(edt.clustering.k),
                   Table::integer(edt.T_measured),
                   Table::integer(edt.ledger.total()) + " rounds"});
      }
      {
        decomp::EdtParams p;
        p.chop = decomp::EdtChop::kGlobalBfs;
        const decomp::EdtDecomposition edt =
            decomp::build_edt_decomposition(g, eps, p);
        t.add_row({"bottom-up (global-BFS chop)", Table::num(eps, 2),
                   Table::num(edt.quality.eps_fraction, 3),
                   Table::integer(edt.quality.max_diameter),
                   Table::integer(edt.clustering.k),
                   Table::integer(edt.T_measured),
                   Table::integer(edt.ledger.total()) + " rounds"});
      }
      {
        const decomp::Cs22Result cs =
            decomp::cs22_decompose_and_route(g, eps, rng);
        t.add_row({"top-down (CS22)", Table::num(eps, 2),
                   Table::num(cs.quality.eps_fraction, 3),
                   Table::integer(cs.quality.max_diameter),
                   Table::integer(cs.clustering.k),
                   Table::integer(cs.T_measured),
                   "centralized (paper: poly(1/e, log n) rand.)"});
      }
    }
    t.print(std::cout);
    std::cout << "   Theorem 1.1's whole point: the bottom-up route caps the "
                 "cluster diameter at O(1/eps)\n   while top-down expander "
                 "clusters carry the log-factor diameter.\n";
  }
  json.write();
  return 0;
}
