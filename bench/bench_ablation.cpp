// Experiment E-ABL — ablations of the design choices DESIGN.md calls out.
//
//  (a) token splitting (the Lemma 2.2 fix for the small-remainder regime):
//      off => the load-balancing gather needs more outer iterations / stalls;
//  (b) light-link removal (Step 3 of Lemma 5.3): threshold 0 admits weak
//      merges (conductance/routability suffers); huge threshold blocks
//      merging (the decomposition stalls above its ε target);
//  (c) seed-search width for the derandomized walks (Lemma 2.5): width 1 is
//      "pick the first seed" — delivery may fall short of 1 - f;
//  (d) gather engine: small-direct vs load-balance vs random-walk on the
//      same cluster.
#include "bench_common.hpp"
#include "decomp/cs22_baseline.hpp"
#include "decomp/edt.hpp"
#include "decomp/edt.hpp"
#include "expander/load_balance.hpp"
#include "expander/rw_routing.hpp"
#include "expander/split.hpp"
#include "graph/ops.hpp"

int main(int argc, char** argv) {
  using namespace mfd;
  using namespace mfd::bench;
  using namespace mfd::expander;
  const Cli cli(argc, argv);
  Rng rng(cli.get_int("seed", 11));

  print_header("E-ABL: ablations", "design-choice ablations (DESIGN.md §3)");

  std::cout << "-- (a) token splitting in Lemma 2.2\n";
  {
    const Graph g = add_apex(cycle_graph(40));
    const ExpanderSplit sp = expander_split(g, rng);
    Table t({"token splitting", "delivered", "rounds", "outer iterations"});
    for (const bool splitting : {true, false}) {
      LoadBalanceParams p;
      if (!splitting) p.max_splits = 0;
      const LoadBalanceResult r = gather_load_balance(sp, 40, 0.05, p);
      t.add_row({splitting ? "on" : "off", Table::num(r.delivered_fraction, 3),
                 Table::integer(r.rounds), Table::integer(r.outer_iterations)});
    }
    t.print(std::cout);
  }

  std::cout << "\n-- (b) light-link removal threshold (Lemma 5.3 Step 3)\n";
  {
    const Graph g = random_maximal_planar(800, rng);
    Table t({"filter constant c (thr = eps/(c*alpha))", "eps measured",
             "iterations", "T", "construction rounds"});
    for (double c : {8.0, 32.0, 512.0}) {
      decomp::EdtParams p;
      p.merge_filter_c = c;
      const decomp::EdtDecomposition edt =
          decomp::build_edt_decomposition(g, 0.25, p);
      t.add_row({Table::num(c, 0), Table::num(edt.quality.eps_fraction, 3),
                 Table::integer(edt.iterations), Table::integer(edt.T_measured),
                 Table::integer(edt.ledger.total())});
    }
    t.print(std::cout);
  }

  std::cout << "\n-- (c) seed-search width (Lemma 2.5 derandomization)\n";
  {
    const Graph g = add_apex(cycle_graph(36));
    const ExpanderSplit sp = expander_split(g, rng);
    Table t({"max seed tries", "delivered", "tries used"});
    for (int w : {1, 4, 48}) {
      RwParams p;
      p.max_seed_tries = w;
      const RwResult r = gather_random_walks(sp, 36, 0.05, p);
      t.add_row({Table::integer(w), Table::num(r.delivered_fraction, 3),
                 Table::integer(r.schedule.seed_tries)});
    }
    t.print(std::cout);
  }

  std::cout << "\n-- (d) gather engine on the same cluster\n";
  {
    const Graph g = complete_graph(16);
    const ExpanderSplit sp = expander_split(g, rng);
    Table t({"engine", "delivered", "rounds"});
    {
      // Direct pipelined convergecast: depth + #messages.
      t.add_row({"small-direct", "1.000",
                 Table::integer(1 + 2 * g.m())});
    }
    {
      const LoadBalanceResult r =
          gather_load_balance(sp, 0, 0.1, LoadBalanceParams{});
      t.add_row({"load-balance", Table::num(r.delivered_fraction, 3),
                 Table::integer(r.rounds)});
    }
    {
      const RwResult r = gather_random_walks(sp, 0, 0.1, RwParams{});
      t.add_row({"random-walk", Table::num(r.delivered_fraction, 3),
                 Table::integer(r.rounds)});
    }
    t.print(std::cout);
  }

  std::cout << "\n-- (e) decomposition route: bottom-up (Thm 1.1) vs "
               "top-down (CS22-style)\n";
  {
    const Graph g = grid_graph(32, 32);
    Table t({"route", "eps", "eps measured", "max diameter", "clusters",
             "T measured", "construction"});
    for (double eps : {0.4, 0.25}) {
      {
        const decomp::EdtDecomposition edt =
            decomp::build_edt_decomposition(g, eps);
        t.add_row({"bottom-up (ours)", Table::num(eps, 2),
                   Table::num(edt.quality.eps_fraction, 3),
                   Table::integer(edt.quality.max_diameter),
                   Table::integer(edt.clustering.k),
                   Table::integer(edt.T_measured),
                   Table::integer(edt.ledger.total()) + " rounds"});
      }
      {
        const decomp::Cs22Result cs =
            decomp::cs22_decompose_and_route(g, eps, rng);
        t.add_row({"top-down (CS22)", Table::num(eps, 2),
                   Table::num(cs.quality.eps_fraction, 3),
                   Table::integer(cs.quality.max_diameter),
                   Table::integer(cs.clustering.k),
                   Table::integer(cs.T_measured),
                   "centralized (paper: poly(1/e, log n) rand.)"});
      }
    }
    t.print(std::cout);
    std::cout << "   Theorem 1.1's whole point: the bottom-up route caps the "
                 "cluster diameter at O(1/eps)\n   while top-down expander "
                 "clusters carry the log-factor diameter.\n";
  }
  return 0;
}
