// Shared helpers for the experiment harnesses.
//
// Every bench binary regenerates one table/figure-equivalent of the paper
// (see DESIGN.md §3): it prints the paper's claimed row next to the measured
// value so EXPERIMENTS.md can record paper-vs-measured directly.
#pragma once

#include <iostream>
#include <string>

#include "congest/runtime.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace mfd::bench {

using congest::log_star;  // benches quote round counts in log* units

/// Graph families used across experiments (all H-minor-free except the
/// negative-instance families).
inline Graph make_family(const std::string& name, int n, Rng& rng) {
  if (name == "planar") return random_maximal_planar(n, rng);
  if (name == "planar-sparse") {
    return random_planar(n, std::min(3 * n - 6, 2 * n), rng);
  }
  if (name == "grid") {
    int side = 1;
    while (side * side < n) ++side;
    return grid_graph(side, side);
  }
  if (name == "outerplanar") return random_maximal_outerplanar(n, rng);
  if (name == "tree") return random_tree(n, rng);
  if (name == "cycle") return cycle_graph(n);
  if (name == "path") return path_graph(n);
  if (name == "cactus") return random_cactus(n, rng);
  if (name == "ktree3") return random_ktree(n, 3, rng);
  if (name == "series-parallel") return random_series_parallel(n, rng);
  std::cerr << "unknown family: " << name << "\n";
  std::exit(1);
}

inline void print_header(const std::string& experiment,
                         const std::string& paper_artifact) {
  std::cout << "## " << experiment << "\n"
            << "paper artifact: " << paper_artifact << "\n\n";
}

}  // namespace mfd::bench
