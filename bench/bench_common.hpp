// Shared helpers for the experiment harnesses.
//
// Every bench binary regenerates one table/figure-equivalent of the paper
// (see DESIGN.md §3): it prints the paper's claimed row next to the measured
// value so EXPERIMENTS.md can record paper-vs-measured directly.
//
// Bandwidth-audit plumbing shared by all benches:
//   * print_phase_table — the per-phase rounds / messages / peak-congestion
//     breakdown of a congest::Runtime;
//   * check_runtime_audit — runs Runtime::audit() and exits nonzero on a
//     violation, so a mis-metered phase fails the smoke run, not just a
//     code review;
//   * BenchJson — machine-readable `BENCH_<name>.json` output behind the
//     shared `--json` flag (schema checked in CI by
//     scripts/check_bench_json.py; see docs/BENCHMARKS.md).
#pragma once

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "congest/runtime.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace mfd::bench {

using congest::log_star;  // benches quote round counts in log* units

/// Graph families used across experiments (all H-minor-free except the
/// negative-instance families).
inline Graph make_family(const std::string& name, int n, Rng& rng) {
  if (name == "planar") return random_maximal_planar(n, rng);
  if (name == "planar-sparse") {
    return random_planar(n, std::min(3 * n - 6, 2 * n), rng);
  }
  if (name == "grid") {
    int side = 1;
    while (side * side < n) ++side;
    return grid_graph(side, side);
  }
  if (name == "torus") {
    int side = 3;
    while (side * side < n) ++side;
    return torus_graph(side, side);
  }
  if (name == "outerplanar") return random_maximal_outerplanar(n, rng);
  if (name == "tree") return random_tree(n, rng);
  if (name == "cycle") return cycle_graph(n);
  if (name == "path") return path_graph(n);
  if (name == "cactus") return random_cactus(n, rng);
  if (name == "ktree3") return random_ktree(n, 3, rng);
  if (name == "series-parallel") return random_series_parallel(n, rng);
  std::cerr << "unknown family: " << name << "\n";
  std::exit(1);
}

inline void print_header(const std::string& experiment,
                         const std::string& paper_artifact) {
  std::cout << "## " << experiment << "\n"
            << "paper artifact: " << paper_artifact << "\n\n";
}

/// Per-phase bandwidth breakdown of a runtime: rounds, measured/envelope
/// messages, and peak per-directed-edge per-round congestion, with a TOTAL
/// row (total rounds, total messages, max congestion over phases).
inline void print_phase_table(std::ostream& out, const congest::Runtime& rt,
                              const std::string& title) {
  out << "\n-- " << title << " (per-phase rounds x messages x congestion)\n";
  Table t({"phase", "rounds", "messages", "peak congestion"});
  for (const congest::RoundCharge& e : rt.entries()) {
    t.add_row({e.phase, Table::integer(e.rounds), Table::integer(e.messages),
               Table::integer(e.max_congestion)});
  }
  t.add_row({"TOTAL", Table::integer(rt.total()),
             Table::integer(rt.total_messages()),
             Table::integer(rt.peak_congestion())});
  t.print(out);
}

/// Run Runtime::audit() and fail the bench loudly on a violation — the
/// regression gate that keeps every phase's accounting conservative.
/// directed_edges is 2*m of the largest graph the runtime's phases ran on.
inline void check_runtime_audit(const congest::Runtime& rt,
                                std::int64_t directed_edges,
                                const std::string& context) {
  const congest::AuditResult a = rt.audit(directed_edges);
  if (!a.ok) {
    std::cerr << "runtime audit FAILED (" << context << "): " << a.violation
              << "\n";
    std::exit(1);
  }
  std::cout << "runtime audit: ok (" << context << ")\n";
}

/// Machine-readable bench output behind the shared `--json` flag: collects
/// params, per-phase charges, quality metrics and wall time, then writes
/// `BENCH_<name>.json` next to the binary's working directory. The schema
/// (version 1) is validated in CI by scripts/check_bench_json.py:
///   { schema_version, bench, params{}, phases[], totals{}, audit_ok,
///     metrics{}, wall_time_ms }
class BenchJson {
 public:
  BenchJson(const Cli& cli, std::string name)
      : enabled_(cli.has("json")),
        name_(std::move(name)),
        start_(std::chrono::steady_clock::now()) {}

  bool enabled() const { return enabled_; }

  void param(const std::string& key, const std::string& v) {
    params_.emplace_back(key, quote(v));
  }
  void param(const std::string& key, std::int64_t v) {
    params_.emplace_back(key, std::to_string(v));
  }
  void param(const std::string& key, double v) {
    params_.emplace_back(key, fmt(v));
  }

  void metric(const std::string& key, std::int64_t v) {
    metrics_.emplace_back(key, std::to_string(v));
  }
  void metric(const std::string& key, double v) {
    metrics_.emplace_back(key, fmt(v));
  }

  /// Record a representative runtime's phase breakdown (replaces any prior
  /// one) and audit it against the given directed-edge count.
  void phases(const congest::Runtime& rt, std::int64_t directed_edges) {
    entries_ = rt.entries();
    total_rounds_ = rt.total();
    total_messages_ = rt.total_messages();
    peak_congestion_ = rt.peak_congestion();
    audit_ok_ = rt.audit(directed_edges).ok;
  }

  /// Write BENCH_<name>.json (no-op without --json). Returns the file name.
  std::string write() {
    if (!enabled_) return "";
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start_)
            .count();
    const std::string file = "BENCH_" + name_ + ".json";
    std::ofstream out(file);
    out << "{\n  \"schema_version\": 1,\n  \"bench\": " << quote(name_)
        << ",\n  \"params\": {";
    write_map(out, params_);
    out << "},\n  \"phases\": [";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const congest::RoundCharge& e = entries_[i];
      out << (i ? "," : "") << "\n    {\"phase\": " << quote(e.phase)
          << ", \"rounds\": " << e.rounds << ", \"messages\": " << e.messages
          << ", \"max_congestion\": " << e.max_congestion << "}";
    }
    out << (entries_.empty() ? "" : "\n  ") << "],\n  \"totals\": {\"rounds\": "
        << total_rounds_ << ", \"messages\": " << total_messages_
        << ", \"peak_congestion\": " << peak_congestion_ << "},\n"
        << "  \"audit_ok\": " << (audit_ok_ ? "true" : "false") << ",\n"
        << "  \"metrics\": {";
    write_map(out, metrics_);
    out << "},\n  \"wall_time_ms\": " << fmt(wall_ms) << "\n}\n";
    std::cout << "\nwrote " << file << "\n";
    return file;
  }

 private:
  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(c)));
        out += buf;
      } else {
        out += c;
      }
    }
    return out + "\"";
  }

  static std::string fmt(double v) {
    // JSON has no nan/inf tokens; a degenerate metric becomes null so the
    // schema checker names the offending key instead of a parse error.
    if (!std::isfinite(v)) return "null";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
  }

  static void write_map(
      std::ostream& out,
      const std::vector<std::pair<std::string, std::string>>& kv) {
    for (std::size_t i = 0; i < kv.size(); ++i) {
      out << (i ? ", " : "") << quote(kv[i].first) << ": " << kv[i].second;
    }
  }

  bool enabled_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::pair<std::string, std::string>> params_;
  std::vector<std::pair<std::string, std::string>> metrics_;
  std::vector<congest::RoundCharge> entries_;
  std::int64_t total_rounds_ = 0;
  std::int64_t total_messages_ = 0;
  std::int64_t peak_congestion_ = 0;
  bool audit_ok_ = true;
};

}  // namespace mfd::bench
