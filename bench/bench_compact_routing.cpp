// Experiment E-CROUTE — compact routing from low-diameter decomposition
// (the [AGM05, AGMW07] application the paper's introduction cites for
// (ε, O(1/ε)) decompositions of minor-free graphs).
//
// Claim shape: with cluster diameter D = O(1/ε), the two-level scheme keeps
//   * per-vertex tables at O(log n) bits (the centers' cluster-tree labels
//     and portals add O(k log n) bits in total),
//   * delivery on every connected pair,
//   * stretch bounded by O(D) per cluster-tree hop — so the table/stretch
//     tradeoff runs through k: larger ε means more clusters, more
//     cluster-tree hops (higher stretch) and bigger total center tables;
//     smaller ε buys fewer hops at D = O(1/ε) per hop.
#include "apps/compact_routing.hpp"
#include "bench_common.hpp"
#include "decomp/edt.hpp"

int main(int argc, char** argv) {
  using namespace mfd;
  using namespace mfd::bench;
  const Cli cli(argc, argv);
  Rng rng(cli.get_int("seed", 19));
  const bool smoke = cli.has("smoke");  // trimmed instances for ctest/CI
  const int pairs =
      static_cast<int>(cli.get_int("pairs", smoke ? 100 : 300));
  const int nplanar = smoke ? 600 : 2000, nfam = smoke ? 500 : 1500;
  BenchJson json(cli, "compact_routing");
  cli.warn_unrecognized(std::cerr);
  json.param("pairs", static_cast<std::int64_t>(pairs));
  json.param("seed", cli.get_int("seed", 19));
  json.param("smoke", static_cast<std::int64_t>(smoke ? 1 : 0));

  print_header("E-CROUTE: compact routing",
               "two-level routing over the (eps, D, T)-decomposition");

  {
    std::cout << "-- stretch / table-size tradeoff vs eps (planar n="
              << nplanar << ")\n";
    const Graph g = random_maximal_planar(nplanar, rng);
    Table t({"eps", "D", "clusters", "avg stretch", "max stretch",
             "avg table bits", "max table bits", "delivered"});
    for (double eps : {0.5, 0.35, 0.25, 0.15}) {
      const decomp::EdtDecomposition edt =
          decomp::build_edt_decomposition(g, eps);
      const apps::RoutingScheme s =
          apps::build_routing_scheme(g, edt.clustering);
      const apps::StretchStats st = apps::measure_stretch(g, s, pairs, rng);
      if (eps == 0.25) {
        json.phases(edt.ledger, 2 * g.m());
        json.metric("eps", eps);
        json.metric("avg_stretch", st.avg_stretch);
        json.metric("delivered_fraction", st.delivered_fraction);
      }
      t.add_row({Table::num(eps, 2), Table::integer(edt.quality.max_diameter),
                 Table::integer(edt.clustering.k),
                 Table::num(st.avg_stretch, 2), Table::num(st.max_stretch, 2),
                 Table::num(s.avg_table_bits(), 0),
                 Table::integer(s.max_table_bits()),
                 Table::num(st.delivered_fraction, 3)});
    }
    t.print(std::cout);
  }

  {
    std::cout << "\n-- families at eps = 0.3\n";
    Table t({"family", "n", "clusters", "avg stretch", "max stretch",
             "avg table bits", "delivered"});
    for (const char* fam :
         {"planar", "grid", "outerplanar", "tree", "series-parallel"}) {
      const Graph g = make_family(fam, nfam, rng);
      const decomp::EdtDecomposition edt =
          decomp::build_edt_decomposition(g, 0.3);
      const apps::RoutingScheme s =
          apps::build_routing_scheme(g, edt.clustering);
      const apps::StretchStats st = apps::measure_stretch(g, s, pairs, rng);
      t.add_row({fam, Table::integer(g.n()), Table::integer(edt.clustering.k),
                 Table::num(st.avg_stretch, 2), Table::num(st.max_stretch, 2),
                 Table::num(s.avg_table_bits(), 0),
                 Table::num(st.delivered_fraction, 3)});
    }
    t.print(std::cout);
  }

  std::cout << "\nShape checks: delivery 1.0 everywhere; avg table bits stay "
               "O(log n); stretch and table bits both track the cluster "
               "count k — large eps pays cluster-tree hops, small eps pays "
               "D = O(1/eps) per hop.\n";
  json.write();
  return 0;
}
