// Experiment E-MIS — Corollary 6.5 and the Lenzen–Wattenhofer lower bound
// (Theorem 6.1).
//
// Claims:
//   * (1-ε)-approximate MIS deterministically in
//     O(log* n / ε) + poly(1/ε) rounds (Corollary 6.5);
//   * Ω(log* n / ε) rounds are necessary even on paths/cycles (Thm 6.1) —
//     so the rounds column must scale like log* n (essentially flat) as n
//     grows by 100x on cycles.
#include "bench_common.hpp"
#include "apps/approx.hpp"
#include "apps/exact.hpp"
#include "bench_ladder.hpp"
#include "congest/shard.hpp"

int main(int argc, char** argv) {
  using namespace mfd;
  using namespace mfd::bench;
  const Cli cli(argc, argv);
  Rng rng(cli.get_int("seed", 7));
  const bool smoke = cli.has("smoke");  // trimmed instances for ctest/CI
  const int threads = static_cast<int>(cli.get_int("threads", 1));
  BenchJson json(cli, "mis");
  const apps::LadderConfig ladder = ladder_from_cli(cli, json);
  cli.warn_unrecognized(std::cerr);
  json.param("seed", cli.get_int("seed", 7));
  json.param("smoke", static_cast<std::int64_t>(smoke ? 1 : 0));
  json.param("threads", static_cast<std::int64_t>(threads));
  congest::ShardPool pool(threads);

  print_header("E-MIS: Corollary 6.5 + Theorem 6.1",
               "(1-eps)-approximate maximum independent set");

  std::cout << "-- ratio sweep (exact OPT via branch & bound)\n";
  Table t({"instance", "eps", "|I|", "OPT", "ratio", "1-eps", "rounds", "T",
           "tiers"});
  struct Inst {
    std::string name;
    Graph g;
    int alpha;
  };
  const int np = smoke ? 60 : 120, no = smoke ? 80 : 150,
            nt = smoke ? 100 : 200;
  std::vector<Inst> instances;
  instances.push_back({"planar(" + std::to_string(np) + ")",
                       random_maximal_planar(np, rng), 3});
  instances.push_back({"outerplanar(" + std::to_string(no) + ")",
                       random_maximal_outerplanar(no, rng), 2});
  instances.push_back({"tree(" + std::to_string(nt) + ")",
                       random_tree(nt, rng), 1});
  for (const Inst& inst : instances) {
    const apps::MisResult opt = apps::max_independent_set(inst.g);
    for (double eps : {0.5, 0.3}) {
      const apps::SetSolution sol = apps::approx_max_independent_set(
          inst.g, eps, inst.alpha, &pool, ladder);
      if (inst.name.rfind("planar", 0) == 0 && eps == 0.3) {
        json.phases(sol.stats.runtime, 2 * inst.g.m());
        json.metric("eps", eps);
        json.metric("ratio", static_cast<double>(sol.vertices.size()) /
                                 static_cast<double>(opt.set.size()));
        ladder_metrics(json, sol.stats);
      }
      t.add_row({inst.name, Table::num(eps, 2),
                 Table::integer(static_cast<long long>(sol.vertices.size())),
                 Table::integer(static_cast<long long>(opt.set.size())),
                 Table::num(static_cast<double>(sol.vertices.size()) /
                                static_cast<double>(opt.set.size()),
                            3),
                 Table::num(1 - eps, 2),
                 Table::integer(sol.stats.total_rounds),
                 Table::integer(sol.stats.T), tier_cell(sol.stats)});
    }
  }
  t.print(std::cout);

  std::cout << "\n-- lower-bound shape (Thm 6.1): rounds vs n on cycles, "
               "eps = 0.3\n";
  Table t2({"n", "log*(n)", "rounds", "ratio"});
  for (int n : smoke ? std::vector<int>{100, 1000, 10000}
                     : std::vector<int>{100, 1000, 10000, 100000}) {
    const Graph c = cycle_graph(n);
    const apps::SetSolution sol =
        apps::approx_max_independent_set(c, 0.3, 1, &pool, ladder);
    // OPT of a cycle = floor(n/2).
    t2.add_row({Table::integer(n), Table::integer(log_star(n)),
                Table::integer(sol.stats.total_rounds),
                Table::num(static_cast<double>(sol.vertices.size()) /
                               static_cast<double>(n / 2),
                           3)});
  }
  t2.print(std::cout);
  std::cout << "\nShape checks: ratio >= 1-eps everywhere; on cycles the "
               "rounds column grows like log* n (nearly flat over 1000x in "
               "n), matching the Omega(log* n / eps) lower bound up to the "
               "poly(1/eps) additive term.\n";
  json.write();
  return 0;
}
