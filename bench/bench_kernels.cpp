// Microbenchmarks (google-benchmark) for the core kernels: these are the
// wall-clock costs of the simulator itself, complementing the round-count
// experiment harnesses.
#include <benchmark/benchmark.h>

#include "apps/blossom.hpp"
#include "apps/exact.hpp"
#include "congest/cole_vishkin.hpp"
#include "decomp/heavy_stars.hpp"
#include "decomp/ldd_local.hpp"
#include "expander/split.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "graph/planarity.hpp"
#include "util/rng.hpp"

namespace {

using namespace mfd;

void BM_PlanarityTest(benchmark::State& state) {
  Rng rng(1);
  const Graph g = random_maximal_planar(static_cast<int>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(is_planar(g));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PlanarityTest)->Range(256, 16384)->Complexity();

void BM_BfsDistances(benchmark::State& state) {
  Rng rng(2);
  const Graph g = random_maximal_planar(static_cast<int>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bfs_distances(g, 0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BfsDistances)->Range(256, 16384)->Complexity();

void BM_ColeVishkin(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Graph g = path_graph(n);
  std::vector<int> parent(static_cast<std::size_t>(n));
  parent[0] = -1;
  for (int v = 1; v < n; ++v) parent[v] = v - 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(congest::cole_vishkin_3color(g, parent));
  }
}
BENCHMARK(BM_ColeVishkin)->Range(1024, 65536);

void BM_HeavyStars(benchmark::State& state) {
  Rng rng(3);
  const Graph g = random_maximal_planar(static_cast<int>(state.range(0)), rng);
  std::vector<WeightedEdge> edges;
  for (const auto& [u, v] : g.edges()) edges.push_back({u, v, 1});
  const WeightedGraph cg(g.n(), edges);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decomp::heavy_stars(cg));
  }
}
BENCHMARK(BM_HeavyStars)->Range(512, 8192);

void BM_LocalLdd(benchmark::State& state) {
  Rng rng(4);
  const Graph g = random_maximal_planar(static_cast<int>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decomp::ldd_minor_free_local(g, 0.25));
  }
}
BENCHMARK(BM_LocalLdd)->Range(512, 8192);

void BM_ExpanderSplit(benchmark::State& state) {
  Rng rng(5);
  const Graph g = random_maximal_planar(static_cast<int>(state.range(0)), rng);
  for (auto _ : state) {
    Rng local(7);
    benchmark::DoNotOptimize(expander::expander_split(g, local));
  }
}
BENCHMARK(BM_ExpanderSplit)->Range(256, 4096);

void BM_Blossom(benchmark::State& state) {
  Rng rng(6);
  const Graph g = random_maximal_planar(static_cast<int>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(apps::max_matching(g));
  }
}
BENCHMARK(BM_Blossom)->Range(64, 1024);

void BM_ExactMis(benchmark::State& state) {
  Rng rng(7);
  const Graph g = random_maximal_planar(static_cast<int>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(apps::max_independent_set(g));
  }
}
BENCHMARK(BM_ExactMis)->Range(32, 128);

}  // namespace

BENCHMARK_MAIN();
