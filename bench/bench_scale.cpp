// Experiment E-SCALE — the sharded per-round engine at multi-million-vertex
// sizes (congest/shard.hpp).
//
// Claims this harness measures:
//   * correctness — the sharded Theorem 1.1 pipeline is BIT-IDENTICAL to the
//     serial reference at every size (clusterings, cut edges, per-phase
//     ledger entries, Runtime::audit totals) — the run aborts on the first
//     divergence, so a scaling number from a wrong answer cannot ship;
//   * rounds stay flat — simulated-round totals depend on the algorithm, not
//     on the engine or the machine, so the serial and sharded columns agree
//     exactly and stay near-flat in n (Theorem 1.1's diameter-free bound);
//   * wall time per simulated round is the engine's own figure of merit, and
//     the serial/sharded ratio is the headline speedup column. The speedup
//     is real only on multi-core hosts: with --threads above the machine's
//     core count (or on a 1-core CI box) expect ~1x plus scheduling noise —
//     the column reports what the host actually did, never a formula.
//
// A second section drives the kSharded walk engine (Lemma 2.5) and publishes
// its per-shard merged-meter trail: shard{i}_messages must sum to the "walk
// rounds" phase messages, which scripts/check_bench_json.py re-derives
// offline from the JSON.
#include <chrono>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "congest/shard.hpp"
#include "decomp/ldd_local.hpp"
#include "expander/rw_routing.hpp"
#include "graph/ops.hpp"

namespace {

double wall_ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

bool same_charges(const mfd::congest::Runtime& a,
                  const mfd::congest::Runtime& b) {
  if (a.entries().size() != b.entries().size()) return false;
  for (std::size_t i = 0; i < a.entries().size(); ++i) {
    const mfd::congest::RoundCharge& x = a.entries()[i];
    const mfd::congest::RoundCharge& y = b.entries()[i];
    if (x.phase != y.phase || x.rounds != y.rounds ||
        x.messages != y.messages || x.max_congestion != y.max_congestion) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mfd;
  using namespace mfd::bench;
  const Cli cli(argc, argv);
  const bool smoke = cli.has("smoke");  // trimmed instances for ctest/CI
  // --n caps the sweep; the full sweep covers {1M, 2M, 4M} up to the cap.
  const std::int64_t n_cap = cli.get_int("n", smoke ? 16384 : 1 << 22);
  const int threads = static_cast<int>(cli.get_int("threads", 8));
  const double eps = cli.get_double("eps", 0.3);
  const std::int64_t seed = cli.get_int("seed", 3);
  const std::string family_flag = cli.get("family", "grid");
  BenchJson json(cli, "scale");
  cli.warn_unrecognized(std::cerr);

  const std::vector<std::string> families =
      family_flag == "all"
          ? std::vector<std::string>{"grid", "torus", "planar-sparse"}
          : std::vector<std::string>{family_flag};
  std::vector<std::int64_t> sizes;
  for (std::int64_t s : smoke ? std::vector<std::int64_t>{4096, 16384}
                              : std::vector<std::int64_t>{1 << 20, 1 << 21,
                                                          1 << 22}) {
    if (s <= n_cap) sizes.push_back(s);
  }
  if (sizes.empty()) sizes.push_back(n_cap);

  json.param("n", n_cap);
  json.param("family", family_flag);
  json.param("threads", static_cast<std::int64_t>(threads));
  json.param("eps", eps);
  json.param("seed", seed);
  json.param("smoke", static_cast<std::int64_t>(smoke ? 1 : 0));

  print_header("E-SCALE: sharded round engine vs serial reference",
               "wall time per simulated round, serial vs sharded, at "
               "multi-million-vertex sizes (Theorem 1.1 pipeline)");
  std::cout << "threads requested: " << threads << " (hardware has "
            << std::thread::hardware_concurrency()
            << "); speedup is host-bound, correctness is not\n\n";

  // One pool for the whole bench: thread startup is not free, and lending it
  // across runs is exactly how the benches are meant to use the engine.
  congest::ShardPool pool(threads);
  json.metric("threads_actual", static_cast<std::int64_t>(pool.threads()));

  Table t({"family", "n", "m", "rounds", "rounds (sharded)", "serial ms",
           "sharded ms", "ms/round", "ms/round (sharded)", "speedup"});
  bool phases_recorded = false;
  for (const std::string& family : families) {
    for (std::int64_t size : sizes) {
      Rng rng(seed);
      const Graph g = make_family(family, static_cast<int>(size), rng);
      const auto t_serial = std::chrono::steady_clock::now();
      const decomp::LocalLdd serial = decomp::ldd_minor_free_local(g, eps);
      const double serial_ms = wall_ms_since(t_serial);

      decomp::LocalLddParams sp;
      sp.pool = &pool;
      const auto t_sharded = std::chrono::steady_clock::now();
      const decomp::LocalLdd sharded =
          decomp::ldd_minor_free_local(g, eps, sp);
      const double sharded_ms = wall_ms_since(t_sharded);

      const std::string ctx = family + " n=" + std::to_string(g.n());
      // The equivalence gate: a sharded engine that diverges from the serial
      // reference in ANY observable fails the bench before any timing ships.
      if (serial.clustering.cluster != sharded.clustering.cluster ||
          serial.cut_edges != sharded.cut_edges ||
          !same_charges(serial.ledger, sharded.ledger)) {
        std::cerr << "sharded/serial DIVERGENCE (" << ctx << ")\n";
        return 1;
      }
      check_runtime_audit(sharded.ledger, 2 * g.m(), ctx);
      const std::int64_t rounds = serial.ledger.total();
      const double per_round_serial =
          rounds > 0 ? serial_ms / static_cast<double>(rounds) : 0.0;
      const double per_round_sharded =
          rounds > 0 ? sharded_ms / static_cast<double>(rounds) : 0.0;
      const double speedup = sharded_ms > 0.0 ? serial_ms / sharded_ms : 0.0;
      t.add_row({family, Table::integer(g.n()), Table::integer(g.m()),
                 Table::integer(rounds), Table::integer(sharded.ledger.total()),
                 Table::num(serial_ms, 1), Table::num(sharded_ms, 1),
                 Table::num(per_round_serial, 3),
                 Table::num(per_round_sharded, 3), Table::num(speedup, 2)});
      if (size == sizes.back()) {
        json.metric("speedup_" + family, speedup);
        json.metric("rounds_" + family, rounds);
        json.metric("ms_per_round_serial_" + family, per_round_serial);
        json.metric("ms_per_round_sharded_" + family, per_round_sharded);
        if (!phases_recorded) {
          // Representative phase breakdown: the sharded run on the largest
          // instance of the first family (grid by default) — audit included.
          json.phases(sharded.ledger, 2 * g.m());
          phases_recorded = true;
        }
      }
    }
  }
  t.print(std::cout);
  std::cout << "\nShape checks: the two rounds columns agree exactly (the "
               "engine cannot change the algorithm), rounds stay near-flat "
               "in n, and speedup approaches min(threads, cores) as the "
               "per-round work grows.\n";

  // The kSharded walk engine and its merged-meter trail (Lemma 2.5): the
  // per-shard message totals are published so the JSON checker can re-derive
  // the merged "walk rounds" charge offline.
  {
    const int rw_n = smoke ? 2047 : 65535;
    Rng rng(17);
    const expander::ExpanderSplit sp =
        expander::expander_split(add_apex(cycle_graph(rw_n)), rng);
    expander::RwParams rp;
    rp.sim_engine = expander::RwSimEngine::kSharded;
    rp.pool = &pool;
    const expander::RwResult rw =
        expander::gather_random_walks(sp, rw_n, 0.05, rp);
    std::cout << "\n-- kSharded walk engine (apexed cycle, n=" << rw_n + 1
              << "): delivered " << Table::num(rw.delivered_fraction, 3)
              << ", rounds " << rw.rounds << ", meter shards "
              << rw.shard_messages.size() << "\n";
    check_runtime_audit(rw.ledger, 2 * sp.g.m(), "rw walk");
    std::int64_t lane_sum = 0;
    for (std::int64_t m : rw.shard_messages) lane_sum += m;
    const std::int64_t walk_messages = rw.ledger.entries()[0].messages;
    if (lane_sum != walk_messages) {
      std::cerr << "merged-meter trail FAILED: lanes sum to " << lane_sum
                << ", walk rounds charged " << walk_messages << "\n";
      return 1;
    }
    std::cout << "merged-meter trail: " << rw.shard_messages.size()
              << " lanes sum to " << lane_sum << " == walk-round messages\n";
    json.metric("meter_shards",
                static_cast<std::int64_t>(rw.shard_messages.size()));
    json.metric("walk_messages_merged", walk_messages);
    for (std::size_t s = 0; s < rw.shard_messages.size(); ++s) {
      json.metric("shard" + std::to_string(s) + "_messages",
                  rw.shard_messages[s]);
    }
  }

  json.write();
  return 0;
}
