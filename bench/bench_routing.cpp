// Experiment E-ROUTE — §2 information gathering (Lemmas 2.2 vs 2.5/2.6).
//
// Claims:
//   * Lemma 2.2 (load balancing): delivers (1-f) of the messages in
//     O(φ^-2 Δ^-1 |E| log|E| log² f^-1) rounds;
//   * Lemma 2.5 (derandomized walks): same task in
//     O((|E|/Δ log 1/f + log φ^-1 + loglog|E|)·φ^-2 log|E|) rounds with an
//     O(k log n)-bit published schedule — better by ~O(log 1/f) when f is
//     small (the paper's comparison after Lemma 2.5);
//   * Lemma 2.6: one schedule serves many disjoint subgraphs.
//
// We sweep f on wheel-like minor-free expanders and synthetic expanders and
// report delivered fraction and rounds for both engines.
#include "bench_common.hpp"
#include "expander/load_balance.hpp"
#include "expander/rw_routing.hpp"
#include "expander/split.hpp"
#include "graph/metrics.hpp"
#include "graph/ops.hpp"

int main(int argc, char** argv) {
  using namespace mfd;
  using namespace mfd::bench;
  using namespace mfd::expander;
  const Cli cli(argc, argv);
  Rng rng(cli.get_int("seed", 5));
  const bool smoke = cli.has("smoke");  // trimmed instances for ctest/CI
  // --n caps every instance size; the lemma-sized defaults sit far below the
  // tier-1 smoke value (4096), so the cap only bites when set small.
  const int ncap = static_cast<int>(cli.get_int("n", 1 << 20));

  print_header("E-ROUTE: Lemmas 2.2 / 2.5 / 2.6",
               "information gathering: load balancing vs derandomized walks");

  struct Instance {
    std::string name;
    Graph g;
    int v_star;
  };
  std::vector<Instance> instances;
  {
    const int k = std::min(static_cast<int>(cli.get_int("wheel", smoke ? 24 : 48)),
                           std::max(3, ncap - 1));
    instances.push_back({"wheel(" + std::to_string(k) + ")",
                         add_apex(cycle_graph(k)), k});
    const int nc = std::min(smoke ? 16 : 24, std::max(4, ncap));
    instances.push_back({"clique(" + std::to_string(nc) + ")",
                         complete_graph(nc), 0});
    int nr = std::min(smoke ? 32 : 64, std::max(8, ncap));
    nr -= nr % 2;
    const Graph rr = random_regular(nr, 6, rng);
    int vstar = 0;
    instances.push_back({"6-regular(" + std::to_string(nr) + ")", rr, vstar});
  }
  BenchJson json(cli, "routing");
  cli.warn_unrecognized(std::cerr);
  json.param("seed", cli.get_int("seed", 5));
  json.param("smoke", static_cast<std::int64_t>(smoke ? 1 : 0));

  Table t({"instance", "engine", "f", "delivered", "rounds",
           "schedule bits", "seed tries"});
  for (const Instance& inst : instances) {
    const ExpanderSplit sp = expander_split(inst.g, rng);
    for (double f : {0.25, 0.1, 0.02}) {
      {
        LoadBalanceParams p;
        const LoadBalanceResult lb = gather_load_balance(sp, inst.v_star, f, p);
        t.add_row({inst.name, "LB (Lem 2.2)", Table::num(f, 2),
                   Table::num(lb.delivered_fraction, 3),
                   Table::integer(lb.rounds), "0", "-"});
      }
      {
        RwParams p;
        // The 6-regular instance is the low-degree regime Lemma 2.7 rules
        // out inside minor-free expanders: its walk population is Θ(n)-fold
        // larger, so it needs the full theory-sized simulation budget.
        if (inst.name.rfind("6-regular", 0) == 0) {
          p.step_budget = 400'000'000;
          p.search_budget = 800'000'000;
          p.max_walks_total = 4'000'000;
        }
        const RwResult rw = gather_random_walks(sp, inst.v_star, f, p);
        if (inst.name.rfind("wheel", 0) == 0 && f == 0.1) {
          json.phases(rw.ledger, 2 * inst.g.m());
          json.metric("f", f);
          json.metric("delivered_fraction", rw.delivered_fraction);
        }
        t.add_row({inst.name, "RW (Lem 2.5)", Table::num(f, 2),
                   Table::num(rw.delivered_fraction, 3),
                   Table::integer(rw.rounds),
                   Table::integer(rw.schedule.schedule_bits()),
                   Table::integer(rw.schedule.seed_tries)});
      }
    }
  }
  t.print(std::cout);

  // Lemma 2.6: one shared schedule across several disjoint cluster
  // subgraphs, aggregate (1 - f) delivery.
  std::cout << "\n-- Lemma 2.6: shared schedule across disjoint subgraphs\n";
  std::vector<ExpanderSplit> splits;
  std::vector<const ExpanderSplit*> ptrs;
  std::vector<int> stars;
  for (int i = 0; i < 4; ++i) {
    splits.push_back(expander_split(add_apex(cycle_graph(20 + 6 * i)), rng));
    stars.push_back(20 + 6 * i);  // the apex (max degree)
  }
  for (const auto& s : splits) ptrs.push_back(&s);
  const auto shared = gather_random_walks_shared(ptrs, stars, 0.1, RwParams{});
  Table t2({"subgraph", "delivered", "rounds", "seed (common)"});
  for (std::size_t i = 0; i < shared.size(); ++i) {
    t2.add_row({"wheel#" + std::to_string(i),
                Table::num(shared[i].delivered_fraction, 3),
                Table::integer(shared[i].rounds),
                Table::integer(static_cast<long long>(shared[i].schedule.seed))});
  }
  t2.print(std::cout);
  std::cout << "\nShape checks: both engines reach (1-f); RW rounds beat LB "
               "for small f on the same instance; one seed serves all "
               "subgraphs in the shared run.\n";
  json.write();
  return 0;
}
