// Experiment E-THM11 — Theorem 1.1.
//
// Claims under test, for H-minor-free G and ε in (0, 1/2):
//   * an (ε, D, T)-decomposition with D = O(1/ε) exists and is constructed
//     in O(log* n / ε) + T rounds;
//   * two T tradeoffs: T = 2^{O(log² 1/ε)}·O(log Δ)   (overlap variant)
//                      T = O((log⁵Δ log 1/ε + log⁶ 1/ε)/ε⁴) (polylog variant).
//
// We sweep ε on planar triangulations for both variants and report measured
// D (should scale ~ 1/ε), measured T, measured ε-fraction (must be <= ε),
// and construction rounds.
#include "bench_common.hpp"
#include "decomp/edt.hpp"

int main(int argc, char** argv) {
  using namespace mfd;
  using namespace mfd::bench;
  const Cli cli(argc, argv);
  const int n = static_cast<int>(cli.get_int("n", 4000));
  Rng rng(cli.get_int("seed", 2));
  const std::string family = cli.get("family", "planar");
  const Graph g = make_family(family, n, rng);
  BenchJson json(cli, "thm11");
  cli.warn_unrecognized(std::cerr);
  json.param("n", static_cast<std::int64_t>(g.n()));
  json.param("family", family);
  json.param("seed", cli.get_int("seed", 2));

  print_header("E-THM11: Theorem 1.1",
               "(eps, D, T)-decomposition: D = O(1/eps), both T variants");
  std::cout << g.summary() << "\n\n";

  Table t({"variant", "eps", "eps measured", "D measured", "D*eps",
           "T measured", "construction rounds", "iterations", "clusters"});
  for (const auto& [vname, variant] :
       {std::pair{"polylog", decomp::EdtVariant::kPolylogRouting},
        std::pair{"overlap", decomp::EdtVariant::kOverlapRouting}}) {
    for (double eps : {0.5, 0.4, 0.3, 0.2, 0.15}) {
      decomp::EdtParams p;
      p.variant = variant;
      const decomp::EdtDecomposition edt =
          decomp::build_edt_decomposition(g, eps, p);
      if (variant == decomp::EdtVariant::kPolylogRouting && eps == 0.3) {
        json.phases(edt.ledger, 2 * g.m());
        json.metric("eps", eps);
        json.metric("eps_measured", edt.quality.eps_fraction);
        json.metric("T_measured", static_cast<std::int64_t>(edt.T_measured));
      }
      t.add_row({vname, Table::num(eps, 2),
                 Table::num(edt.quality.eps_fraction, 3),
                 Table::integer(edt.quality.max_diameter),
                 Table::num(edt.quality.max_diameter * eps, 2),
                 Table::integer(edt.T_measured),
                 Table::integer(edt.ledger.total()),
                 Table::integer(edt.iterations),
                 Table::integer(edt.clustering.k)});
    }
  }
  t.print(std::cout);
  std::cout << "\nShape checks: 'D*eps' should stay bounded (D = O(1/eps)); "
               "'eps measured' <= eps for every row.\n";
  json.write();
  return 0;
}
