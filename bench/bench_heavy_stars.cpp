// Experiment E-HSTAR — Lemma 4.2.
//
// Claim: the heavy-stars algorithm captures at least 1/(8α) of the total
// edge weight on any cluster graph of arboricity <= α, using O(log* n)
// Cole–Vishkin rounds (Lemma 4.3: marked trees have depth <= 4).
//
// We measure the captured fraction across families and weight regimes: the
// guarantee 1/(8α) is a floor; typical capture is far higher, which is what
// makes the measured pipeline converge in few iterations.
#include "bench_common.hpp"
#include "decomp/heavy_stars.hpp"
#include "graph/metrics.hpp"

int main(int argc, char** argv) {
  using namespace mfd;
  using namespace mfd::bench;
  const Cli cli(argc, argv);
  Rng rng(cli.get_int("seed", 10));
  const int shrink = cli.has("smoke") ? 4 : 1;  // --smoke quarters every n
  BenchJson json(cli, "heavy_stars");
  cli.warn_unrecognized(std::cerr);
  json.param("seed", cli.get_int("seed", 10));
  json.param("smoke", static_cast<std::int64_t>(shrink == 4 ? 1 : 0));

  print_header("E-HSTAR: Lemma 4.2",
               "heavy-stars weight capture >= 1/(8*alpha)");

  Table t({"family", "n", "alpha", "weights", "captured fraction",
           "floor 1/(8a)", "cv rounds", "marked depth (<=4)", "messages",
           "msg/m"});
  struct Case {
    std::string family;
    int n;
    int alpha;
  };
  for (const Case& c : std::vector<Case>{{"tree", 2000, 1},
                                         {"cycle", 2000, 2},
                                         {"outerplanar", 1500, 2},
                                         {"series-parallel", 1500, 2},
                                         {"planar", 2000, 3},
                                         {"grid", 1600, 3},
                                         {"ktree3", 1200, 3}}) {
    const Graph g = make_family(c.family, c.n / shrink, rng);
    for (const bool weighted : {false, true}) {
      std::vector<WeightedEdge> edges;
      for (const auto& [u, v] : g.edges()) {
        const std::int64_t w =
            weighted ? 1 + static_cast<std::int64_t>(rng.next_below(100)) : 1;
        edges.push_back({u, v, w});
      }
      const WeightedGraph cg(g.n(), std::move(edges));
      const decomp::HeavyStarsResult hs = decomp::heavy_stars(cg);
      if (c.family == "grid" && !weighted) {
        json.phases(hs.ledger, 2 * cg.m());
        json.metric("captured_fraction",
                    static_cast<double>(hs.captured_weight) /
                        static_cast<double>(hs.total_weight));
        json.metric("messages", hs.messages);
      }
      t.add_row({c.family, Table::integer(g.n()), Table::integer(c.alpha),
                 weighted ? "random[1,100]" : "unit",
                 Table::num(static_cast<double>(hs.captured_weight) /
                                static_cast<double>(hs.total_weight),
                            3),
                 Table::num(1.0 / (8.0 * c.alpha), 3),
                 Table::integer(hs.cv_rounds),
                 Table::integer(hs.max_marked_depth),
                 Table::integer(hs.messages),
                 Table::num(static_cast<double>(hs.messages) /
                                static_cast<double>(std::max<std::int64_t>(
                                    cg.m(), 1)),
                            1)});
    }
  }
  t.print(std::cout);
  std::cout << "\nShape checks: captured fraction clears the 1/(8*alpha) "
               "floor on every row; marked depth never exceeds 4; messages "
               "stay O(m) per run (msg/m bounded by ~2 rounds' worth of "
               "edge traffic).\n";
  json.write();
  return 0;
}
