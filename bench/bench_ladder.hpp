// Solver-ladder CLI surface shared by the application benches (E-MDS,
// E-MIS, E-Matching/VC, E-MaxCut): --tw_cap caps the width the treewidth-DP
// tier accepts, --solver forces a tier (auto|tw|bb|greedy), --threads fans
// the per-cluster solves over a congest::ShardPool. The per-tier cluster
// counts and search-effort counters land in both the tables and the JSON
// metrics so scripts/check_bench_json.py can audit tier coverage offline.
#pragma once

#include <string>

#include "apps/treewidth.hpp"
#include "bench_common.hpp"
#include "congest/runtime.hpp"

namespace mfd::bench {

/// Parse the shared ladder flags and record them as JSON params.
inline apps::LadderConfig ladder_from_cli(const Cli& cli, BenchJson& json) {
  apps::LadderConfig ladder;
  ladder.tw_cap = static_cast<int>(cli.get_int("tw_cap", ladder.tw_cap));
  ladder.mode = apps::solver_mode_from_string(cli.get("solver", "auto"));
  json.param("tw_cap", static_cast<std::int64_t>(ladder.tw_cap));
  json.param("solver", std::string(apps::solver_mode_name(ladder.mode)));
  return ladder;
}

/// Compact per-tier cluster-count cell for the ratio tables:
/// forest / treewidth-DP / branch-and-bound / greedy.
inline std::string tier_cell(const congest::SolverStats& s) {
  return "F" + std::to_string(s.tier_forest) + "/TW" +
         std::to_string(s.tier_tw_dp) + "/BB" + std::to_string(s.tier_bb) +
         "/G" + std::to_string(s.tier_greedy);
}

/// The ladder audit trail as JSON metrics (one representative run per
/// bench): per-tier cluster counts, the DP-width high-water mark, exact
/// search effort, and the summed per-cluster solver wall time.
inline void ladder_metrics(BenchJson& json, const congest::SolverStats& s) {
  json.metric("clusters", s.clusters);
  json.metric("tier_forest", s.tier_forest);
  json.metric("tier_tw_dp", s.tier_tw_dp);
  json.metric("tier_bb", s.tier_bb);
  json.metric("tier_greedy", s.tier_greedy);
  json.metric("max_width_dp", static_cast<std::int64_t>(s.max_width_dp));
  json.metric("bb_runs", s.bb_runs);
  json.metric("bb_nodes", s.bb_nodes);
  json.metric("bb_exact_runs", s.bb_exact_runs);
  json.metric("solve_ms", s.solve_ms);
}

}  // namespace mfd::bench
